"""Run metrics: what the benchmark harness measures.

The paper's performance section reports total run time with and without
Graft, plus capture counts. :class:`RunMetrics` records wall-clock time and
per-superstep counters so overhead and its sources (extra compute work,
trace bytes) are all observable.

With the pluggable execution backends, each superstep distinguishes
*wall-clock* time (barrier to barrier, as a user experiences it) from
*aggregate compute* time (the sum of every worker's step time, as the
cluster pays for it). Their ratio is the superstep's parallelism
efficiency: 1.0 means perfectly serial execution, ``num_workers`` means
ideal speedup.
"""

from dataclasses import dataclass, field

from repro.common.timing import format_duration


@dataclass
class SuperstepMetrics:
    """Counters for one superstep across all workers."""

    superstep: int
    active_vertices: int = 0
    compute_calls: int = 0
    messages_sent: int = 0
    messages_combined: int = 0
    bytes_sent: int = 0
    compute_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: True when this row re-executes a superstep after a rollback (the
    #: superstep had already completed once before a failure).
    recovered: bool = False
    #: Inboxes whose delivery order a PermutationSchedule changed at this
    #: superstep's barrier (0 unless a graft-san run is active).
    inboxes_permuted: int = 0
    #: Data plane that carried this superstep's messages:
    #: ``"columnar"`` (packed batches) or ``"envelope"`` (object lists).
    transport: str = "envelope"
    #: Frame bytes shipped across process boundaries at the barrier
    #: (0 under same-address-space backends — nothing is copied).
    transport_bytes: int = 0
    #: Packed column batches carried by the columnar plane.
    transport_batches: int = 0
    #: Columns that degraded to the pickled-object fallback.
    pickle_fallbacks: int = 0

    @property
    def parallel_efficiency(self):
        """Aggregate compute seconds per wall-clock second.

        1.0 = serial; approaches the worker count under ideal parallel
        speedup. None when the superstep was too fast to time.
        """
        if self.wall_seconds <= 0.0:
            return None
        return self.compute_seconds / self.wall_seconds

    def row(self):
        efficiency = self.parallel_efficiency
        parallel = (
            f" parallel={efficiency:.2f}x" if efficiency is not None else ""
        )
        recovered = " [recovered]" if self.recovered else ""
        return (
            f"superstep {self.superstep:>4}: active={self.active_vertices:>8} "
            f"msgs={self.messages_sent:>9} combined={self.messages_combined:>8} "
            f"bytes={self.bytes_sent:>11} "
            f"transport={self.transport} "
            f"time={format_duration(self.compute_seconds)}{parallel}{recovered}"
        )


@dataclass
class RunMetrics:
    """Aggregated counters for one whole run."""

    supersteps: list = field(default_factory=list)
    total_seconds: float = 0.0
    #: How many times the engine rolled back to a checkpoint.
    rollback_count: int = 0
    #: How many superstep executions were re-runs after a rollback.
    recovered_supersteps: int = 0
    #: Checkpoint files skipped during recovery because they failed
    #: verification (corrupt/torn).
    checkpoints_skipped: int = 0
    #: One dict per rollback: failed/restored supersteps plus any corrupt
    #: checkpoints that had to be skipped on the way down.
    recovery_events: list = field(default_factory=list)

    def add_superstep(self, metrics):
        self.supersteps.append(metrics)
        if metrics.recovered:
            self.recovered_supersteps += 1

    @property
    def num_supersteps(self):
        return len(self.supersteps)

    @property
    def total_messages(self):
        return sum(s.messages_sent for s in self.supersteps)

    @property
    def total_compute_calls(self):
        return sum(s.compute_calls for s in self.supersteps)

    @property
    def total_bytes_sent(self):
        return sum(s.bytes_sent for s in self.supersteps)

    @property
    def total_messages_combined(self):
        return sum(s.messages_combined for s in self.supersteps)

    @property
    def total_inboxes_permuted(self):
        return sum(s.inboxes_permuted for s in self.supersteps)

    @property
    def total_transport_bytes(self):
        return sum(s.transport_bytes for s in self.supersteps)

    @property
    def total_transport_batches(self):
        return sum(s.transport_batches for s in self.supersteps)

    @property
    def total_pickle_fallbacks(self):
        return sum(s.pickle_fallbacks for s in self.supersteps)

    @property
    def total_compute_seconds(self):
        return sum(s.compute_seconds for s in self.supersteps)

    @property
    def total_wall_seconds(self):
        return sum(s.wall_seconds for s in self.supersteps)

    @property
    def parallel_efficiency(self):
        """Run-wide compute-seconds / wall-seconds ratio (None if untimed)."""
        wall = self.total_wall_seconds
        if wall <= 0.0:
            return None
        return self.total_compute_seconds / wall

    def summary(self):
        efficiency = self.parallel_efficiency
        parallel = (
            f", parallelism {efficiency:.2f}x" if efficiency is not None else ""
        )
        recovery = ""
        if self.rollback_count:
            recovery = (
                f", {self.rollback_count} rollback(s) "
                f"({self.recovered_supersteps} supersteps re-executed)"
            )
        return (
            f"{self.num_supersteps} supersteps, "
            f"{self.total_compute_calls} compute calls, "
            f"{self.total_messages} messages "
            f"({self.total_bytes_sent} bytes), "
            f"{format_duration(self.total_seconds)} total{parallel}{recovery}"
        )
