"""Run metrics: what the benchmark harness measures.

The paper's performance section reports total run time with and without
Graft, plus capture counts. :class:`RunMetrics` records wall-clock time and
per-superstep counters so overhead and its sources (extra compute work,
trace bytes) are all observable.
"""

from dataclasses import dataclass, field

from repro.common.timing import format_duration


@dataclass
class SuperstepMetrics:
    """Counters for one superstep across all workers."""

    superstep: int
    active_vertices: int = 0
    compute_calls: int = 0
    messages_sent: int = 0
    messages_combined: int = 0
    bytes_sent: int = 0
    compute_seconds: float = 0.0

    def row(self):
        return (
            f"superstep {self.superstep:>4}: active={self.active_vertices:>8} "
            f"msgs={self.messages_sent:>9} combined={self.messages_combined:>8} "
            f"bytes={self.bytes_sent:>11} "
            f"time={format_duration(self.compute_seconds)}"
        )


@dataclass
class RunMetrics:
    """Aggregated counters for one whole run."""

    supersteps: list = field(default_factory=list)
    total_seconds: float = 0.0

    def add_superstep(self, metrics):
        self.supersteps.append(metrics)

    @property
    def num_supersteps(self):
        return len(self.supersteps)

    @property
    def total_messages(self):
        return sum(s.messages_sent for s in self.supersteps)

    @property
    def total_compute_calls(self):
        return sum(s.compute_calls for s in self.supersteps)

    @property
    def total_bytes_sent(self):
        return sum(s.bytes_sent for s in self.supersteps)

    @property
    def total_messages_combined(self):
        return sum(s.messages_combined for s in self.supersteps)

    def summary(self):
        return (
            f"{self.num_supersteps} supersteps, "
            f"{self.total_compute_calls} compute calls, "
            f"{self.total_messages} messages "
            f"({self.total_bytes_sent} bytes), "
            f"{format_duration(self.total_seconds)} total"
        )
