"""Message combiners.

A combiner folds the messages headed to one destination vertex into a
single message before they cross the (simulated) network, exactly as in
Pregel/Giraph. Combining is an optimization the algorithm must opt into
and must be correct under: the combine function has to be commutative and
associative, and the algorithm must not depend on message multiplicity.

Note for Graft users: combined messages lose their per-source identity, so
message-value constraints are checked by the instrumenter at *send* time,
before combining — matching the paper's ``messageValueConstraint(msg,
srcID, dstID, superstep)`` signature, which still sees the source id.
"""


class MessageCombiner:
    """Base combiner; subclasses define the binary fold."""

    def combine(self, first, second):
        """Fold two message values headed to the same vertex into one."""
        raise NotImplementedError

    def fold_column(self, values):
        """Fold a whole inbox's value column (non-empty, canonical order).

        The columnar barrier hands the packed value list straight here, so
        an inbox combines without ever materializing envelopes. The default
        left fold is byte-identical to the envelope path's pairwise
        :meth:`combine`; subclasses may override with a C-speed reduction
        as long as the result is exactly equal.
        """
        folded = values[0]
        for value in values[1:]:
            folded = self.combine(folded, value)
        return folded


class SumCombiner(MessageCombiner):
    """Adds message values (PageRank-style contributions)."""

    def combine(self, first, second):
        return first + second


class MinCombiner(MessageCombiner):
    """Keeps the smaller message value (shortest-paths, components)."""

    def combine(self, first, second):
        return second if second < first else first

    def fold_column(self, values):
        # Same first-smallest-wins semantics as the pairwise fold (min()
        # returns the earliest of equal elements), at C speed.
        return min(values)


class MaxCombiner(MessageCombiner):
    """Keeps the larger message value."""

    def combine(self, first, second):
        return second if second > first else first

    def fold_column(self, values):
        return max(values)
