"""Message combiners.

A combiner folds the messages headed to one destination vertex into a
single message before they cross the (simulated) network, exactly as in
Pregel/Giraph. Combining is an optimization the algorithm must opt into
and must be correct under: the combine function has to be commutative and
associative, and the algorithm must not depend on message multiplicity.

Note for Graft users: combined messages lose their per-source identity, so
message-value constraints are checked by the instrumenter at *send* time,
before combining — matching the paper's ``messageValueConstraint(msg,
srcID, dstID, superstep)`` signature, which still sees the source id.
"""


class MessageCombiner:
    """Base combiner; subclasses define the binary fold."""

    def combine(self, first, second):
        """Fold two message values headed to the same vertex into one."""
        raise NotImplementedError


class SumCombiner(MessageCombiner):
    """Adds message values (PageRank-style contributions)."""

    def combine(self, first, second):
        return first + second


class MinCombiner(MessageCombiner):
    """Keeps the smaller message value (shortest-paths, components)."""

    def combine(self, first, second):
        return second if second < first else first


class MaxCombiner(MessageCombiner):
    """Keeps the larger message value."""

    def combine(self, first, second):
        return second if second > first else first
