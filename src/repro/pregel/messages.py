"""Message envelopes and per-superstep message stores.

Messages internally carry their source vertex id: Graft's message-value
constraints are defined over ``(message, source_id, destination_id,
superstep)`` and the GUI displays the incoming/outgoing messages of a
captured vertex with their endpoints. The plain Giraph ``compute()`` API
still sees only message *values*; envelopes surface through
``ctx.message_envelopes()`` and the debugger.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Envelope:
    """One message in flight: value plus endpoints.

    ``source`` is None for combined messages (per-source identity is folded
    away) and for engine-synthesized messages.
    """

    source: object
    target: object
    value: object


class MessageStore:
    """Messages grouped by destination vertex for one superstep."""

    def __init__(self):
        self._by_target = {}
        self.total_messages = 0

    def deliver(self, envelope):
        """Add one envelope to its destination's inbox."""
        self._by_target.setdefault(envelope.target, []).append(envelope)
        self.total_messages += 1

    def deliver_all(self, envelopes):
        for envelope in envelopes:
            self.deliver(envelope)

    def inbox(self, vertex_id):
        """The envelopes destined for ``vertex_id`` (possibly empty)."""
        return self._by_target.get(vertex_id, [])

    def targets(self):
        """Vertex ids that have at least one incoming message."""
        return self._by_target.keys()

    def has_messages(self):
        return bool(self._by_target)

    def drop_inbox(self, vertex_id):
        """Discard all messages destined for one vertex (resolver 'drop')."""
        dropped = self._by_target.pop(vertex_id, [])
        self.total_messages -= len(dropped)
        return len(dropped)

    def combine(self, combiner):
        """Fold each inbox with ``combiner``, in delivery order.

        Returns the number of messages eliminated. Combined envelopes lose
        their source id (set to None), as on a real cluster where combining
        happens before the network.
        """
        eliminated = 0
        for target, envelopes in self._by_target.items():
            if len(envelopes) <= 1:
                continue
            folded = envelopes[0].value
            for envelope in envelopes[1:]:
                folded = combiner.combine(folded, envelope.value)
            eliminated += len(envelopes) - 1
            self._by_target[target] = [
                Envelope(source=None, target=target, value=folded)
            ]
        self.total_messages -= eliminated
        return eliminated
