"""Message envelopes and per-superstep message stores.

Messages internally carry their source vertex id: Graft's message-value
constraints are defined over ``(message, source_id, destination_id,
superstep)`` and the GUI displays the incoming/outgoing messages of a
captured vertex with their endpoints. The plain Giraph ``compute()`` API
still sees only message *values*; envelopes surface through
``ctx.message_envelopes()`` and the debugger.

Hot-path notes
--------------
Workers emit into *grouped outboxes* (``{target: [envelopes]}``) so the
barrier merge is one ``extend`` per ``(worker, target)`` batch instead of
one dict operation per envelope, and the first worker to reach a target
hands its batch over without copying. After merging every worker's outbox
the store is :meth:`canonicalized <MessageStore.canonicalize>`: each inbox
is stably sorted by the repr of the source id, which makes inbox order —
and therefore combiner folds, ``sum(messages)`` float reductions, and
Graft's captured ``incoming`` lists — independent of how vertices were
partitioned across workers. That ordering is what lets trace files merge
byte-identically across execution backends and worker counts.
"""

from typing import NamedTuple


class _BroadcastTargetType:
    """Placeholder target of a shared broadcast envelope.

    A broadcast (``send_message_to_all_neighbors``) builds *one* envelope
    and files it into every neighbor's outbox batch; the real target is
    the batch key. A dedicated singleton (rather than None) keeps the
    placeholder distinguishable from a user vertex id, and ``__reduce__``
    preserves identity across the process backend's pickle pipe.
    """

    __slots__ = ()

    def __repr__(self):
        return "<broadcast>"

    def __reduce__(self):
        return (_broadcast_target, ())


BROADCAST_TARGET = _BroadcastTargetType()


def _broadcast_target():
    return BROADCAST_TARGET


class Envelope(NamedTuple):
    """One message in flight: value plus endpoints.

    ``source`` is None for combined messages (per-source identity is folded
    away) and for engine-synthesized messages. ``target`` is
    :data:`BROADCAST_TARGET` for envelopes shared across a broadcast
    fan-out — there the authoritative target is the outbox/inbox key the
    envelope is filed under, never the field.

    A ``NamedTuple`` rather than a dataclass: envelope construction is the
    single hottest allocation in the engine, and tuple ``__new__`` avoids
    the per-field ``object.__setattr__`` cost of a frozen dataclass.
    """

    source: object
    target: object
    value: object


def _canonical_source_key(envelope):
    """Partition-independent sort key for inbox ordering."""
    return repr(envelope.source)


def group_by_target(envelopes):
    """Group an iterable of envelopes into ``{target: [envelopes]}``."""
    grouped = {}
    for envelope in envelopes:
        batch = grouped.get(envelope.target)
        if batch is None:
            grouped[envelope.target] = [envelope]
        else:
            batch.append(envelope)
    return grouped


class MessageStore:
    """Messages grouped by destination vertex for one superstep."""

    def __init__(self):
        self._by_target = {}
        self.total_messages = 0

    def deliver(self, envelope):
        """Add one envelope to its destination's inbox."""
        self._by_target.setdefault(envelope.target, []).append(envelope)
        self.total_messages += 1

    def deliver_all(self, envelopes):
        for envelope in envelopes:
            self.deliver(envelope)

    def merge_grouped(self, grouped):
        """Merge a grouped outbox (``{target: [envelopes]}``) in one pass.

        The batch list is adopted directly when the target has no inbox yet
        (the common case: each worker is the only sender to most of its
        targets), so routing a message costs one dict lookup per *batch*,
        not per envelope. Callers hand over ownership of the batch lists.
        Returns the number of envelopes merged.
        """
        by_target = self._by_target
        merged = 0
        for target, batch in grouped.items():
            existing = by_target.get(target)
            if existing is None:
                by_target[target] = batch
            else:
                existing.extend(batch)
            merged += len(batch)
        self.total_messages += merged
        return merged

    def canonicalize(self):
        """Stably sort each inbox into partition-independent order.

        After the per-worker merge, inbox order reflects which worker sent
        first — an artifact of the partitioning. Sorting by the source id's
        repr (stable, so one source's messages keep their emission order)
        makes delivery order a pure function of the computation, identical
        across execution backends and worker counts.
        """
        for envelopes in self._by_target.values():
            if len(envelopes) > 1:
                envelopes.sort(key=_canonical_source_key)

    def inbox(self, vertex_id):
        """The envelopes destined for ``vertex_id`` (possibly empty)."""
        return self._by_target.get(vertex_id, [])

    def inbox_values(self, vertex_id):
        """Message values for ``vertex_id`` in delivery order.

        Part of the store protocol shared with
        :class:`~repro.pregel.columnar.ColumnarMessageStore`, where the
        values come straight off the packed column.
        """
        batch = self._by_target.get(vertex_id)
        if batch is None:
            return []
        return [envelope.value for envelope in batch]

    def incoming_view(self, vertex_id):
        """What ``ComputeContext`` receives as ``incoming`` (here: the list)."""
        return self._by_target.get(vertex_id, [])

    def has_inbox(self, vertex_id):
        """True when at least one message is destined for ``vertex_id``."""
        return vertex_id in self._by_target

    def load_partition(self, partition_id):
        """Partition-at-a-time read protocol: the in-memory store holds
        every partition's inbox at once, so the "loaded view" is the store
        itself. The spill plane's store returns a per-partition view here.
        """
        return self

    @property
    def eliminated(self):
        """Combiner eliminations attributable to a loaded view (spill
        plane); the in-memory store combines at the producing barrier and
        reports eliminations there, so views report zero."""
        return 0

    def iter_checkpoint_messages(self):
        """``(source, target, value)`` for every in-flight message, in
        per-target delivery order — the order a checkpoint must preserve."""
        for target, envelopes in self._by_target.items():
            for envelope in envelopes:
                yield envelope.source, target, envelope.value

    def targets(self):
        """Vertex ids that have at least one incoming message."""
        return self._by_target.keys()

    def missing_targets(self, locations):
        """Targets with messages but no vertex (the resolver's work list)."""
        return [
            target for target in self._by_target if target not in locations
        ]

    def has_messages(self):
        return bool(self._by_target)

    def drop_inbox(self, vertex_id):
        """Discard all messages destined for one vertex (resolver 'drop')."""
        dropped = self._by_target.pop(vertex_id, [])
        self.total_messages -= len(dropped)
        return len(dropped)

    def combine(self, combiner):
        """Fold each inbox with ``combiner``, in delivery order.

        Returns the number of messages eliminated. Combined envelopes lose
        their source id (set to None), as on a real cluster where combining
        happens before the network.
        """
        eliminated = 0
        for target, envelopes in self._by_target.items():
            if len(envelopes) <= 1:
                continue
            folded = envelopes[0].value
            for envelope in envelopes[1:]:
                folded = combiner.combine(folded, envelope.value)
            eliminated += len(envelopes) - 1
            self._by_target[target] = [
                Envelope(source=None, target=target, value=folded)
            ]
        self.total_messages -= eliminated
        return eliminated
