"""Synchronous label propagation (community detection).

Every vertex starts labeled with its own id and repeatedly adopts the most
frequent label among its neighbors (ties break toward the smaller label).
Synchronous LPA can oscillate on symmetric structures, so the computation
runs a fixed number of iterations — the standard Pregel formulation.
"""

from collections import Counter

from repro.pregel.computation import Computation


class LabelPropagation(Computation):
    """Vertex value converges to a community label."""

    def __init__(self, iterations=10):
        self.iterations = iterations

    def initial_value(self, vertex_id, input_value):
        return vertex_id

    def compute(self, ctx, messages):
        if ctx.superstep > 0 and messages:
            counts = Counter(messages)
            best_count = max(counts.values())
            candidates = [
                label for label, count in counts.items() if count == best_count
            ]
            ctx.set_value(min(candidates, key=repr))
        if ctx.superstep < self.iterations:
            ctx.send_message_to_all_neighbors(ctx.value)
        else:
            ctx.vote_to_halt()


class BuggyLabelPropagation(Computation):
    """LPA with the classic last-wins tie-break bug (order sensitivity).

    Instead of collapsing tied label counts deterministically, the hand
    tally keeps whichever tied label it happened to see *last* — the
    ``>=`` guard is a last-wins update over an unordered message bag.
    Under the engine's canonical delivery order every run agrees, which
    is exactly what makes the bug invisible in testing; permute the
    delivery order (``repro san``) and communities come out different.
    graft-lint flags the guarded last-wins fold as GL016 before the run.
    """

    def __init__(self, iterations=10):
        self.iterations = iterations

    def initial_value(self, vertex_id, input_value):
        return vertex_id

    def compute(self, ctx, messages):
        if ctx.superstep > 0 and messages:
            counts = {}
            best_label = ctx.value
            best_count = 0
            for label in messages:
                tally = counts.get(label, 0) + 1
                counts[label] = tally
                if tally >= best_count:   # >=: the *last* tied label wins
                    best_count = tally
                    best_label = label
            ctx.set_value(best_label)
        if ctx.superstep < self.iterations:
            ctx.send_message_to_all_neighbors(ctx.value)
        else:
            ctx.vote_to_halt()


def communities(vertex_values):
    """Group vertices by final label: ``{label: sorted members}``.

    >>> communities({1: "a", 2: "a", 3: "b"})
    {'a': [1, 2], 'b': [3]}
    """
    groups = {}
    for vertex_id, label in vertex_values.items():
        groups.setdefault(label, []).append(vertex_id)
    return {
        label: sorted(members, key=repr)
        for label, members in sorted(groups.items(), key=lambda kv: repr(kv[0]))
    }
