"""Vertex-centric algorithms.

Contains the three algorithms of the paper's demo scenarios — graph
coloring (GC), random walk simulation (RW), and approximate maximum-weight
matching (MWM) — each in a correct version and, for GC and RW, the buggy
version the scenario debugs. Connected components, PageRank, and
single-source shortest paths round out the standard Pregel repertoire
(connected components is the algorithm behind the paper's Figure 5
screenshot).
"""

from repro.algorithms.coloring import (
    BuggyGraphColoring,
    GCMaster,
    GCMessage,
    GCValue,
    GraphColoring,
    color_counts,
    find_coloring_conflicts,
)
from repro.algorithms.components import (
    ConnectedComponents,
    component_sizes,
)
from repro.algorithms.kcore import KCore, KCoreValue, core_members
from repro.algorithms.label_propagation import (
    BuggyLabelPropagation,
    LabelPropagation,
    communities,
)
from repro.algorithms.matching import (
    MaximumWeightMatching,
    MWMValue,
    extract_matching,
    matching_weight,
)
from repro.algorithms.pagerank import PageRank, TolerancePageRank, TolerancePRMaster
from repro.algorithms.random_walk import (
    BuggyRandomWalk,
    RandomWalk,
    total_walkers,
)
from repro.algorithms.shortest_paths import (
    BreadthFirstSearch,
    BuggyPhasedShortestPaths,
    BuggyPhaseGapBroadcast,
    PhasedShortestPaths,
    ShortestPaths,
)
from repro.algorithms.triangles import TriangleCount, total_triangles

__all__ = [
    "GraphColoring",
    "BuggyGraphColoring",
    "GCMaster",
    "GCValue",
    "GCMessage",
    "color_counts",
    "find_coloring_conflicts",
    "ConnectedComponents",
    "component_sizes",
    "MaximumWeightMatching",
    "MWMValue",
    "extract_matching",
    "matching_weight",
    "PageRank",
    "TolerancePageRank",
    "TolerancePRMaster",
    "RandomWalk",
    "BuggyRandomWalk",
    "total_walkers",
    "ShortestPaths",
    "BreadthFirstSearch",
    "PhasedShortestPaths",
    "BuggyPhasedShortestPaths",
    "BuggyPhaseGapBroadcast",
    "TriangleCount",
    "total_triangles",
    "KCore",
    "KCoreValue",
    "core_members",
    "LabelPropagation",
    "BuggyLabelPropagation",
    "communities",
]
