"""Connected components by label propagation (HashMin).

Every vertex starts labeled with its own id and adopts the minimum label it
hears; converged labels identify weakly/undirectedly connected components.
This is the algorithm behind the paper's Figure 5 (the GUI screenshot
"from a connected components algorithm, where the values are vertex IDs").
"""

from collections import Counter

from repro.pregel.computation import Computation


class ConnectedComponents(Computation):
    """HashMin label propagation; run on an undirected (symmetrized) graph."""

    def initial_value(self, vertex_id, input_value):
        return vertex_id

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(ctx.value)
            ctx.vote_to_halt()
            return
        best = min(messages) if messages else ctx.value
        if best < ctx.value:
            ctx.set_value(best)
            ctx.send_message_to_all_neighbors(best)
        ctx.vote_to_halt()


def component_sizes(vertex_values):
    """Histogram ``{component_label: size}`` from a result's vertex values.

    >>> component_sizes({1: 1, 2: 1, 3: 3})
    {1: 2, 3: 1}
    """
    return dict(Counter(vertex_values.values()))
