"""PageRank, in fixed-iteration and tolerance-driven forms.

The fixed-iteration version is the classic Pregel example. The
tolerance-driven version shows the master/aggregator pattern the paper's
Section 2 describes: vertices aggregate their rank deltas, and the master
halts the computation once the summed delta falls below a threshold.
"""

from repro.pregel.aggregators import SumAggregator
from repro.pregel.computation import Computation
from repro.pregel.master import MasterComputation

DAMPING = 0.85


class PageRank(Computation):
    """Fixed-iteration PageRank.

    Vertex values converge toward ``(1 - d) + d * sum(in_ranks)``; dangling
    vertices simply stop contributing (the usual simplified Pregel variant).
    """

    def __init__(self, iterations=20):
        self.iterations = iterations

    def initial_value(self, vertex_id, input_value):
        return 1.0

    def compute(self, ctx, messages):
        if ctx.superstep > 0:
            # Value-sorted fold: float addition is not associative, so
            # summing in delivery order would leak schedule-dependent low
            # bits into the rank (GL018). Sorting first makes the result
            # a pure function of the message *bag*.
            ctx.set_value((1.0 - DAMPING) + DAMPING * sum(sorted(messages)))
        if ctx.superstep < self.iterations:
            if ctx.out_degree:
                share = ctx.value / ctx.out_degree
                ctx.send_message_to_all_neighbors(share)
        else:
            ctx.vote_to_halt()


DELTA_AGGREGATOR = "pr_total_delta"


class TolerancePageRank(Computation):
    """PageRank that reports per-vertex deltas through an aggregator."""

    def initial_value(self, vertex_id, input_value):
        return 1.0

    def compute(self, ctx, messages):
        if ctx.superstep > 0:
            new_value = (1.0 - DAMPING) + DAMPING * sum(sorted(messages))
            ctx.aggregate(DELTA_AGGREGATOR, abs(new_value - ctx.value))
            ctx.set_value(new_value)
        if ctx.out_degree:
            ctx.send_message_to_all_neighbors(ctx.value / ctx.out_degree)


class TolerancePRMaster(MasterComputation):
    """Halts once the summed rank delta drops below ``tolerance``."""

    def __init__(self, tolerance=1e-3, min_supersteps=2):
        self.tolerance = tolerance
        self.min_supersteps = min_supersteps

    def initialize(self, registry):
        registry.register(DELTA_AGGREGATOR, SumAggregator(0.0))

    def master_compute(self, master_ctx):
        if master_ctx.superstep < self.min_supersteps:
            return
        if master_ctx.aggregated_value(DELTA_AGGREGATOR) < self.tolerance:
            master_ctx.halt_computation()
