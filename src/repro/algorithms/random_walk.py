"""Random walk simulation (the paper's RW, from the GPS paper).

Every vertex starts with ``initial_walkers`` walkers. Each superstep, a
vertex "declares a local counter for each of its neighbors, randomly
increments one of the counters by one for each of its walkers, then sends
the counters as messages to its neighbors" (Section 4.2). The vertex value
is the number of walkers currently sitting on it.

:class:`BuggyRandomWalk` reproduces the scenario's defect exactly as the
paper describes it: "to optimize the memory and network I/O, our
implementation declares the counters and messages as 16-bit short primitive
types" — so once more than 32767 walkers flow from one vertex to one
neighbor, the counter wraps and the vertex sends a *negative* number of
walkers. The correct version uses unbounded integers.

Randomness comes from the per-(vertex, superstep) context RNG, so runs are
reproducible and Graft can replay the exact walker distribution.
"""

from collections import Counter

from repro.pregel.computation import Computation
from repro.pregel.value_types import Short16

DEFAULT_INITIAL_WALKERS = 100


class RandomWalk(Computation):
    """Correct RW: walker counters are plain (unbounded) integers."""

    def __init__(self, steps=10, initial_walkers=DEFAULT_INITIAL_WALKERS):
        self.steps = steps
        self.initial_walkers = initial_walkers

    def initial_value(self, vertex_id, input_value):
        return self.initial_walkers

    def _make_counter(self, count):
        """How this variant represents one per-neighbor walker counter."""
        return count

    def compute(self, ctx, messages):
        if ctx.superstep > 0:
            arrived = 0
            for count in messages:
                arrived += int(count)
            if arrived:
                # Walkers already parked here (a sink kept them) plus the
                # newly arrived ones; senders zeroed themselves last step.
                ctx.set_value(int(ctx.value) + arrived)
        if ctx.superstep >= self.steps:
            ctx.vote_to_halt()
            return
        walkers = int(ctx.value)
        neighbors = list(ctx.neighbor_ids())
        if walkers <= 0 or not neighbors:
            # Walkers on a sink vertex stay put; value already reflects them.
            return
        counters = Counter(ctx.rng.choices(neighbors, k=walkers))
        for target, count in counters.items():
            ctx.send_message(target, self._make_counter(count))
        ctx.set_value(0)


class BuggyRandomWalk(RandomWalk):
    """RW with the 16-bit short counters of Scenario 4.2.

    A counter above ``Short16.max_value()`` (32767) silently wraps negative,
    and the neighbor receives a negative walker count — the violation a
    Graft message-value constraint ``msg >= 0`` catches.
    """

    def _make_counter(self, count):
        return Short16(count)


def total_walkers(vertex_values):
    """Total walkers across vertices (conserved by the correct variant).

    >>> total_walkers({1: 40, 2: 60})
    100
    """
    return sum(int(value) for value in vertex_values.values())
