"""Triangle counting, the classic two-superstep Pregel pattern.

Superstep 0: every vertex sends its neighbor-id set to all neighbors.
Superstep 1: a vertex intersects each received set with its own neighbor
set; each triangle through vertex ``v`` is seen twice (once via each of the
other two corners), so the per-vertex count is the sum halved, and the
global count is the per-vertex total divided by three.

Run on an undirected (symmetric directed) graph without self-loops.
"""

from repro.pregel.computation import Computation


class TriangleCount(Computation):
    """Vertex value ends as the number of triangles through that vertex."""

    def initial_value(self, vertex_id, input_value):
        return 0

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            neighborhood = frozenset(ctx.neighbor_ids())
            ctx.send_message_to_all_neighbors(neighborhood)
            return
        mine = set(ctx.neighbor_ids())
        seen_twice = 0
        for neighborhood in messages:
            seen_twice += len(mine & neighborhood)
        ctx.set_value(seen_twice // 2)
        ctx.vote_to_halt()


def total_triangles(vertex_values):
    """Global triangle count from a result's per-vertex counts.

    >>> total_triangles({0: 1, 1: 1, 2: 1})
    1
    """
    return sum(vertex_values.values()) // 3
