"""k-core decomposition by iterative peeling.

A vertex survives in the k-core iff it has at least ``k`` neighbors that
also survive. Vertices with too few remaining neighbors remove themselves
and announce it; survivors decrement their remaining-degree counts as
removal notices arrive, possibly cascading. The computation converges when
no vertex changes — the classic peeling algorithm, message-driven.
"""

from dataclasses import dataclass, replace

from repro.common.serialization import register_value_type
from repro.pregel.computation import Computation


@register_value_type
@dataclass(frozen=True)
class KCoreValue:
    """``in_core``: still surviving; ``remaining``: surviving neighbors."""

    in_core: bool
    remaining: int


class KCore(Computation):
    """Marks each vertex with whether it belongs to the k-core."""

    def __init__(self, k):
        self.k = k

    def initial_value(self, vertex_id, input_value):
        return KCoreValue(in_core=True, remaining=0)

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            degree = ctx.out_degree
            if degree < self.k:
                ctx.set_value(KCoreValue(in_core=False, remaining=degree))
                ctx.send_message_to_all_neighbors("REMOVED")
            else:
                ctx.set_value(KCoreValue(in_core=True, remaining=degree))
            ctx.vote_to_halt()
            return
        value = ctx.value
        if not value.in_core:
            ctx.vote_to_halt()
            return
        remaining = value.remaining - len(messages)
        if remaining < self.k:
            ctx.set_value(KCoreValue(in_core=False, remaining=remaining))
            ctx.send_message_to_all_neighbors("REMOVED")
        else:
            ctx.set_value(replace(value, remaining=remaining))
        ctx.vote_to_halt()


def core_members(vertex_values):
    """Ids of the vertices that survived, sorted by repr.

    >>> core_members({1: KCoreValue(True, 3), 2: KCoreValue(False, 1)})
    [1]
    """
    return sorted(
        (v for v, value in vertex_values.items() if value.in_core), key=repr
    )
