"""Single-source shortest paths and BFS.

The canonical Pregel relaxation: the source starts at distance 0, every
improvement propagates ``distance + edge_weight`` to neighbors, everyone
halts between improvements. Use :class:`~repro.pregel.MinCombiner` to cut
message volume.
"""

import math

from repro.pregel.computation import Computation


class ShortestPaths(Computation):
    """Weighted SSSP from ``source``; unreachable vertices end at ``inf``.

    Edge values are the weights; a None edge value means weight 1.
    """

    def __init__(self, source):
        self.source = source

    def initial_value(self, vertex_id, input_value):
        return 0.0 if vertex_id == self.source else math.inf

    def compute(self, ctx, messages):
        best = min(messages) if messages else math.inf
        if ctx.superstep == 0 and ctx.vertex_id == self.source:
            best = 0.0
        if best < ctx.value or (ctx.superstep == 0 and ctx.vertex_id == self.source):
            if best < ctx.value:
                ctx.set_value(best)
            for target, weight in ctx.out_edges():
                ctx.send_message(target, ctx.value + (1 if weight is None else weight))
        ctx.vote_to_halt()


class BreadthFirstSearch(ShortestPaths):
    """Hop-count BFS: SSSP where every edge weighs 1."""

    def compute(self, ctx, messages):
        best = min(messages) if messages else math.inf
        if ctx.superstep == 0 and ctx.vertex_id == self.source:
            best = 0.0
        if best < ctx.value or (ctx.superstep == 0 and ctx.vertex_id == self.source):
            if best < ctx.value:
                ctx.set_value(best)
            ctx.send_message_to_all_neighbors(ctx.value + 1)
        ctx.vote_to_halt()
