"""Single-source shortest paths and BFS.

The canonical Pregel relaxation: the source starts at distance 0, every
improvement propagates ``distance + edge_weight`` to neighbors, everyone
halts between improvements. Use :class:`~repro.pregel.MinCombiner` to cut
message volume.
"""

import math

from repro.pregel.computation import Computation


class ShortestPaths(Computation):
    """Weighted SSSP from ``source``; unreachable vertices end at ``inf``.

    Edge values are the weights; a None edge value means weight 1.
    """

    def __init__(self, source):
        self.source = source

    def initial_value(self, vertex_id, input_value):
        return 0.0 if vertex_id == self.source else math.inf

    def compute(self, ctx, messages):
        best = min(messages) if messages else math.inf
        if ctx.superstep == 0 and ctx.vertex_id == self.source:
            best = 0.0
        if best < ctx.value or (ctx.superstep == 0 and ctx.vertex_id == self.source):
            if best < ctx.value:
                ctx.set_value(best)
            for target, weight in ctx.out_edges():
                ctx.send_message(target, ctx.value + (1 if weight is None else weight))
        ctx.vote_to_halt()


class BreadthFirstSearch(ShortestPaths):
    """Hop-count BFS: SSSP where every edge weighs 1."""

    def compute(self, ctx, messages):
        best = min(messages) if messages else math.inf
        if ctx.superstep == 0 and ctx.vertex_id == self.source:
            best = 0.0
        if best < ctx.value or (ctx.superstep == 0 and ctx.vertex_id == self.source):
            if best < ctx.value:
                ctx.set_value(best)
            ctx.send_message_to_all_neighbors(ctx.value + 1)
        ctx.vote_to_halt()


class PhasedShortestPaths(Computation):
    """SSSP with the relaxation factored into a helper method.

    Semantically identical to :class:`ShortestPaths`, but written the
    way production vertex programs usually are: the seed phase and the
    relax phase are separate branches and the actual message fan-out
    lives in ``self._relax``. graft-lint's interprocedural summaries see
    the sends through the helper, so the class stays finding-free.
    """

    def __init__(self, source=0):
        self.source = source

    def initial_value(self, vertex_id, input_value):
        return 0.0 if vertex_id == self.source else math.inf

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            if ctx.vertex_id == self.source:
                self._relax(ctx, 0.0)
        else:
            best = min(messages) if messages else math.inf
            if best < ctx.value:
                ctx.set_value(best)
                self._relax(ctx, best)
        ctx.vote_to_halt()

    def _relax(self, ctx, distance):
        for target, weight in ctx.out_edges():
            ctx.send_message(
                target, distance + (1.0 if weight is None else weight)
            )


class BuggyPhasedShortestPaths(PhasedShortestPaths):
    """Phased SSSP whose two phases disagree about the wire protocol.

    The seed phase broadcasts ``(weight, sender_id)`` *pairs* — someone
    wanted provenance on the first hop — but the gather phase still
    folds the inbox with ``sum(messages)``. The tuples arrive in
    superstep 1 and the sum raises ``TypeError`` on the first vertex
    with an in-edge from the source. graft-lint proves the mismatch
    statically (GL022): the delivery interval of the tuple send
    intersects the phase that does numeric folding.
    """

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            if ctx.vertex_id == self.source:
                for target, weight in ctx.out_edges():
                    ctx.send_message(
                        target,
                        ((1.0 if weight is None else weight), ctx.vertex_id),
                    )
        else:
            total = sum(messages)
            if total < ctx.value:
                ctx.set_value(total)
                self._relax(ctx, total)
        ctx.vote_to_halt()


class BuggyPhaseGapBroadcast(Computation):
    """Two-hop broadcast with an off-by-one phase guard.

    Phase 0 seeds a wave, phase 1 relays it — so the relayed values are
    *delivered* in superstep 2. But the collection guard says
    ``superstep == 3``: nothing reads the inbox in superstep 2, Pregel
    discards the undelivered wave at the barrier, and phase 3 computes
    from its empty-inbox default (``-1.0``) instead. graft-lint proves
    the gap statically (GL023): the relay's delivery interval sits
    inside the program's read window but intersects no individual read
    phase. At runtime a non-negative vertex-value constraint catches
    the default leaking into the vertex state.
    """

    def initial_value(self, vertex_id, input_value):
        return 0.0

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(1.0)
        elif ctx.superstep == 1:
            incoming = min(messages) if messages else 0.0
            ctx.send_message_to_all_neighbors(incoming + 1.0)
        elif ctx.superstep == 3:
            ctx.set_value(min(messages) if messages else -1.0)
            ctx.vote_to_halt()
        elif ctx.superstep >= 4:
            ctx.vote_to_halt()
