"""Approximate maximum-weight matching (the paper's MWM, after Preis).

The handshake formulation used on Pregel-like systems: in each round every
unmatched vertex points at (proposes to) its maximum-weight remaining
neighbor, ties broken toward the smaller id; two vertices pointing at each
other match, announce it, and leave the graph (with all incident edges);
rounds repeat until no vertices with edges remain.

Rounds alternate over superstep parity:

- even supersteps (PROPOSE): drop edges to neighbors announced as matched,
  then propose to the best remaining neighbor (or halt if no edges remain);
- odd supersteps (MATCH): a vertex whose chosen neighbor proposed back is
  matched; it announces ``MATCHED`` to all remaining neighbors and halts.

With *symmetric* edge weights every round matches at least the globally
heaviest remaining edge's endpoints, so the computation always terminates.
The paper's Scenario 4.3 feeds it a corrupted "undirected" graph whose two
directions disagree on some weights; preference cycles then never resolve
and the computation runs forever — the infinite loop the Graft user
diagnoses by capturing all active vertices late in the run.
"""

from dataclasses import dataclass, replace

from repro.common.serialization import register_value_type
from repro.pregel.computation import Computation

UNMATCHED = "UNMATCHED"
MATCHED = "MATCHED"


@register_value_type
@dataclass(frozen=True)
class MWMValue:
    """state, current proposal target, and final partner (or None)."""

    state: str = UNMATCHED
    proposed_to: object = None
    matched_to: object = None


@register_value_type
@dataclass(frozen=True)
class MWMMessage:
    """``PROPOSE`` carries the proposer's id; ``MATCHED`` the leaver's id."""

    kind: str
    sender: object


class MaximumWeightMatching(Computation):
    """Preis-style 1/2-approximate MWM over symmetric positive weights."""

    def initial_value(self, vertex_id, input_value):
        return MWMValue()

    def compute(self, ctx, messages):
        if ctx.value.state == MATCHED:
            ctx.vote_to_halt()
            return
        if ctx.superstep % 2 == 0:
            self._propose(ctx, messages)
        else:
            self._match(ctx, messages)

    def _propose(self, ctx, messages):
        for message in messages:
            if message.kind == "MATCHED":
                ctx.remove_edge(message.sender)
        best = self._best_neighbor(ctx)
        if best is None:
            # No remaining edges: this vertex can never match.
            ctx.vote_to_halt()
            return
        ctx.set_value(replace(ctx.value, proposed_to=best))
        ctx.send_message(best, MWMMessage(kind="PROPOSE", sender=ctx.vertex_id))

    def _best_neighbor(self, ctx):
        """Max-weight neighbor; ties break toward the smaller id."""
        best = None
        best_key = None
        for target, weight in ctx.out_edges():
            key = (-(weight if weight is not None else 1.0), repr(target))
            if best_key is None or key < best_key:
                best = target
                best_key = key
        return best

    def _match(self, ctx, messages):
        proposers = {m.sender for m in messages if m.kind == "PROPOSE"}
        if ctx.value.proposed_to in proposers:
            partner = ctx.value.proposed_to
            ctx.set_value(MWMValue(state=MATCHED, matched_to=partner))
            for target in ctx.neighbor_ids():
                if target != partner:
                    ctx.send_message(
                        target, MWMMessage(kind="MATCHED", sender=ctx.vertex_id)
                    )
            ctx.vote_to_halt()
        # Otherwise stay unmatched and propose again next (even) superstep.


def extract_matching(vertex_values):
    """The matched pairs as a set of frozensets ``{u, v}``.

    >>> pairs = extract_matching({
    ...     1: MWMValue(state=MATCHED, matched_to=2),
    ...     2: MWMValue(state=MATCHED, matched_to=1),
    ...     3: MWMValue(),
    ... })
    >>> pairs == {frozenset({1, 2})}
    True
    """
    pairs = set()
    for vertex_id, value in vertex_values.items():
        if value.state == MATCHED and value.matched_to is not None:
            pairs.add(frozenset((vertex_id, value.matched_to)))
    return pairs


def matching_weight(graph, pairs):
    """Total weight of a matching's edges (None-valued edges weigh 1)."""
    total = 0.0
    for pair in pairs:
        u, v = tuple(pair)
        weight = graph.edge_value(u, v)
        total += 1.0 if weight is None else weight
    return total
