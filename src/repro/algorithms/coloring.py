"""Graph coloring by iterated maximal independent sets (the paper's GC).

Following Gebremedhin–Manne and the Pregel formulation in Salihoglu &
Widom, the algorithm repeatedly finds a maximal independent set (MIS) of
the still-uncolored graph with a Luby-style randomized procedure, assigns
every MIS member the current round's color, removes them, and repeats until
no uncolored vertex remains. A master computation drives the phases through
a ``phase`` aggregator — the exact multi-phase pattern the paper describes
(and whose JUnit example in Figure 6 shows a ``CONFLICT-RESOLUTION`` phase
and ``TENTATIVELY_IN_SET`` / ``NBR_IN_SET`` artifacts).

Phases within one color round:

- ``SELECT``: every still-``UNKNOWN`` vertex draws a random priority and
  sends it (with its id) to all neighbors.
- ``DECIDE``: an ``UNKNOWN`` vertex whose (priority, id) beats every
  neighboring ``UNKNOWN`` priority it heard enters the MIS
  (``IN_SET``) and announces ``NBR_IN_SET`` to its neighbors.
- ``DISCOVER``: ``UNKNOWN`` vertices hearing ``NBR_IN_SET`` drop out of
  this round (``NOT_IN_SET``); remaining ``UNKNOWN`` vertices are counted
  through an aggregator. The master loops back to ``SELECT`` while any
  remain, then runs ``ASSIGN``.
- ``ASSIGN``: ``IN_SET`` vertices take the round's color and halt
  (``COLORED``); ``NOT_IN_SET`` vertices reset to ``UNKNOWN`` for the next
  round. Uncolored vertices are counted; the master halts at zero.

:class:`BuggyGraphColoring` reproduces the paper's Scenario 4.1 defect: its
MIS decision compares coarse integer priorities with ``<=`` and no id
tie-break, so two adjacent vertices that draw the same priority *both*
enter the MIS and end up with the same color.
"""

from dataclasses import dataclass, replace

from repro.common.serialization import register_value_type
from repro.pregel.aggregators import OverwriteAggregator, SumAggregator
from repro.pregel.computation import Computation
from repro.pregel.master import MasterComputation

# Vertex states.
UNKNOWN = "UNKNOWN"
IN_SET = "IN_SET"
NOT_IN_SET = "NOT_IN_SET"
COLORED = "COLORED"

# Phases (broadcast by the master through the `phase` aggregator).
SELECT = "SELECT"
DECIDE = "DECIDE"
DISCOVER = "DISCOVER"
ASSIGN = "ASSIGN"

PHASE_AGG = "phase"
ROUND_AGG = "round"
UNKNOWN_COUNT_AGG = "unknown_count"
UNCOLORED_COUNT_AGG = "uncolored_count"

#: Priority space for the randomized MIS draw. Coarse on purpose: the buggy
#: variant's missing tie-break only misbehaves when ties actually occur.
PRIORITY_SPACE = 1 << 16


@register_value_type
@dataclass(frozen=True)
class GCValue:
    """Vertex value: assigned color (None until colored), state, priority."""

    color: object = None
    state: str = UNKNOWN
    priority: int = -1


@register_value_type
@dataclass(frozen=True)
class GCMessage:
    """Messages: ``PRIORITY`` carries (priority, sender id); ``NBR_IN_SET``
    announces the sender joined the MIS."""

    kind: str
    sender: object = None
    priority: int = -1


class GraphColoring(Computation):
    """The correct GC implementation (ties broken by vertex id)."""

    def initial_value(self, vertex_id, input_value):
        return GCValue()

    def compute(self, ctx, messages):
        phase = ctx.aggregated_value(PHASE_AGG)
        value = ctx.value
        if value.state == COLORED:
            ctx.vote_to_halt()
            return
        if phase == SELECT:
            self._select(ctx, value)
        elif phase == DECIDE:
            self._decide(ctx, value, messages)
        elif phase == DISCOVER:
            self._discover(ctx, value, messages)
        elif phase == ASSIGN:
            self._assign(ctx, value)

    def _select(self, ctx, value):
        if value.state != UNKNOWN:
            return
        priority = ctx.rng.randrange(PRIORITY_SPACE)
        ctx.set_value(replace(value, priority=priority))
        ctx.send_message_to_all_neighbors(
            GCMessage(kind="PRIORITY", sender=ctx.vertex_id, priority=priority)
        )

    def _decide(self, ctx, value, messages):
        if value.state != UNKNOWN:
            return
        if self._enters_mis(ctx, value, messages):
            ctx.set_value(replace(value, state=IN_SET))
            ctx.send_message_to_all_neighbors(
                GCMessage(kind="NBR_IN_SET", sender=ctx.vertex_id)
            )

    def _enters_mis(self, ctx, value, messages):
        """MIS test: my (priority, id) must beat every UNKNOWN neighbor's."""
        mine = (value.priority, repr(ctx.vertex_id))
        for message in messages:
            if message.kind != "PRIORITY":
                continue
            theirs = (message.priority, repr(message.sender))
            if theirs < mine:
                return False
        return True

    def _discover(self, ctx, value, messages):
        if value.state != UNKNOWN:
            return
        if any(m.kind == "NBR_IN_SET" for m in messages):
            ctx.set_value(replace(value, state=NOT_IN_SET))
        else:
            ctx.aggregate(UNKNOWN_COUNT_AGG, 1)

    def _assign(self, ctx, value):
        if value.state == IN_SET:
            round_number = ctx.aggregated_value(ROUND_AGG)
            ctx.set_value(GCValue(color=round_number, state=COLORED))
            ctx.vote_to_halt()
            return
        ctx.set_value(replace(value, state=UNKNOWN, priority=-1))
        ctx.aggregate(UNCOLORED_COUNT_AGG, 1)


class BuggyGraphColoring(GraphColoring):
    """The paper's buggy GC: adjacent vertices can join the same MIS.

    The decision uses ``<=`` against the smallest neighbor priority and
    ignores vertex ids, so a priority *tie* between adjacent vertices admits
    both — they then receive the same color. With a 4-bit priority space
    ties are common enough that a random capture of ~10 vertices usually
    shows the conflict, as in Scenario 4.1.
    """

    BUGGY_PRIORITY_SPACE = 1 << 4

    def _select(self, ctx, value):
        if value.state != UNKNOWN:
            return
        priority = ctx.rng.randrange(self.BUGGY_PRIORITY_SPACE)
        ctx.set_value(replace(value, priority=priority))
        ctx.send_message_to_all_neighbors(
            GCMessage(kind="PRIORITY", sender=ctx.vertex_id, priority=priority)
        )

    def _enters_mis(self, ctx, value, messages):
        # BUG: `<=` with no id tie-break lets both ends of a tie enter.
        neighbor_priorities = [
            m.priority for m in messages if m.kind == "PRIORITY"
        ]
        if not neighbor_priorities:
            return True
        return value.priority <= min(neighbor_priorities)


class GCMaster(MasterComputation):
    """Drives the SELECT → DECIDE → DISCOVER → (SELECT | ASSIGN) cycle."""

    def initialize(self, registry):
        registry.register(PHASE_AGG, OverwriteAggregator())
        registry.register(ROUND_AGG, OverwriteAggregator(0))
        registry.register(UNKNOWN_COUNT_AGG, SumAggregator(0))
        registry.register(UNCOLORED_COUNT_AGG, SumAggregator(0))

    def master_compute(self, master_ctx):
        previous = master_ctx.aggregated_value(PHASE_AGG)
        if previous is None:
            master_ctx.set_aggregated_value(PHASE_AGG, SELECT)
            master_ctx.set_aggregated_value(ROUND_AGG, 0)
        elif previous == SELECT:
            master_ctx.set_aggregated_value(PHASE_AGG, DECIDE)
        elif previous == DECIDE:
            master_ctx.set_aggregated_value(PHASE_AGG, DISCOVER)
        elif previous == DISCOVER:
            still_unknown = master_ctx.aggregated_value(UNKNOWN_COUNT_AGG)
            # Reset after reading: an untouched aggregator keeps its visible
            # value across barriers, so a stale count must not leak into the
            # next DISCOVER round.
            master_ctx.set_aggregated_value(UNKNOWN_COUNT_AGG, 0)
            next_phase = SELECT if still_unknown else ASSIGN
            master_ctx.set_aggregated_value(PHASE_AGG, next_phase)
        elif previous == ASSIGN:
            uncolored = master_ctx.aggregated_value(UNCOLORED_COUNT_AGG)
            master_ctx.set_aggregated_value(UNCOLORED_COUNT_AGG, 0)
            if not uncolored:
                master_ctx.halt_computation()
                return
            round_number = master_ctx.aggregated_value(ROUND_AGG)
            master_ctx.set_aggregated_value(ROUND_AGG, round_number + 1)
            master_ctx.set_aggregated_value(PHASE_AGG, SELECT)


def color_counts(vertex_values):
    """Histogram ``{color: count}`` over colored vertices."""
    counts = {}
    for value in vertex_values.values():
        counts[value.color] = counts.get(value.color, 0) + 1
    return counts


def find_coloring_conflicts(graph, vertex_values):
    """Adjacent pairs sharing a color: ``[(u, v, color), ...]``, each once.

    An empty result certifies a proper coloring; a non-empty one is exactly
    what the Scenario 4.1 user notices in the final superstep of the GUI.
    """
    conflicts = []
    seen = set()
    for source, target, _value in graph.edges():
        if source == target:
            continue
        key = (source, target) if repr(source) <= repr(target) else (target, source)
        if key in seen:
            continue
        seen.add(key)
        source_color = vertex_values[source].color
        target_color = vertex_values[target].color
        if source_color is not None and source_color == target_color:
            conflicts.append((key[0], key[1], source_color))
    return conflicts
