"""The core directed graph structure.

A :class:`Graph` is a directed multigraph-without-parallel-edges: each
vertex has an id (any hashable, stably-hashable value — ints and strings in
practice), an optional initial vertex value, and outgoing edges to target
ids, each with an optional edge value. Undirected graphs are represented as
symmetric directed edges, exactly as the paper's datasets encode them.
"""

from repro.common.errors import EdgeNotFoundError, GraphError, VertexNotFoundError


class Graph:
    """Directed graph with vertex values and edge values.

    >>> g = Graph()
    >>> g.add_vertex(1, value=0.5)
    >>> g.add_vertex(2)
    >>> g.add_edge(1, 2, value=3.0)
    >>> g.out_degree(1), g.num_vertices, g.num_edges
    (1, 2, 1)
    """

    def __init__(self, directed=True):
        self.directed = directed
        self._values = {}
        self._out = {}
        self._edge_count = 0

    # -- vertices -----------------------------------------------------------

    @property
    def num_vertices(self):
        return len(self._out)

    @property
    def num_edges(self):
        """Number of *directed* edges stored."""
        return self._edge_count

    def vertex_ids(self):
        """Iterate vertex ids in insertion order."""
        return iter(self._out)

    def has_vertex(self, vertex_id):
        return vertex_id in self._out

    def add_vertex(self, vertex_id, value=None):
        """Add a vertex. Re-adding an existing vertex updates its value only
        when an explicit value is given."""
        if vertex_id not in self._out:
            self._out[vertex_id] = {}
            self._values[vertex_id] = value
        elif value is not None:
            self._values[vertex_id] = value

    def remove_vertex(self, vertex_id):
        """Remove a vertex and all edges touching it."""
        if vertex_id not in self._out:
            raise VertexNotFoundError(vertex_id)
        self._edge_count -= len(self._out[vertex_id])
        del self._out[vertex_id]
        del self._values[vertex_id]
        for targets in self._out.values():
            if vertex_id in targets:
                del targets[vertex_id]
                self._edge_count -= 1

    def vertex_value(self, vertex_id):
        if vertex_id not in self._values:
            raise VertexNotFoundError(vertex_id)
        return self._values[vertex_id]

    def set_vertex_value(self, vertex_id, value):
        if vertex_id not in self._values:
            raise VertexNotFoundError(vertex_id)
        self._values[vertex_id] = value

    # -- edges --------------------------------------------------------------

    def add_edge(self, source, target, value=None, add_vertices=True):
        """Add a directed edge; vertices are created on demand by default."""
        if add_vertices:
            self.add_vertex(source)
            self.add_vertex(target)
        else:
            if source not in self._out:
                raise VertexNotFoundError(source)
            if target not in self._out:
                raise VertexNotFoundError(target)
        targets = self._out[source]
        if target not in targets:
            self._edge_count += 1
        targets[target] = value

    def add_undirected_edge(self, u, v, value=None):
        """Add symmetric directed edges (u, v) and (v, u) with one value."""
        self.add_edge(u, v, value)
        self.add_edge(v, u, value)

    def remove_edge(self, source, target):
        if source not in self._out:
            raise VertexNotFoundError(source)
        if target not in self._out[source]:
            raise EdgeNotFoundError(source, target)
        del self._out[source][target]
        self._edge_count -= 1

    def has_edge(self, source, target):
        return source in self._out and target in self._out[source]

    def edge_value(self, source, target):
        if source not in self._out:
            raise VertexNotFoundError(source)
        if target not in self._out[source]:
            raise EdgeNotFoundError(source, target)
        return self._out[source][target]

    def set_edge_value(self, source, target, value):
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        self._out[source][target] = value

    def out_edges(self, vertex_id):
        """Iterate ``(target, edge_value)`` pairs for one vertex."""
        if vertex_id not in self._out:
            raise VertexNotFoundError(vertex_id)
        return iter(self._out[vertex_id].items())

    def neighbors(self, vertex_id):
        """Iterate out-neighbor ids of one vertex."""
        if vertex_id not in self._out:
            raise VertexNotFoundError(vertex_id)
        return iter(self._out[vertex_id])

    def out_degree(self, vertex_id):
        if vertex_id not in self._out:
            raise VertexNotFoundError(vertex_id)
        return len(self._out[vertex_id])

    def edges(self):
        """Iterate all ``(source, target, value)`` triples."""
        for source, targets in self._out.items():
            for target, value in targets.items():
                yield source, target, value

    # -- conveniences -------------------------------------------------------

    def copy(self):
        """Structural copy (values are shared, not deep-copied)."""
        clone = Graph(directed=self.directed)
        for vertex_id in self._out:
            clone.add_vertex(vertex_id, self._values[vertex_id])
        for source, target, value in self.edges():
            clone.add_edge(source, target, value)
        return clone

    def __contains__(self, vertex_id):
        return vertex_id in self._out

    def __len__(self):
        return len(self._out)

    def __eq__(self, other):
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.directed == other.directed
            and self._values == other._values
            and self._out == other._out
        )

    def __repr__(self):
        kind = "directed" if self.directed else "undirected"
        return (
            f"Graph({kind}, vertices={self.num_vertices}, edges={self.num_edges})"
        )


def merge_graphs(first, second):
    """Union of two graphs; the second graph's values win on conflicts."""
    if first.directed != second.directed:
        raise GraphError("cannot merge directed with undirected graph")
    merged = first.copy()
    for vertex_id in second.vertex_ids():
        merged.add_vertex(vertex_id, second.vertex_value(vertex_id))
    for source, target, value in second.edges():
        merged.add_edge(source, target, value)
    return merged
