"""Graph transforms: symmetrization, reweighting, subgraphs, relabeling."""

from repro.common.errors import GraphError
from repro.graph.graph import Graph


def to_undirected(graph, merge_values=None):
    """Symmetrize a directed graph into the paper's undirected encoding.

    For every directed edge (u, v) the result contains both (u, v) and
    (v, u). When both directions exist with different edge values,
    ``merge_values(a, b)`` resolves them (default: keep the first seen).
    """
    result = Graph(directed=False)
    for vertex_id in graph.vertex_ids():
        result.add_vertex(vertex_id, graph.vertex_value(vertex_id))
    for source, target, value in graph.edges():
        if result.has_edge(source, target):
            existing = result.edge_value(source, target)
            if merge_values is not None and existing != value:
                value = merge_values(existing, value)
            else:
                value = existing
        result.add_edge(source, target, value)
        result.add_edge(target, source, value)
    return result


def with_edge_values(graph, value_fn):
    """Copy of ``graph`` with each edge value replaced by ``value_fn(u, v)``.

    For undirected graphs pass a symmetric function to keep weights
    consistent across the two directions of each adjacency pair.
    """
    result = Graph(directed=graph.directed)
    for vertex_id in graph.vertex_ids():
        result.add_vertex(vertex_id, graph.vertex_value(vertex_id))
    for source, target, _old in graph.edges():
        result.add_edge(source, target, value_fn(source, target))
    return result


def subgraph(graph, vertex_ids):
    """Induced subgraph on ``vertex_ids`` (ids absent from the graph error)."""
    keep = set(vertex_ids)
    missing = [v for v in keep if not graph.has_vertex(v)]
    if missing:
        raise GraphError(f"subgraph references missing vertices: {missing!r}")
    result = Graph(directed=graph.directed)
    for vertex_id in graph.vertex_ids():
        if vertex_id in keep:
            result.add_vertex(vertex_id, graph.vertex_value(vertex_id))
    for source, target, value in graph.edges():
        if source in keep and target in keep:
            result.add_edge(source, target, value)
    return result


def relabel_vertices(graph, mapping):
    """Copy of ``graph`` with vertex ids renamed through ``mapping``.

    ``mapping`` may be a dict or a callable; ids it does not cover are kept.
    Collisions after renaming are an error.
    """
    if callable(mapping):
        rename = mapping
    else:
        rename = lambda v: mapping.get(v, v)  # noqa: E731 - tiny adapter
    result = Graph(directed=graph.directed)
    seen = {}
    for vertex_id in graph.vertex_ids():
        new_id = rename(vertex_id)
        if new_id in seen and seen[new_id] != vertex_id:
            raise GraphError(
                f"relabeling collides: {seen[new_id]!r} and {vertex_id!r} "
                f"both map to {new_id!r}"
            )
        seen[new_id] = vertex_id
        result.add_vertex(new_id, graph.vertex_value(vertex_id))
    for source, target, value in graph.edges():
        result.add_edge(rename(source), rename(target), value)
    return result
