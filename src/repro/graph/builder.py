"""Fluent graph construction.

:class:`GraphBuilder` backs both test fixtures and Graft's "offline mode"
small-graph editor (Section 3.4 of the paper): add vertices, draw edges,
edit values, then materialize a :class:`~repro.graph.Graph` or dump the
adjacency-list text a user would feed to an end-to-end test.
"""

from repro.common.errors import GraphError
from repro.graph.graph import Graph


class GraphBuilder:
    """Incremental builder with chainable methods.

    >>> g = (GraphBuilder(directed=False)
    ...      .vertex(1, value="a").vertex(2)
    ...      .edge(1, 2, value=2.5)
    ...      .build())
    >>> g.has_edge(2, 1)
    True
    """

    def __init__(self, directed=True):
        self._directed = directed
        self._vertices = {}
        self._edges = []

    def vertex(self, vertex_id, value=None):
        """Declare a vertex (chainable). Later declarations update the value."""
        self._vertices[vertex_id] = value
        return self

    def vertices(self, *vertex_ids):
        """Declare several valueless vertices at once (chainable)."""
        for vertex_id in vertex_ids:
            self._vertices.setdefault(vertex_id, None)
        return self

    def edge(self, source, target, value=None):
        """Declare an edge; undirected builders symmetrize it (chainable)."""
        self._edges.append((source, target, value))
        return self

    def path(self, *vertex_ids, value=None):
        """Declare a path of edges along consecutive ids (chainable)."""
        if len(vertex_ids) < 2:
            raise GraphError("a path needs at least two vertices")
        for source, target in zip(vertex_ids, vertex_ids[1:]):
            self.edge(source, target, value)
        return self

    def cycle(self, *vertex_ids, value=None):
        """Declare a cycle of edges through the given ids (chainable)."""
        if len(vertex_ids) < 3:
            raise GraphError("a cycle needs at least three vertices")
        self.path(*vertex_ids, value=value)
        self.edge(vertex_ids[-1], vertex_ids[0], value)
        return self

    def clique(self, *vertex_ids, value=None):
        """Declare all pairwise edges among the given ids (chainable)."""
        for i, u in enumerate(vertex_ids):
            for v in vertex_ids[i + 1:]:
                self.edge(u, v, value)
                if self._directed:
                    self.edge(v, u, value)
        return self

    def set_value(self, vertex_id, value):
        """Edit a declared vertex's value (chainable)."""
        if vertex_id not in self._vertices:
            raise GraphError(f"vertex {vertex_id!r} not declared yet")
        self._vertices[vertex_id] = value
        return self

    def remove_edge(self, source, target):
        """Drop a previously declared edge (chainable)."""
        before = len(self._edges)
        self._edges = [e for e in self._edges if (e[0], e[1]) != (source, target)]
        if len(self._edges) == before:
            raise GraphError(f"edge ({source!r}, {target!r}) not declared")
        return self

    def build(self):
        """Materialize the declared graph."""
        graph = Graph(directed=self._directed)
        for vertex_id, value in self._vertices.items():
            graph.add_vertex(vertex_id, value)
        for source, target, value in self._edges:
            if self._directed:
                graph.add_edge(source, target, value)
            else:
                graph.add_undirected_edge(source, target, value)
        return graph
