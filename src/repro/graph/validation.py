"""Input-graph validation.

The paper's third debugging scenario (Section 4.3) is an *input* bug: a
supposedly-undirected weighted graph whose symmetric directed edges carry
different weights, sending MWM into an infinite loop. These checks find
such problems directly — and the Graft scenario shows how a user finds the
same thing interactively when they did not think to validate first.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of :func:`validate_graph`."""

    self_loops: tuple
    dangling_edges: tuple
    asymmetric_edges: tuple
    missing_reverse_edges: tuple

    @property
    def ok(self):
        return not (
            self.self_loops
            or self.dangling_edges
            or self.asymmetric_edges
            or self.missing_reverse_edges
        )

    def summary(self):
        if self.ok:
            return "graph OK"
        parts = []
        if self.self_loops:
            parts.append(f"{len(self.self_loops)} self-loops")
        if self.dangling_edges:
            parts.append(f"{len(self.dangling_edges)} dangling edges")
        if self.missing_reverse_edges:
            parts.append(f"{len(self.missing_reverse_edges)} missing reverse edges")
        if self.asymmetric_edges:
            parts.append(f"{len(self.asymmetric_edges)} asymmetric edge weights")
        return "; ".join(parts)


def find_self_loops(graph):
    """Return ``[(v, value), ...]`` for every self-loop edge."""
    return [(s, val) for s, t, val in graph.edges() if s == t]


def find_dangling_edges(graph):
    """Return edges whose target vertex does not exist.

    The :class:`~repro.graph.Graph` API auto-creates targets, so dangling
    edges only occur in graphs assembled by other means; the check still
    guards readers of hand-written files.
    """
    return [
        (source, target)
        for source, target, _v in graph.edges()
        if not graph.has_vertex(target)
    ]


def find_missing_reverse_edges(graph):
    """Return directed edges (u, v) with no (v, u) counterpart."""
    return [
        (source, target)
        for source, target, _v in graph.edges()
        if not graph.has_edge(target, source)
    ]


def find_asymmetric_edges(graph):
    """Return unordered pairs whose two directed edges disagree on value.

    Each entry is ``(u, v, value_uv, value_vu)`` with each pair reported
    once. This is exactly the defect of the paper's MWM scenario.
    """
    problems = []
    seen = set()
    for source, target, value in graph.edges():
        key = (source, target) if repr(source) <= repr(target) else (target, source)
        if key in seen:
            continue
        seen.add(key)
        if graph.has_edge(target, source):
            reverse = graph.edge_value(target, source)
            if reverse != value:
                problems.append((source, target, value, reverse))
    return problems


def validate_graph(graph, expect_undirected=None):
    """Run all checks and return a :class:`ValidationReport`.

    ``expect_undirected`` overrides the graph's own flag; when true, missing
    reverse edges and asymmetric weights are reported.
    """
    undirected = (
        not graph.directed if expect_undirected is None else expect_undirected
    )
    return ValidationReport(
        self_loops=tuple(find_self_loops(graph)),
        dangling_edges=tuple(find_dangling_edges(graph)),
        asymmetric_edges=tuple(find_asymmetric_edges(graph)) if undirected else (),
        missing_reverse_edges=(
            tuple(find_missing_reverse_edges(graph)) if undirected else ()
        ),
    )
