"""Graph statistics, including the rows of the paper's dataset tables.

Tables 1 and 2 of the paper report each dataset's vertex count and its edge
count both as directed edges and as undirected adjacency pairs. The
``GraphStats`` record computes both views plus degree summaries.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics for one graph."""

    num_vertices: int
    num_directed_edges: int
    num_undirected_edges: int
    min_out_degree: int
    max_out_degree: int
    mean_out_degree: float
    num_isolated_vertices: int

    def table_row(self, name, description=""):
        """Render one row in the shape of the paper's Table 1 / Table 2."""
        return (
            f"{name:<22} {_format_count(self.num_vertices):>8} "
            f"{_format_count(self.num_directed_edges):>9} (d), "
            f"{_format_count(self.num_undirected_edges):>9} (u)  {description}"
        )


def _format_count(count):
    """Format a count the way the paper's tables do (685K, 7.6M, 1.9B).

    >>> _format_count(685230)
    '685K'
    >>> _format_count(7600000)
    '7.6M'
    """
    if count >= 1_000_000_000:
        value = count / 1_000_000_000
        suffix = "B"
    elif count >= 1_000_000:
        value = count / 1_000_000
        suffix = "M"
    elif count >= 1_000:
        value = count / 1_000
        suffix = "K"
    else:
        return str(count)
    if value >= 100 or value == int(value):
        return f"{value:.0f}{suffix}"
    return f"{value:.1f}{suffix}"


def compute_stats(graph):
    """Compute :class:`GraphStats` for ``graph``.

    The undirected edge count is the number of distinct unordered adjacency
    pairs (a symmetric pair of directed edges counts once; a one-way directed
    edge also forms one adjacency pair).
    """
    degrees = [graph.out_degree(v) for v in graph.vertex_ids()]
    num_vertices = len(degrees)
    pairs = set()
    for source, target, _value in graph.edges():
        pairs.add((source, target) if repr(source) <= repr(target) else (target, source))
    return GraphStats(
        num_vertices=num_vertices,
        num_directed_edges=graph.num_edges,
        num_undirected_edges=len(pairs),
        min_out_degree=min(degrees) if degrees else 0,
        max_out_degree=max(degrees) if degrees else 0,
        mean_out_degree=(sum(degrees) / num_vertices) if num_vertices else 0.0,
        num_isolated_vertices=sum(1 for d in degrees if d == 0),
    )


def degree_histogram(graph, num_buckets=10):
    """Bucketed out-degree histogram as ``[(low, high, count), ...]``."""
    degrees = sorted(graph.out_degree(v) for v in graph.vertex_ids())
    if not degrees:
        return []
    low, high = degrees[0], degrees[-1]
    if low == high:
        return [(low, high, len(degrees))]
    width = max(1, (high - low + 1) // num_buckets)
    buckets = []
    start = low
    index = 0
    while start <= high:
        end = min(high, start + width - 1)
        count = 0
        while index < len(degrees) and degrees[index] <= end:
            count += 1
            index += 1
        buckets.append((start, end, count))
        start = end + 1
    return buckets
