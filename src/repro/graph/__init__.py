"""In-memory graph structures, construction, I/O, statistics, transforms.

This is the input substrate of the engine: the directed adjacency structure
Giraph would load from HDFS. Undirected graphs follow the paper's encoding —
symmetric directed edges between each pair of adjacent vertices.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.graph.io import (
    parse_adjacency_text,
    read_adjacency_file,
    read_adjacency_simfs,
    render_adjacency_text,
    write_adjacency_file,
    write_adjacency_simfs,
)
from repro.graph.stats import GraphStats, compute_stats
from repro.graph.transforms import (
    relabel_vertices,
    subgraph,
    to_undirected,
    with_edge_values,
)
from repro.graph.validation import (
    find_asymmetric_edges,
    find_dangling_edges,
    find_self_loops,
    validate_graph,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "parse_adjacency_text",
    "read_adjacency_file",
    "read_adjacency_simfs",
    "render_adjacency_text",
    "write_adjacency_file",
    "write_adjacency_simfs",
    "GraphStats",
    "compute_stats",
    "relabel_vertices",
    "subgraph",
    "to_undirected",
    "with_edge_values",
    "find_asymmetric_edges",
    "find_dangling_edges",
    "find_self_loops",
    "validate_graph",
]
