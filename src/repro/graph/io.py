"""Adjacency-list text format (the Giraph-style input/output format).

One vertex per line, tab-separated::

    <vertex_id>\t<vertex_value>\t<target>:<edge_value>\t<target>:<edge_value>...

``vertex_id``, ``vertex_value`` and ``edge_value`` are JSON encodings via
the default value codec, so ids and values of any registered type
round-trip (including string ids containing spaces — fields are separated
by tabs, never spaces). A missing value is the empty string. Lines starting
with ``#`` and blank/whitespace-only lines are skipped.

Readers/writers exist for plain strings, local files, and the simulated
distributed file system (the substrate Giraph would actually load from).
"""

from repro.common.errors import GraphFormatError, SerializationError
from repro.common.serialization import default_codec
from repro.graph.graph import Graph


def _encode_token(value, codec):
    if value is None:
        return ""
    return codec.dumps(value)


def _decode_token(token, codec, line_number, what):
    if token == "":
        return None
    try:
        return codec.loads(token)
    except SerializationError as exc:
        raise GraphFormatError(f"bad {what} {token!r}: {exc}", line_number) from exc


def render_adjacency_text(graph, codec=None):
    """Render a graph to adjacency-list text.

    >>> from repro.graph import GraphBuilder
    >>> g = GraphBuilder().vertex(1, value=9).edge(1, 2).build()
    >>> render_adjacency_text(g).split("\\n")
    ['1\\t9\\t2:', '2\\t']
    """
    codec = codec or default_codec
    lines = []
    for vertex_id in graph.vertex_ids():
        fields = [
            codec.dumps(vertex_id),
            _encode_token(graph.vertex_value(vertex_id), codec),
        ]
        fields.extend(
            f"{codec.dumps(target)}:{_encode_token(value, codec)}"
            for target, value in graph.out_edges(vertex_id)
        )
        lines.append("\t".join(fields))
    return "\n".join(lines)


def parse_adjacency_text(text, directed=True, codec=None):
    """Parse adjacency-list text into a :class:`Graph`."""
    codec = codec or default_codec
    graph = Graph(directed=directed)
    pending_edges = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip("\n")
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) < 2:
            raise GraphFormatError(
                f"expected at least 2 tab-separated fields, got {len(parts)}",
                line_number,
            )
        id_token, value_token, edge_tokens = parts[0], parts[1], parts[2:]
        vertex_id = _decode_token(id_token, codec, line_number, "vertex id")
        if vertex_id is None:
            raise GraphFormatError("empty vertex id", line_number)
        value = _decode_token(value_token, codec, line_number, "vertex value")
        graph.add_vertex(vertex_id, value)
        for edge_token in edge_tokens:
            if not edge_token:
                continue
            target_token, sep, edge_value_token = edge_token.rpartition(":")
            if not sep:
                raise GraphFormatError(
                    f"edge token {edge_token!r} missing ':'", line_number
                )
            target = _decode_token(target_token, codec, line_number, "edge target")
            edge_value = _decode_token(
                edge_value_token, codec, line_number, "edge value"
            )
            pending_edges.append((vertex_id, target, edge_value))
    for source, target, edge_value in pending_edges:
        graph.add_edge(source, target, edge_value)
    return graph


def write_adjacency_file(graph, path, codec=None):
    """Write a graph to a local file in adjacency-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_adjacency_text(graph, codec))
        handle.write("\n")


def read_adjacency_file(path, directed=True, codec=None):
    """Read a graph from a local adjacency-list file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_adjacency_text(handle.read(), directed, codec)


def write_adjacency_simfs(graph, filesystem, path, codec=None):
    """Write a graph to the simulated distributed file system."""
    filesystem.write_text(path, render_adjacency_text(graph, codec) + "\n")


def read_adjacency_simfs(filesystem, path, directed=True, codec=None):
    """Read a graph back from the simulated distributed file system."""
    return parse_adjacency_text(filesystem.read_text(path), directed, codec)
