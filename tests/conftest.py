"""Shared fixtures for the test suite."""

import pytest

from repro.datasets import load_dataset, premade_graph
from repro.graph import GraphBuilder
from repro.simfs import SimFileSystem


@pytest.fixture
def fs():
    """A fresh simulated distributed file system."""
    return SimFileSystem()


@pytest.fixture
def triangle():
    """Undirected triangle 0-1-2."""
    return premade_graph("triangle")


@pytest.fixture
def petersen():
    return premade_graph("petersen")


@pytest.fixture
def small_bipartite():
    """A 3-regular bipartite graph with 60 vertices."""
    return load_dataset("bipartite-1M-3M", num_vertices=60, seed=5)


@pytest.fixture
def funnel_graph():
    """Many leaves feeding one hub with a single out-edge.

    Walker counts pile up on the hub and flow over one edge — the shape
    that makes the random-walk short-overflow bug fire deterministically.
    """
    builder = GraphBuilder(directed=True)
    for leaf in range(1, 60):
        builder.edge(leaf, 0)
    builder.edge(0, 99)
    builder.edge(99, 0)
    return builder.build()


@pytest.fixture
def asymmetric_triangle():
    """A preference 3-cycle: each vertex prefers the next, never mutual.

    Feeding this to MWM reproduces the paper's Scenario 4.3 infinite loop.
    """
    return (
        GraphBuilder(directed=True)
        .edge("u", "v", 10.0).edge("v", "u", 1.0)
        .edge("v", "w", 10.0).edge("w", "v", 1.0)
        .edge("w", "u", 10.0).edge("u", "w", 1.0)
        .build()
    )
