"""End-to-end: proven static forecasts graded against real debug runs.

Two seeded-buggy computations whose defects the dataflow pack *proves*
ahead of execution — a fixed-width counter that always wraps (GL013,
predicts ``message`` evidence) and a program with no halt path (GL014,
predicts ``nontermination``). Each runs under ``debug_run`` and the
prediction score must come back perfect: every proven forecast observed,
every predictable observation forecast.
"""

import pytest

from repro.analysis import PROVEN, GraftLintWarning
from repro.graft import debug_run, verify_run_fidelity
from repro.graft.constraint_library import NonNegativeMessages
from repro.graph import GraphBuilder
from repro.pregel import Computation
from repro.pregel.value_types import Short16


def ring_graph(n=4):
    return GraphBuilder(directed=False).cycle(*range(n)).build()


class WrappingBroadcaster(Computation):
    """Seeded bug: Short16(40000) wraps to -25536 on every execution."""

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(Short16(40000))
        else:
            ctx.set_value(sum(m.value for m in messages))
            ctx.vote_to_halt()


class NeverHalts(Computation):
    """Seeded bug: no vote_to_halt on any path, no superstep bound."""

    def compute(self, ctx, messages):
        ctx.send_message(ctx.vertex_id, ctx.superstep)


class TestProvenOverflowPrediction:
    @pytest.fixture
    def run(self):
        with pytest.warns(GraftLintWarning):
            return debug_run(
                WrappingBroadcaster,
                ring_graph(),
                NonNegativeMessages(),
                seed=1,
            )

    def test_lint_proved_the_wrap_before_running(self, run):
        (finding,) = run.lint_report.by_rule("GL013")
        assert finding.confidence == PROVEN
        assert finding.predicts == "message"
        assert run.lint_report.by_rule("GL007") == []   # superseded

    def test_run_produces_the_predicted_evidence(self, run):
        assert run.violations()
        assert "message" in run.observed_evidence_kinds()

    def test_prediction_score_is_perfect(self, run):
        score = run.prediction_score()
        assert score.predicted == ("message",)
        assert score.matched == ("message",)
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_fidelity_report_carries_the_score(self, run):
        report = verify_run_fidelity(run)
        assert report.ok
        assert report.prediction_score is not None
        assert report.prediction_score.precision == 1.0
        assert report.prediction_score.recall == 1.0
        assert "forecast" in report.summary() or "predict" in (
            report.prediction_score.summary()
        )

    def test_violations_view_reports_the_forecast(self, run):
        text = run.violations_view().render()
        assert "proven static forecasts" in text


class TestProvenNoHaltPrediction:
    @pytest.fixture
    def run(self):
        with pytest.warns(GraftLintWarning):
            return debug_run(
                NeverHalts,
                ring_graph(),
                NonNegativeMessages(),
                seed=1,
                max_supersteps=5,
            )

    def test_lint_proved_no_halt_path(self, run):
        (finding,) = run.lint_report.by_rule("GL014")
        assert finding.confidence == PROVEN
        assert finding.predicts == "nontermination"
        assert run.lint_report.by_rule("GL005") == []   # superseded

    def test_run_exhausts_its_superstep_budget(self, run):
        assert run.result is not None
        assert "nontermination" in run.observed_evidence_kinds()

    def test_prediction_score_is_perfect(self, run):
        score = run.prediction_score()
        assert score.predicted == ("nontermination",)
        assert score.matched == ("nontermination",)
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_fidelity_report_carries_the_score(self, run):
        report = verify_run_fidelity(run)
        assert report.ok
        assert report.prediction_score is not None
        assert report.prediction_score.recall == 1.0


class TestCleanRunScoresClean:
    def test_no_proven_findings_no_observed_evidence(self):
        class Quiet(Computation):
            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        run = debug_run(Quiet, ring_graph(), NonNegativeMessages(), seed=1)
        score = run.prediction_score()
        assert score.predicted == ()
        assert score.observed == ()
        assert score.precision == 1.0   # vacuous
        assert score.recall == 1.0
        report = verify_run_fidelity(run)
        assert report.prediction_score is not None
        # A clean run's summary stays free of forecast noise.
        assert "forecast" not in report.summary()
