"""Checkpoint round-trips across every backend and worker count.

The recovery contract (docs/fault-tolerance.md): a run that crashes, rolls
back to a checkpoint, and re-executes must land on **bit-identical** final
state — vertex values, aggregator values, halt reason, superstep count —
as the same job run without any failure. Here the crash is injected by the
chaos machinery at the superstep-3 barrier, for each execution backend ×
1/2/4 workers.
"""

import pytest

from repro.algorithms import PageRank, ShortestPaths
from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.datasets import load_dataset
from repro.pregel import CheckpointConfig, run_computation
from repro.pregel.runtime import EXECUTOR_NAMES
from repro.simfs import SimFileSystem

WORKER_COUNTS = (1, 2, 4)

ALGORITHMS = {
    "pagerank": lambda: PageRank(iterations=6),
    "sssp": lambda: ShortestPaths(0),
}


def _graph():
    return load_dataset("web-BS", num_vertices=50, seed=11)


def _crash_plan():
    # Worker 0 exists for every worker count.
    return FaultPlan(name="one-crash", faults=(
        FaultSpec(kind="worker_crash", superstep=3, worker_id=0),
    ))


_CLEAN = {}


def _clean_run(algorithm, executor, workers):
    key = (algorithm, executor, workers)
    if key not in _CLEAN:
        _CLEAN[key] = run_computation(
            ALGORITHMS[algorithm], _graph(),
            seed=7, num_workers=workers, executor=executor,
        )
    return _CLEAN[key]


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_post_recovery_state_is_bit_identical(algorithm, executor, workers):
    clean = _clean_run(algorithm, executor, workers)

    fs = SimFileSystem()
    injector = FaultInjector(_crash_plan())
    recovered = run_computation(
        ALGORITHMS[algorithm], _graph(),
        seed=7, num_workers=workers, executor=executor,
        checkpoint_config=CheckpointConfig(fs, every_n_supersteps=2),
        fault_injector=injector,
    )

    assert recovered.metrics.rollback_count == 1
    assert recovered.metrics.recovered_supersteps >= 1
    assert len(injector.events) == 1

    assert recovered.vertex_values == clean.vertex_values
    assert recovered.aggregator_values == clean.aggregator_values
    assert recovered.halt_reason == clean.halt_reason
    assert recovered.num_supersteps == clean.num_supersteps
