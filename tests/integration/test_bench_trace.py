"""Opt-in wrapper around scripts/bench_trace.py.

Skipped by default so tier-1 stays fast and timing-free; run it with::

    RUN_BENCH_TRACE=1 PYTHONPATH=src python -m pytest -m bench_trace \
        tests/integration/test_bench_trace.py -q

(or run the script directly — it is the same code path).
"""

import json
import os
import sys

import pytest

pytestmark = [
    pytest.mark.bench_trace,
    pytest.mark.skipif(
        not os.environ.get("RUN_BENCH_TRACE"),
        reason="timing-sensitive benchmark; set RUN_BENCH_TRACE=1 to run",
    ),
]

_SCRIPTS = os.path.join(os.path.dirname(__file__), "..", "..", "scripts")


def test_bench_trace_gates(tmp_path):
    sys.path.insert(0, os.path.abspath(_SCRIPTS))
    try:
        import bench_trace
    finally:
        sys.path.pop(0)

    output = tmp_path / "BENCH_trace.json"
    status = bench_trace.main(["--quick", "--output", str(output)])
    report = json.loads(output.read_text())
    assert report["gates"]["passed"], report["gates"]["failures"]
    assert status == 0
    assert report["canonical_digest"]["identical"]
    assert report["storage"]["index_coverage"] == 1.0
