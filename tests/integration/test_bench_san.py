"""Opt-in wrapper around scripts/bench_san.py.

Skipped by default so tier-1 stays fast and timing-free; run it with::

    RUN_BENCH_SAN=1 PYTHONPATH=src python -m pytest -m bench_san \
        tests/integration/test_bench_san.py -q

(or run the script directly — it is the same code path).
"""

import json
import os
import sys

import pytest

pytestmark = [
    pytest.mark.bench_san,
    pytest.mark.skipif(
        not os.environ.get("RUN_BENCH_SAN"),
        reason="timing-sensitive benchmark; set RUN_BENCH_SAN=1 to run",
    ),
]

_SCRIPTS = os.path.join(os.path.dirname(__file__), "..", "..", "scripts")


def test_bench_san_gates(tmp_path):
    sys.path.insert(0, os.path.abspath(_SCRIPTS))
    try:
        import bench_san
    finally:
        sys.path.pop(0)

    output = tmp_path / "BENCH_san.json"
    status = bench_san.main(["--quick", "--output", str(output)])
    report = json.loads(output.read_text())
    assert report["gates"]["passed"], report["gates"]["failures"]
    assert status == 0
    assert set(report["backends"]) == {"serial", "threads", "processes"}
    assert report["sensitivity"]["detected"] is True
    assert report["sensitivity"]["divergent_schedules"]
