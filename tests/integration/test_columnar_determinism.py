"""Columnar-transport determinism: packed batches change nothing observable.

The contract of the columnar data plane (ISSUE 7): for the same job, runs
with ``columnar=True`` (packed batches, shared-memory frames under the
processes backend) and ``columnar=False`` (per-envelope object lists) must
produce the same :class:`~repro.pregel.PregelResult` and byte-identical
Graft traces — per-worker file hashes AND the canonical merged digest —
across backends and worker counts. This is the tier-1 matrix gate: if a
packed column, a compact broadcast record, or a shared-memory frame ever
reorders or rewrites a message, a digest here splits.
"""

import hashlib

import pytest

from repro.algorithms import PageRank, ShortestPaths
from repro.common.errors import PregelError
from repro.datasets import load_dataset
from repro.graft import CaptureAllActiveConfig, debug_run
from repro.graft.trace import canonical_trace_digest, worker_trace_path
from repro.pregel import Computation, MinCombiner, PregelEngine
from repro.pregel.permutation import PermutationSchedule

WORKER_COUNTS = (1, 2, 4)
EXECUTORS = ("serial", "processes")


class TopologyChurn(Computation):
    """Mutates topology every superstep while messages keep flowing.

    Exercises every columnar fallback edge at once: dirty-adjacency
    workers file explicit broadcasts, messages to missing targets force
    vertex creation at the barrier, and explicit add/remove requests make
    the barrier materialize envelopes before mutating.
    """

    def initial_value(self, vertex_id, input_value):
        return 0.0

    def default_vertex_value(self, vertex_id):
        return -1.0

    def compute(self, ctx, messages):
        ctx.set_value(ctx.value + float(sum(messages)))
        step = ctx.superstep
        if step == 0:
            ctx.send_message_to_all_neighbors(1.0)
        elif step == 1:
            for target in sorted(ctx.neighbor_ids(), key=repr)[:1]:
                ctx.remove_edge(target)
            spawn = f"spawn:{ctx.vertex_id}"
            ctx.add_edge(spawn)
            ctx.send_message(spawn, ctx.value + 1.0)
        elif step == 2:
            ctx.add_vertex_request(f"req:{ctx.vertex_id}", 7.0)
            ctx.send_message_to_all_neighbors(0.5)
        else:
            ctx.vote_to_halt()


class TuplePing(Computation):
    """Sends tuple payloads — no packed column exists for them.

    Every column degrades to the pickled-object fallback mid-superstep;
    delivery order and traces must still match the envelope plane.
    """

    def initial_value(self, vertex_id, input_value):
        return (0, 0.0)

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors((1, 0.5))
        elif ctx.superstep < 3:
            hops = max((m[0] for m in messages), default=0)
            weight = sum(m[1] for m in messages)
            ctx.set_value((hops, weight))
            ctx.send_message_to_all_neighbors((hops + 1, weight / 2.0))
        else:
            ctx.vote_to_halt()


JOBS = {
    "pagerank": (lambda: PageRank(iterations=4), {}),
    "sssp_combined": (lambda: ShortestPaths(0), {"combiner": MinCombiner()}),
    "mutation": (TopologyChurn, {}),
    "tuple_fallback": (TuplePing, {}),
}


def _graph():
    return load_dataset("web-BS", num_vertices=90, seed=11)


_CACHE = {}


def _run(job, executor, workers, columnar):
    """Run one debugged job; memoized so each config executes once."""
    key = (job, executor, workers, columnar)
    if key not in _CACHE:
        factory, extra_kwargs = JOBS[job]
        run = debug_run(
            factory,
            _graph(),
            CaptureAllActiveConfig(),
            job_id="col",
            lint=False,
            seed=7,
            num_workers=workers,
            executor=executor,
            max_supersteps=8,
            columnar=columnar,
            **extra_kwargs,
        )
        assert run.ok, f"{key}: {run.failure}"
        fs = run.session.filesystem
        file_hashes = {
            worker_id: hashlib.sha256(
                fs.read_bytes(worker_trace_path("col", worker_id))
            ).hexdigest()
            for worker_id in range(workers)
        }
        _CACHE[key] = {
            "values": dict(run.result.vertex_values),
            "supersteps": run.result.num_supersteps,
            "halt_reason": run.result.halt_reason,
            "captures": run.capture_count,
            "file_hashes": file_hashes,
            "canonical_digest": canonical_trace_digest(fs, "col"),
        }
    return _CACHE[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("job", sorted(JOBS))
def test_columnar_matches_envelope(job, executor, workers):
    """columnar on/off parity at every (backend, worker count) cell."""
    envelope = _run(job, executor, workers, columnar=False)
    columnar = _run(job, executor, workers, columnar=True)
    assert columnar["values"] == envelope["values"]
    assert columnar["supersteps"] == envelope["supersteps"]
    assert columnar["halt_reason"] == envelope["halt_reason"]
    assert columnar["captures"] == envelope["captures"]
    assert columnar["file_hashes"] == envelope["file_hashes"]
    assert columnar["canonical_digest"] == envelope["canonical_digest"]


@pytest.mark.parametrize("job", sorted(JOBS))
def test_columnar_processes_matches_serial(job):
    """Shared-memory frames reproduce the serial backend byte-for-byte."""
    reference = _run(job, "serial", 4, columnar=True)
    candidate = _run(job, "processes", 4, columnar=True)
    assert candidate["values"] == reference["values"]
    assert candidate["file_hashes"] == reference["file_hashes"]
    assert candidate["canonical_digest"] == reference["canonical_digest"]


@pytest.mark.parametrize("job", sorted(JOBS))
def test_columnar_digest_stable_across_worker_counts(job):
    """The canonical merged trace is one hash whatever the partitioning."""
    digests = {
        workers: _run(job, "serial", workers, columnar=True)[
            "canonical_digest"
        ]
        for workers in WORKER_COUNTS
    }
    assert len(set(digests.values())) == 1, digests


def test_columnar_rejects_delivery_schedule():
    """graft-san permutations need envelopes; forcing both is an error."""
    with pytest.raises(PregelError, match="columnar"):
        PregelEngine(
            PageRank,
            _graph(),
            columnar=True,
            delivery_schedule=PermutationSchedule(schedule=1),
        )
