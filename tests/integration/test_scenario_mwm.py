"""Integration test: the paper's Scenario 4.3 (MWM input bug), end to end.

A weighted soc-Epinions-like graph, encoded as symmetric directed edges,
has a fraction of pairs with asymmetric weights. MWM never converges. The
user runs MWM with Graft capturing all active vertices after a late
superstep, inspects the small remaining active graph, and spots the
asymmetric weights.
"""

import pytest

from repro.algorithms import MaximumWeightMatching
from repro.datasets import (
    corrupt_asymmetric_weights,
    load_dataset,
    random_symmetric_weights,
)
from repro.graft import CaptureAllActiveConfig, debug_run
from repro.graph import find_asymmetric_edges, to_undirected
from repro.pregel.halting import MAX_SUPERSTEPS

LATE_SUPERSTEP = 60
SUPERSTEP_CAP = 80


@pytest.fixture(scope="module")
def corrupted_graph():
    base = to_undirected(
        random_symmetric_weights(
            load_dataset("soc-Epinions", num_vertices=120, seed=1), seed=2
        )
    )
    corrupted, pairs = corrupt_asymmetric_weights(base, fraction=0.25, seed=3)
    assert pairs
    return corrupted


@pytest.fixture(scope="module")
def scenario_run(corrupted_graph):
    return debug_run(
        MaximumWeightMatching,
        corrupted_graph,
        CaptureAllActiveConfig(from_superstep=LATE_SUPERSTEP),
        seed=0,
        num_workers=4,
        max_supersteps=SUPERSTEP_CAP,
    )


class TestScenario:
    def test_computation_appears_stuck(self, scenario_run):
        assert scenario_run.ok
        assert scenario_run.result.halt_reason == MAX_SUPERSTEPS

    def test_captures_limited_to_late_supersteps(self, scenario_run):
        assert min(scenario_run.reader.supersteps()) >= LATE_SUPERSTEP

    def test_active_remaining_graph_is_small(self, scenario_run, corrupted_graph):
        captured = scenario_run.captures_at(scenario_run.reader.supersteps()[0])
        assert 0 < len(captured) < corrupted_graph.num_vertices / 2

    def test_remaining_vertices_show_asymmetric_weights(
        self, scenario_run, corrupted_graph
    ):
        # The user inspects the captured contexts' edges: some adjacency
        # pair among the stuck vertices disagrees on its two weights.
        superstep = scenario_run.reader.supersteps()[0]
        records = {r.vertex_id: r for r in scenario_run.captures_at(superstep)}
        asymmetric = []
        for vertex_id, record in records.items():
            for target, weight in record.edges_after.items():
                peer = records.get(target)
                if peer is None:
                    continue
                back = peer.edges_after.get(vertex_id)
                if back is not None and back != weight:
                    asymmetric.append((vertex_id, target, weight, back))
        assert asymmetric, "the stuck subgraph must expose the input bug"
        # Cross-check against direct validation of the input file.
        known_bad = {
            frozenset((u, v)) for u, v, _a, _b in find_asymmetric_edges(corrupted_graph)
        }
        assert any(frozenset((u, v)) in known_bad for u, v, _a, _b in asymmetric)

    def test_validation_tool_confirms_diagnosis(self, corrupted_graph):
        assert find_asymmetric_edges(corrupted_graph)

    def test_fixed_input_converges(self):
        base = to_undirected(
            random_symmetric_weights(
                load_dataset("soc-Epinions", num_vertices=120, seed=1), seed=2
            )
        )
        run = debug_run(
            MaximumWeightMatching,
            base,
            CaptureAllActiveConfig(from_superstep=LATE_SUPERSTEP),
            seed=0,
            num_workers=4,
            max_supersteps=SUPERSTEP_CAP,
        )
        assert run.result.halt_reason != MAX_SUPERSTEPS
        assert run.capture_count == 0  # converged before the capture window
