"""Integration: the lazy indexed reader is indistinguishable from eager.

Runs real debugged jobs under every execution backend and several worker
counts, then asks the same questions of a lazy and an eager reader over
the same trace files. The answers must match exactly — the index is an
access path, never a different source of truth.
"""

import pytest

from repro.algorithms import PageRank
from repro.datasets import premade_graph
from repro.graft import CaptureAllActiveConfig, debug_run, replay_from_trace
from repro.graft.trace import TraceReader, canonical_trace_digest
from repro.pregel import EXECUTOR_NAMES

WORKER_COUNTS = (1, 3)


def _run(executor, workers, trace_format="v2"):
    graph = premade_graph("petersen")
    return debug_run(
        lambda: PageRank(iterations=4),
        graph,
        CaptureAllActiveConfig(),
        job_id="lazyjob",
        seed=5,
        lint=False,
        num_workers=workers,
        executor=executor,
        trace_format=trace_format,
    )


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_lazy_equals_eager(executor, workers):
    run = _run(executor, workers)
    assert run.ok
    fs = run.session.filesystem
    lazy = TraceReader(fs, "lazyjob", mode="lazy")
    eager = TraceReader(fs, "lazyjob", mode="eager")

    assert len(lazy) == len(eager)
    assert lazy.supersteps() == eager.supersteps()
    assert lazy.captured_vertex_ids() == eager.captured_vertex_ids()
    for step in lazy.supersteps():
        lazy_step = lazy.at_superstep(step)
        eager_step = eager.at_superstep(step)
        assert [r.key for r in lazy_step] == [r.key for r in eager_step]
        for a, b in zip(lazy_step, eager_step):
            assert a.value_before == b.value_before
            assert a.value_after == b.value_after
            assert a.incoming == b.incoming
            assert a.sent == b.sent
            assert a.worker_id == b.worker_id
    for vid in lazy.captured_vertex_ids():
        assert [r.superstep for r in lazy.history(vid)] == \
            [r.superstep for r in eager.history(vid)]
    assert [m.superstep for m in lazy.master_records] == \
        [m.superstep for m in eager.master_records]


@pytest.mark.parametrize("trace_format", ("v1", "v2"))
def test_views_work_over_both_formats(trace_format):
    run = _run("serial", 2, trace_format=trace_format)
    assert run.ok
    tabular = run.tabular_view().last().render()
    assert "superstep" in tabular
    nodelink = run.node_link_view().last()
    captured, small = nodelink.nodes()
    assert captured and small == []
    assert nodelink.render()


def test_digest_stable_across_formats_and_backends():
    digests = {
        (fmt, executor): canonical_trace_digest(
            _run(executor, 2, trace_format=fmt).session.filesystem, "lazyjob"
        )
        for fmt in ("v1", "v2")
        for executor in ("serial", "threads")
    }
    assert len(set(digests.values())) == 1, digests


def test_replay_from_trace_point_lookup():
    run = _run("serial", 2)
    fs = run.session.filesystem
    report = replay_from_trace(
        fs, "lazyjob", lambda: PageRank(iterations=4), vertex_id=3, superstep=2
    )
    assert report.faithful, report.mismatches
    assert report.record.key == (3, 2)
    assert report.executed_lines  # line tracing went through the lazy path


def test_debug_run_reader_mode_eager_option():
    run = debug_run(
        lambda: PageRank(iterations=3),
        premade_graph("triangle"),
        CaptureAllActiveConfig(),
        seed=1,
        lint=False,
        reader_mode="eager",
    )
    assert run.ok
    assert run.reader.mode == "eager"
    assert run.captured(0, 1).vertex_id == 0
