"""Integration test: traces merge correctly across worker files.

Graft writes one trace file per worker; the reader must reassemble a
coherent picture regardless of where the partitioner placed each vertex.
"""

from repro.graft import CaptureAllActiveConfig, debug_run
from repro.graft.trace import iter_file_records, worker_trace_path
from repro.graph import GraphBuilder
from repro.pregel import Computation, ExplicitPartitioner
from repro.simfs import SimFileSystem


class Relay(Computation):
    """Passes a token along a directed chain, one hop per superstep."""

    def initial_value(self, vertex_id, input_value):
        return "token" if vertex_id == 0 else None

    def compute(self, ctx, messages):
        if messages:
            ctx.set_value(messages[0])
        if ctx.value is not None and ctx.superstep == (
            ctx.vertex_id if isinstance(ctx.vertex_id, int) else 0
        ):
            for target in ctx.neighbor_ids():
                ctx.send_message(target, ctx.value)
        ctx.vote_to_halt()


def chain(n=4):
    return GraphBuilder(directed=True).path(*range(n)).build()


class TestCrossWorkerTraces:
    def test_each_worker_writes_its_own_vertices(self):
        fs = SimFileSystem()
        partitioner = ExplicitPartitioner(3, {0: 0, 1: 1, 2: 2, 3: 0})
        run = debug_run(
            Relay,
            chain(),
            CaptureAllActiveConfig(),
            filesystem=fs,
            job_id="routed",
            partitioner=partitioner,
        )
        assert run.ok
        for vertex, worker in ((0, 0), (1, 1), (2, 2)):
            path = worker_trace_path("routed", worker)
            ids = {r.vertex_id for r in iter_file_records(fs, path)}
            assert vertex in ids, (vertex, worker, ids)

    def test_reader_merges_all_workers(self):
        partitioner = ExplicitPartitioner(3, {0: 0, 1: 1, 2: 2, 3: 0})
        run = debug_run(
            Relay, chain(), CaptureAllActiveConfig(), partitioner=partitioner
        )
        assert run.reader.captured_vertex_ids() == [0, 1, 2, 3]
        workers = {r.worker_id for r in run.reader.vertex_records}
        assert workers == {0, 1, 2}

    def test_message_across_workers_recorded_on_both_ends(self):
        partitioner = ExplicitPartitioner(2, {0: 0, 1: 1, 2: 0, 3: 1})
        run = debug_run(
            Relay, chain(), CaptureAllActiveConfig(), partitioner=partitioner
        )
        sender = run.captured(0, 0)
        receiver = run.captured(1, 1)
        assert sender.sent == [(1, "token")]
        assert receiver.incoming == [(0, "token")]

    def test_token_reaches_the_end_regardless_of_placement(self):
        for workers in (1, 2, 4):
            run = debug_run(
                Relay, chain(), CaptureAllActiveConfig(), num_workers=workers
            )
            assert run.result.vertex_values[3] == "token"
