"""Integration edge cases across the whole stack.

The unusual inputs a real deployment eventually meets: empty graphs,
single vertices, unicode and tuple vertex ids, zero-capture runs, and
views pointed at supersteps with no captures.
"""

import pytest

from repro.algorithms import ConnectedComponents, PageRank
from repro.graft import CaptureAllActiveConfig, DebugConfig, debug_run
from repro.graph import Graph, GraphBuilder
from repro.pregel import run_computation


class TestUnusualGraphs:
    def test_empty_graph_converges_immediately(self):
        result = run_computation(ConnectedComponents, Graph())
        assert result.vertex_values == {}
        assert result.converged
        assert result.num_supersteps <= 1

    def test_empty_graph_under_graft(self):
        run = debug_run(ConnectedComponents, Graph(), CaptureAllActiveConfig())
        assert run.ok
        assert run.capture_count == 0

    def test_single_vertex(self):
        g = GraphBuilder(directed=False).vertex("only").build()
        result = run_computation(ConnectedComponents, g)
        assert result.vertex_values == {"only": "only"}

    def test_self_loop_graph(self):
        g = Graph(directed=False)
        g.add_edge("a", "a")
        result = run_computation(ConnectedComponents, g)
        assert result.vertex_values["a"] == "a"

    def test_unicode_and_tuple_ids_full_cycle(self):
        # HashMin needs comparable ids, so keep each graph homogeneous —
        # but unicode strings and tuples both flow through the whole stack.
        g = GraphBuilder(directed=False).edge("héllo", "wörld").build()
        g.add_undirected_edge(("t", 1), ("t", 2))
        run = debug_run(ConnectedComponents, g, CaptureAllActiveConfig(), seed=1)
        assert run.ok
        # Trace round-trip preserved exotic ids.
        assert set(run.reader.captured_vertex_ids()) == {
            "héllo", "wörld", ("t", 1), ("t", 2)
        }
        record = run.reader.vertex_records[0]
        report = run.reproduce(record.vertex_id, record.superstep)
        assert report.faithful
        # Codegen stays eval-able for these ids.
        code = run.generate_test_code(record.vertex_id, record.superstep)
        namespace = {"__name__": "generated"}
        exec(compile(code, "<generated>", "exec"), namespace)
        for name, test in namespace.items():
            if name.startswith("test_"):
                test()

    def test_huge_integer_ids(self):
        g = GraphBuilder(directed=False).edge(10**30, 10**30 + 1).build()
        run = debug_run(ConnectedComponents, g, CaptureAllActiveConfig())
        assert run.ok
        assert run.result.vertex_values[10**30 + 1] == 10**30


class TestViewsOnSparseCaptures:
    def test_goto_superstep_without_captures(self):
        class FirstOnly(DebugConfig):
            def capture_all_active(self):
                return True

            def should_capture_superstep(self, superstep):
                return superstep == 0

        g = GraphBuilder(directed=False).cycle(0, 1, 2).build()
        run = debug_run(lambda: PageRank(iterations=3), g, FirstOnly(), seed=1)
        view = run.node_link_view().goto(2)  # nothing captured there
        rendered = view.render()
        assert "superstep 2" in rendered
        captured, small = view.nodes()
        assert captured == [] and small == []
        table = run.tabular_view().goto(2)
        assert "(0 captured)" in table.render()

    def test_stepping_skips_uncaptured_supersteps(self):
        class EveryOther(DebugConfig):
            def capture_all_active(self):
                return True

            def should_capture_superstep(self, superstep):
                return superstep % 2 == 0

        g = GraphBuilder(directed=False).cycle(0, 1, 2).build()
        run = debug_run(lambda: PageRank(iterations=4), g, EveryOther(), seed=1)
        view = run.node_link_view()
        assert view.superstep == 0
        assert view.next().superstep == 2
        assert view.next().superstep == 4


class TestZeroCaptureRuns:
    def test_report_renders_without_captures(self):
        g = GraphBuilder(directed=False).edge(0, 1).build()
        run = debug_run(ConnectedComponents, g, DebugConfig(), seed=1)
        html = run.html_report()
        assert "Graft report" in html
        assert run.capture_count == 0

    def test_fidelity_of_empty_run(self):
        from repro.graft import verify_run_fidelity

        g = GraphBuilder(directed=False).edge(0, 1).build()
        run = debug_run(ConnectedComponents, g, DebugConfig(), seed=1)
        report = verify_run_fidelity(run)
        assert report.ok
        assert report.total == 0


class TestCliReportFlag:
    def test_html_report_written(self, tmp_path):
        from repro.cli import main

        lines = []
        path = str(tmp_path / "run.html")
        status = main(
            [
                "debug", "--algorithm", "components", "--dataset",
                "bipartite-1M-3M", "--vertices", "40", "--capture-ids", "0",
                "--html-report", path,
            ],
            out=lines.append,
        )
        assert status == 0
        assert (tmp_path / "run.html").exists()
