"""graft-san end to end: the determinism race detector's closed loop.

Two halves of one claim:

- the seeded order-sensitivity bug (``BuggyLabelPropagation``) is flagged
  statically (GL016) AND diverges under permuted delivery schedules, with
  a first-divergence report naming the superstep, vertex, and field;
- every shipped deterministic algorithm produces a byte-identical
  order-insensitive canonical digest across >= 3 permutation schedules on
  all three execution backends, and carries zero proven GL016-GL020
  findings.
"""

import pytest

from repro.algorithms import (
    BuggyLabelPropagation,
    ConnectedComponents,
    GCMaster,
    GraphColoring,
    KCore,
    LabelPropagation,
    MaximumWeightMatching,
    PageRank,
    RandomWalk,
    ShortestPaths,
    TriangleCount,
)
from repro.analysis import PROVEN, analyze_computation
from repro.datasets import load_dataset, random_symmetric_weights
from repro.graft.sanitizer import run_sanitizer
from repro.graph import to_undirected
from repro.pregel.runtime import EXECUTOR_NAMES

DETERMINISM_RULES = ("GL016", "GL017", "GL018", "GL019", "GL020")
SCHEDULES = 3


def _directed():
    return load_dataset("web-BS", num_vertices=40, seed=3)


#: name -> (factory, graph builder, engine kwargs). Every shipped
#: deterministic algorithm, sized for a fast sweep.
ALGORITHMS = {
    "pagerank": (lambda: PageRank(iterations=3), _directed, {}),
    "sssp": (lambda: ShortestPaths(0), _directed, {}),
    "rw": (
        lambda: RandomWalk(steps=4, initial_walkers=20),
        _directed,
        {"max_supersteps": 12},
    ),
    "components": (
        lambda: ConnectedComponents(),
        lambda: to_undirected(_directed()),
        {},
    ),
    "label-prop": (
        lambda: LabelPropagation(iterations=5),
        lambda: to_undirected(_directed()),
        {},
    ),
    "triangles": (
        lambda: TriangleCount(),
        lambda: to_undirected(_directed()),
        {},
    ),
    "kcore": (lambda: KCore(2), lambda: to_undirected(_directed()), {}),
    "gc": (
        lambda: GraphColoring(),
        lambda: to_undirected(_directed()),
        {"master": GCMaster(), "max_supersteps": 30},
    ),
    "mwm": (
        lambda: MaximumWeightMatching(),
        lambda: to_undirected(random_symmetric_weights(_directed(), seed=3)),
        {"max_supersteps": 30},
    ),
}

_CACHE = {}


def _sweep(algorithm, executor):
    """One sanitizer sweep per (algorithm, executor); memoized."""
    key = (algorithm, executor)
    if key not in _CACHE:
        factory, graph_builder, kwargs = ALGORITHMS[algorithm]
        _CACHE[key] = run_sanitizer(
            factory,
            graph_builder(),
            schedules=SCHEDULES,
            seed=7,
            num_workers=2,
            executor=executor,
            **kwargs,
        )
    return _CACHE[key]


# -- the buggy half: flagged statically, proven dynamically --------------------


@pytest.mark.san
class TestClosedLoop:
    def test_buggy_label_propagation_flagged_statically(self):
        report = analyze_computation(BuggyLabelPropagation)
        gl016 = [f for f in report.findings if f.rule_id == "GL016"]
        assert gl016, "the seeded tie-break bug must be flagged"

    def test_buggy_label_propagation_diverges(self):
        report = run_sanitizer(
            lambda: BuggyLabelPropagation(iterations=6),
            to_undirected(_directed()),
            schedules=SCHEDULES,
            seed=7,
            num_workers=4,
        )
        assert report.ok, report.failures
        assert not report.deterministic
        assert report.divergent_schedules, "permutation must expose the bug"
        assert report.inboxes_permuted > 0

        divergence = report.first_divergence
        assert divergence is not None
        assert divergence.schedule in report.divergent_schedules
        assert divergence.superstep >= 1
        assert divergence.field, "divergence must name the record field"
        assert divergence.baseline != divergence.permuted
        assert str(divergence.superstep) in divergence.summary()

        # The GL016 finding is judged against the runtime evidence.
        verdicts = report.verdicts()
        assert verdicts, "the lint finding must receive a verdict"
        assert all(v == "confirmed" for v in verdicts.values())
        assert report.observed_evidence_kinds() == ["order_divergence"]

    def test_sanitizer_report_round_trips_to_dict(self):
        report = run_sanitizer(
            lambda: BuggyLabelPropagation(iterations=4),
            to_undirected(_directed()),
            schedules=2,
            seed=7,
            num_workers=2,
        )
        payload = report.to_dict()
        assert payload["deterministic"] is False
        assert payload["divergent_schedules"]
        assert payload["first_divergence"]["field"]
        assert any("GL016" in key for key in payload["verdicts"])
        assert "ORDER-SENSITIVE" in report.summary()


# -- the clean half: every shipped algorithm, every backend --------------------


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_no_proven_determinism_findings(algorithm):
    factory, _graph, _kwargs = ALGORITHMS[algorithm]
    report = analyze_computation(type(factory()))
    proven = [
        f for f in report.findings
        if f.rule_id in DETERMINISM_RULES and f.confidence == PROVEN
    ]
    assert proven == [], proven


@pytest.mark.san
@pytest.mark.parametrize("algorithm", ["pagerank", "label-prop"])
def test_smoke_deterministic_on_serial(algorithm):
    report = _sweep(algorithm, "serial")
    assert report.ok, report.failures
    assert report.deterministic, report.summary()


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
def test_deterministic_across_schedules(algorithm, executor):
    report = _sweep(algorithm, executor)
    assert report.ok, report.failures
    assert len(report.schedules) >= 3
    assert report.deterministic, report.summary()
    assert report.observed_evidence_kinds() == []
    # Refuted-or-empty verdicts: nothing may be "confirmed" on clean code.
    assert "confirmed" not in report.verdicts().values()


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_digest_identical_across_backends(algorithm):
    """The order-insensitive digest is one hash whatever backend ran."""
    digests = {
        executor: _sweep(algorithm, executor).baseline_digest
        for executor in EXECUTOR_NAMES
    }
    assert len(set(digests.values())) == 1, digests


# -- wiring: verdicts feed the score, the view, and the fidelity report --------


class TestSanitizerWiring:
    def _buggy_pair(self):
        import warnings

        from repro.graft import CaptureAllActiveConfig, debug_run

        graph = to_undirected(_directed())
        sanitizer = run_sanitizer(
            lambda: BuggyLabelPropagation(iterations=4),
            graph, schedules=2, seed=7, num_workers=2,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            run = debug_run(
                lambda: BuggyLabelPropagation(iterations=4),
                graph, CaptureAllActiveConfig(),
                seed=7, num_workers=2,
            )
        return run, sanitizer

    def test_violations_view_footer_carries_verdicts(self):
        run, sanitizer = self._buggy_pair()
        rendered = run.violations_view(sanitizer=sanitizer).render()
        assert "order_divergence" in rendered
        assert "confirmed by graft-san" in rendered
        assert "first divergence" in rendered

    def test_fidelity_report_observes_order_divergence(self):
        from repro.graft import verify_run_fidelity

        run, sanitizer = self._buggy_pair()
        report = verify_run_fidelity(run, limit=10, sanitizer=sanitizer)
        assert report.ok, "replay fidelity is unaffected by the race"
        assert "order_divergence" in report.prediction_score.observed


# -- the CLI surface -----------------------------------------------------------


@pytest.mark.san
class TestSanCli:
    def _run_cli(self, *argv):
        from repro.cli import main

        lines = []
        status = main(list(argv), out=lines.append)
        return status, "\n".join(lines)

    def test_divergence_exits_2(self):
        status, output = self._run_cli(
            "san", "--algorithm", "label-prop-buggy", "--dataset", "web-BS",
            "--vertices", "40", "--schedules", "2", "--workers", "2",
        )
        assert status == 2
        assert "ORDER-SENSITIVE" in output
        assert "first divergence" in output

    def test_deterministic_exits_0(self):
        status, output = self._run_cli(
            "san", "--algorithm", "label-prop", "--dataset", "web-BS",
            "--vertices", "40", "--schedules", "2", "--workers", "2",
        )
        assert status == 0
        assert "DETERMINISTIC" in output

    def test_json_format(self):
        import json

        status, output = self._run_cli(
            "san", "--algorithm", "pagerank", "--dataset", "web-BS",
            "--vertices", "30", "--schedules", "2", "--workers", "2",
            "--format", "json",
        )
        assert status == 0
        payload = json.loads(output.split("\n", 1)[1])
        assert payload["deterministic"] is True
        assert len(payload["schedule_digests"]) == 2
