"""Smoke tests: every shipped example runs green, end to end.

Examples rot silently unless executed; each one here runs as a subprocess
exactly as a user would run it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
_RESULTS = {}


def run_example(example):
    """Run one example once per test session; cache the result."""
    if example not in _RESULTS:
        _RESULTS[example] = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / example)],
            capture_output=True,
            text=True,
            timeout=300,
        )
    return _RESULTS[example]


def test_all_examples_enumerated():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example):
    completed = run_example(example)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate what they do"


@pytest.mark.parametrize(
    "example, expected",
    [
        ("quickstart.py", "Reproduce"),
        ("scenario_graph_coloring.py", "BUG VISIBLE"),
        ("scenario_random_walk.py", "wraps to"),
        ("scenario_mwm_input_bug.py", "asymmetric"),
        ("end_to_end_testing.py", "PASSED"),
        ("differential_debugging.py", "diverge"),
    ],
)
def test_example_reaches_its_punchline(example, expected):
    completed = run_example(example)
    assert completed.returncode == 0
    assert expected in completed.stdout
