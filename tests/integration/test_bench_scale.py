"""Opt-in wrapper around scripts/bench_scale.py.

Skipped by default so tier-1 stays fast; run it with::

    RUN_BENCH_SCALE=1 PYTHONPATH=src python -m pytest -m bench_scale \
        tests/integration/test_bench_scale.py -q

(or run the script directly — it is the same code path). The wrapper runs
the --quick variant (~100K vertices); the checked-in BENCH_scale.json is
produced by the full 1M-vertex run of the same script.
"""

import json
import os
import sys

import pytest

pytestmark = [
    pytest.mark.bench_scale,
    pytest.mark.skipif(
        not os.environ.get("RUN_BENCH_SCALE"),
        reason="out-of-core scale benchmark; set RUN_BENCH_SCALE=1 to run",
    ),
]

_SCRIPTS = os.path.join(os.path.dirname(__file__), "..", "..", "scripts")


def test_bench_scale_gates(tmp_path):
    sys.path.insert(0, os.path.abspath(_SCRIPTS))
    try:
        import bench_scale
    finally:
        sys.path.pop(0)

    output = tmp_path / "BENCH_scale.json"
    status = bench_scale.main(["--quick", "--output", str(output)])
    report = json.loads(output.read_text())
    assert report["gates"]["passed"], report["gates"]["failures"]
    assert status == 0
    assert report["fidelity"]["matched"]
    measured = report["measured"]
    assert measured["compute_calls"] >= bench_scale.QUICK_VERTICES * 2
    assert measured["store_bytes_loaded"] > 0
    assert measured["peak_memory_bytes"] < measured["estimated_in_memory_bytes"]
