"""Integration test: the whole stack in one user journey.

A user stages an input graph on the (simulated) DFS, validates it, runs a
job DFS-to-DFS, debugs the same job with Graft, exports the HTML report
and raw traces to disk, generates a regression test, and finally diffs a
fixed implementation against the buggy one — every subsystem in one flow.
"""

from repro.algorithms import BuggyGraphColoring, GCMaster, GraphColoring
from repro.algorithms.coloring import COLORED
from repro.datasets import load_dataset
from repro.graft import CaptureAllActiveConfig, debug_job, diff_runs
from repro.graph import validate_graph, write_adjacency_simfs
from repro.pregel import run_job
from repro.simfs import SimFileSystem


def test_stage_validate_run_debug_export_diff(tmp_path):
    fs = SimFileSystem()

    # 1. Stage the input graph on the DFS.
    graph = load_dataset("bipartite-1M-3M", num_vertices=80, seed=4)
    write_adjacency_simfs(graph, fs, "/data/bipartite.adj")
    assert fs.is_file("/data/bipartite.adj")

    # 2. Validate the staged input.
    report = validate_graph(graph)
    assert report.ok

    # 3. Run the (buggy) job DFS-to-DFS, like a normal Giraph submission.
    job = run_job(
        fs,
        "/data/bipartite.adj",
        "/output/coloring",
        BuggyGraphColoring,
        directed=False,
        master=GCMaster(),
        seed=4,
        max_supersteps=300,
    )
    assert job.result.converged or job.result.halt_reason == "master_halt"
    assert fs.glob_files("/output/coloring", suffix=".out")

    # 4. Re-submit under Graft, traces land on the same DFS.
    buggy = debug_job(
        fs,
        "/data/bipartite.adj",
        BuggyGraphColoring,
        CaptureAllActiveConfig(),
        directed=False,
        master=GCMaster(),
        seed=4,
        max_supersteps=300,
        job_id="buggy-gc",
    )
    assert buggy.ok
    assert buggy.capture_count > 0
    assert fs.is_dir("/graft/buggy-gc")

    # 5. Inspect: every vertex ends colored; the GUI views render.
    final_view = buggy.node_link_view().last()
    assert "COLORED" in final_view.render()
    assert all(
        record.value_after.state == COLORED
        for record in buggy.captures_at(buggy.reader.supersteps()[-1])
    )

    # 6. Export the report and the raw traces to real disk.
    report_path = buggy.export_html_report(str(tmp_path / "report.html"))
    assert (tmp_path / "report.html").exists(), report_path
    buggy.export_traces(str(tmp_path / "traces"))
    assert (tmp_path / "traces" / "graft" / "buggy-gc").is_dir()

    # 7. Generate a regression test from a captured context and run it.
    record = buggy.reader.vertex_records[0]
    code = buggy.generate_test_code(record.vertex_id, record.superstep)
    namespace = {"__name__": "generated"}
    exec(compile(code, "<generated>", "exec"), namespace)
    for name, value in namespace.items():
        if name.startswith("test_"):
            value()

    # 8. Differential debugging: the fixed implementation against the bug.
    fixed = debug_job(
        fs,
        "/data/bipartite.adj",
        GraphColoring,
        CaptureAllActiveConfig(),
        directed=False,
        master=GCMaster(),
        seed=4,
        max_supersteps=300,
        job_id="fixed-gc",
    )
    diff = diff_runs(fixed, buggy)
    assert not diff.identical
    assert diff.earliest().superstep >= 0
