"""The debug server end to end: real runs, real HTTP, many threads.

Covers the serve acceptance criteria:

- every served view is byte-identical to its one-shot renderer;
- N concurrent clients hammering shared readers all get byte-identical
  payloads (per target) and correct data;
- after the digest is warm, ``If-None-Match`` revalidation answers 304
  with **zero** filesystem reads (asserted via simfs read accounting);
- ``repro trace stats --json`` emits the same document as the server's
  ``/jobs/<id>`` endpoint.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.algorithms import ConnectedComponents
from repro.datasets import load_dataset
from repro.graft import DebugConfig, debug_run
from repro.graft.views import NodeLinkView, TabularView, ViolationsView
from repro.serve import DebugServer, create_server
from repro.simfs import SimFileSystem

NUM_CLIENTS = 8
REQUESTS_PER_CLIENT = 6


class _CaptureAll(DebugConfig):
    def capture_all_active(self):
        return True


class _FlagEvens(_CaptureAll):
    """Violate the vertex-value constraint on even component ids."""

    def vertex_value_constraint(self, value, vertex_id, superstep):
        return not (superstep >= 2 and value % 2 == 0)


@pytest.fixture(scope="module")
def served():
    fs = SimFileSystem()
    graph = load_dataset("web-BS", seed=0, num_vertices=40)
    debug_run(ConnectedComponents, graph, _CaptureAll(), filesystem=fs,
              job_id="job-clean", num_workers=4)
    debug_run(ConnectedComponents, graph, _FlagEvens(), filesystem=fs,
              job_id="job-flagged", num_workers=2)
    server = create_server(fs).start()
    yield fs, server
    server.shutdown()


def _get(server, path, headers=None):
    request = urllib.request.Request(server.url + path,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def test_served_views_are_byte_identical_to_renderers(served):
    fs, server = served
    reader = server.pool.reader("job-flagged")
    expectations = {
        "/jobs/job-flagged/views/nodelink/render":
            NodeLinkView(reader, None).render(),
        "/jobs/job-flagged/views/tabular/render":
            TabularView(reader).render(),
        "/jobs/job-flagged/views/violations/render":
            ViolationsView(reader).render(),
    }
    for path, expected in expectations.items():
        status, _headers, body = _get(server, path)
        assert status == 200
        assert body == expected.encode("utf-8"), path


def test_concurrent_clients_get_identical_correct_payloads(served):
    fs, server = served
    targets = [
        "/jobs",
        "/jobs/job-clean",
        "/jobs/job-flagged/views/nodelink/render",
        "/jobs/job-flagged/views/tabular?limit=10",
        "/jobs/job-flagged/views/violations",
        "/jobs/job-clean/vertex/3?superstep=1",
        "/jobs/job-clean/vertex/3/history",
        "/jobs/job-clean/profile/heatmap",
        "/jobs/job-clean/profile/skew",
        "/jobs/job-flagged/reproduce/3/1?computation=ConnectedComponents",
    ]
    barrier = threading.Barrier(NUM_CLIENTS)
    results = [[] for _ in range(NUM_CLIENTS)]
    errors = []

    def client(index):
        try:
            barrier.wait(timeout=30)
            for round_ in range(REQUESTS_PER_CLIENT):
                target = targets[(index + round_) % len(targets)]
                status, _headers, body = _get(server, target)
                results[index].append((target, status, body))
        except Exception as exc:  # noqa: BLE001 - surfaced by the assert
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(NUM_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors

    # Same target -> byte-identical body, whichever thread asked and in
    # whatever interleaving.
    by_target = {}
    for client_results in results:
        assert client_results, "a client made no requests"
        for target, status, body in client_results:
            assert status == 200, (target, status, body[:200])
            by_target.setdefault(target, set()).add(body)
    assert set(by_target) == set(targets)
    for target, bodies in by_target.items():
        assert len(bodies) == 1, f"{target} served {len(bodies)} variants"

    # And the concurrent bodies match single-threaded recomputation.
    for target in targets:
        _status, _headers, body = _get(server, target)
        assert body in by_target[target]


def test_etag_revalidation_serves_304_with_zero_reads(served):
    fs, server = served
    status, headers, _body = _get(server, "/jobs/job-clean")
    assert status == 200
    etag = headers["ETag"]
    assert etag.strip('"') == server.pool.etag("job-clean")

    before = (fs.bytes_read, fs.read_calls)
    for path in (
        "/jobs/job-clean",
        "/jobs/job-clean/views/tabular?limit=5",
        "/jobs/job-clean/profile/skew",
    ):
        status, headers, body = _get(
            server, path, headers={"If-None-Match": etag}
        )
        assert status == 304, path
        assert headers["ETag"] == etag
        assert body == b""
    assert (fs.bytes_read, fs.read_calls) == before, (
        "revalidation touched the filesystem"
    )

    # A stale validator misses and the full response comes back.
    status, _headers, body = _get(
        server, "/jobs/job-clean", headers={"If-None-Match": '"stale"'}
    )
    assert status == 200 and body


def test_cold_job_never_304s(served):
    fs, server = served
    with DebugServer(fs, pool=None) as cold_server:
        status, _headers, _body = _get(
            cold_server,
            "/jobs/job-clean",
            headers={"If-None-Match": '"' + server.pool.etag("job-clean") + '"'},
        )
        # The fresh pool has no cached digest: proving the match would cost
        # the reads the 304 exists to avoid, so the full answer is correct.
        assert status == 200


def test_trace_stats_json_matches_server_document(served, tmp_path, capsys):
    fs, server = served
    export = tmp_path / "traces"
    fs.export_to_directory(str(export))

    from repro.cli import main

    lines = []
    status = main(
        ["trace", "stats", "job-clean", "--dir", str(export), "--json"],
        out=lines.append,
    )
    assert status == 0
    cli_doc = json.loads("\n".join(lines))

    http_status, _headers, body = _get(server, "/jobs/job-clean")
    assert http_status == 200
    server_doc = json.loads(body.decode("utf-8"))
    server_doc.pop("supersteps")  # the reader view only the server adds
    assert cli_doc == server_doc


def test_head_requests_have_no_body(served):
    fs, server = served
    request = urllib.request.Request(
        server.url + "/jobs/job-clean", method="HEAD"
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.status == 200
        assert response.read() == b""
        assert response.headers["ETag"]
