"""Integration test: debugging master.compute() (paper Section 3.4).

"The most common bug inside master.compute() is setting the phase of the
computation incorrectly, which generally leads to infinite superstep
executions or premature termination." This test plants exactly that bug,
observes the infinite loop, and uses the captured master contexts plus
master replay to locate it.
"""

from repro.algorithms import GraphColoring
from repro.algorithms.coloring import (
    ASSIGN,
    DECIDE,
    DISCOVER,
    GCMaster,
    PHASE_AGG,
    SELECT,
    UNKNOWN_COUNT_AGG,
)
from repro.datasets import premade_graph
from repro.graft import DebugConfig, debug_run
from repro.graft.reproducer import replay_master_record
from repro.pregel.halting import MAX_SUPERSTEPS


class BuggyGCMaster(GCMaster):
    """Never advances from DISCOVER to ASSIGN: the classic phase bug."""

    def master_compute(self, master_ctx):
        previous = master_ctx.aggregated_value(PHASE_AGG)
        if previous == DISCOVER:
            # BUG: loops back to SELECT even when no UNKNOWN vertices remain.
            master_ctx.set_aggregated_value(UNKNOWN_COUNT_AGG, 0)
            master_ctx.set_aggregated_value(PHASE_AGG, SELECT)
            return
        super().master_compute(master_ctx)


class TestMasterDebugging:
    def test_phase_bug_causes_infinite_supersteps(self, petersen):
        run = debug_run(
            GraphColoring,
            petersen,
            DebugConfig(),
            master=BuggyGCMaster(),
            seed=1,
            max_supersteps=60,
        )
        assert run.result.halt_reason == MAX_SUPERSTEPS

    def test_master_trace_reveals_missing_assign_phase(self, petersen):
        run = debug_run(
            GraphColoring,
            petersen,
            DebugConfig(),
            master=BuggyGCMaster(),
            seed=1,
            max_supersteps=60,
        )
        phases = {m.aggregators.get(PHASE_AGG) for m in run.master_contexts()}
        assert ASSIGN not in phases  # the smoking gun in the master trace
        assert {SELECT, DECIDE, DISCOVER} <= phases

    def test_master_replay_pinpoints_wrong_transition(self, petersen):
        run = debug_run(
            GraphColoring,
            petersen,
            DebugConfig(),
            master=BuggyGCMaster(),
            seed=1,
            max_supersteps=60,
        )
        # Find a superstep where DISCOVER ended with zero UNKNOWN vertices:
        # the correct master would transition to ASSIGN there.
        suspicious = next(
            m
            for m in run.master_contexts()
            if m.aggregators_before.get(PHASE_AGG) == DISCOVER
            and not m.aggregators_before.get(UNKNOWN_COUNT_AGG)
        )
        buggy_outcome = replay_master_record(suspicious, BuggyGCMaster)
        fixed_outcome = replay_master_record(suspicious, GCMaster)
        assert buggy_outcome.aggregators[PHASE_AGG] == SELECT   # wrong
        assert fixed_outcome.aggregators[PHASE_AGG] == ASSIGN   # right

    def test_generated_master_test_documents_the_fix(self, petersen):
        run = debug_run(
            GraphColoring,
            petersen,
            DebugConfig(),
            master=GCMaster(),
            seed=1,
            max_supersteps=200,
        )
        final = run.master_contexts()[-1]
        code = run.generate_master_test_code(final.superstep, GCMaster)
        namespace = {"__name__": "generated"}
        exec(compile(code, "<generated>", "exec"), namespace)
        for name, value in namespace.items():
            if name.startswith("test_"):
                value()
