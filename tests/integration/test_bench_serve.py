"""Opt-in wrapper around scripts/bench_serve.py.

Skipped by default so tier-1 stays fast and timing-free; run it with::

    RUN_BENCH_SERVE=1 PYTHONPATH=src python -m pytest -m bench_serve \
        tests/integration/test_bench_serve.py -q

(or run the script directly — it is the same code path).
"""

import json
import os
import sys

import pytest

pytestmark = [
    pytest.mark.bench_serve,
    pytest.mark.skipif(
        not os.environ.get("RUN_BENCH_SERVE"),
        reason="timing-sensitive benchmark; set RUN_BENCH_SERVE=1 to run",
    ),
]

_SCRIPTS = os.path.join(os.path.dirname(__file__), "..", "..", "scripts")


def test_bench_serve_gates(tmp_path):
    sys.path.insert(0, os.path.abspath(_SCRIPTS))
    try:
        import bench_serve
    finally:
        sys.path.pop(0)

    output = tmp_path / "BENCH_serve.json"
    status = bench_serve.main(["--quick", "--output", str(output)])
    report = json.loads(output.read_text())
    assert report["gates"]["passed"], report["gates"]["failures"]
    assert status == 0
    assert report["revalidation"]["zero_filesystem_reads"]
    assert report["correctness"]["byte_identical"]
    assert report["workload"]["num_clients"] >= 8
