"""End-to-end: interprocedural protocol forecasts graded on real runs.

The shipped phased-SSSP twins carry the two protocol bugs GL022/GL023
prove statically: a seed phase that broadcasts tuples into a summing
gather phase (TypeError at superstep 1), and a relay wave delivered into
a phase that never reads its inbox (silently dropped, wrong values).
Each runs under ``debug_run`` and the prediction score must come back
perfect — every proven forecast observed, every predictable observation
forecast.
"""

import pytest

from repro import DebugConfig
from repro.algorithms import (
    BuggyPhaseGapBroadcast,
    BuggyPhasedShortestPaths,
    PhasedShortestPaths,
)
from repro.analysis import PROVEN, GraftLintWarning, analyze_computation
from repro.datasets import load_dataset
from repro.graft import debug_run, verify_run_fidelity


class NonNegativeValues(DebugConfig):
    """Distances and wave counts are never negative; a phase-gap default
    (-1.0) leaking into vertex state violates this."""

    def vertex_value_constraint(self, value, vertex_id, superstep):
        return not (value < 0)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("web-BS", num_vertices=40, seed=11)


class TestCleanPhasedBaseline:
    def test_clean_twin_lints_clean(self):
        assert analyze_computation(PhasedShortestPaths).ok

    def test_clean_twin_runs_and_scores_vacuously(self, graph):
        run = debug_run(
            lambda: PhasedShortestPaths(source=0), graph,
            NonNegativeValues(), seed=11,
        )
        assert run.result is not None
        score = run.prediction_score()
        assert score.precision == 1.0 and score.recall == 1.0


class TestPayloadMismatchPrediction:
    @pytest.fixture
    def run(self, graph):
        with pytest.warns(GraftLintWarning):
            return debug_run(
                lambda: BuggyPhasedShortestPaths(source=0), graph,
                NonNegativeValues(), seed=11, lint=True,
            )

    def test_lint_proved_the_mismatch_before_running(self, run):
        findings = run.lint_report.by_rule("GL022")
        assert findings
        assert all(f.confidence == PROVEN for f in findings)
        assert all(f.predicts == "exception" for f in findings)

    def test_run_raises_as_forecast(self, run):
        assert "exception" in run.observed_evidence_kinds()

    def test_prediction_score_is_perfect(self, run):
        score = run.prediction_score()
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert "exception" in score.matched

    def test_fidelity_report_carries_the_score(self, run):
        report = verify_run_fidelity(run)
        assert report.prediction_score is not None
        assert report.prediction_score.precision == 1.0


class TestPhaseGapPrediction:
    @pytest.fixture
    def run(self, graph):
        with pytest.warns(GraftLintWarning):
            return debug_run(
                BuggyPhaseGapBroadcast, graph,
                NonNegativeValues(), seed=11, lint=True,
            )

    def test_lint_proved_the_gap_before_running(self, run):
        findings = run.lint_report.by_rule("GL023")
        assert findings
        assert all(f.confidence == PROVEN for f in findings)
        assert all(f.predicts == "vertex_value" for f in findings)

    def test_dropped_wave_violates_the_value_constraint(self, run):
        assert "vertex_value" in run.observed_evidence_kinds()

    def test_prediction_score_is_perfect(self, run):
        score = run.prediction_score()
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert "vertex_value" in score.matched
