"""The chaos acceptance sweep: every shipped preset × every backend.

This is the subsystem's reason to exist, stated as a test: for each
preset fault plan, the injected run must recover (rollback + re-execute)
and finish with final vertex values, aggregator state, and canonical
trace digest **bit-identical** to the undisturbed run — under the serial,
threads, and processes executors alike. Deselect the sweep with
``-m 'not chaos'`` when iterating on unrelated code.
"""

import pytest

from repro.algorithms import PageRank
from repro.chaos import PRESET_PLANS, preset_names, run_chaos
from repro.datasets import load_dataset
from repro.pregel.runtime import EXECUTOR_NAMES

pytestmark = pytest.mark.chaos


def _graph():
    return load_dataset("web-BS", num_vertices=40, seed=11)


def _factory():
    return PageRank(iterations=8)


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
@pytest.mark.parametrize("preset", preset_names())
def test_preset_recovers_bit_identically(preset, executor):
    report = run_chaos(
        _factory, _graph(), PRESET_PLANS[preset],
        seed=11, num_workers=4, executor=executor,
    )
    assert report.ok, f"{preset} on {executor}:\n{report.summary()}"
    assert report.faults_fired > 0
    assert report.injected_digest == report.baseline_digest


def test_presets_exercise_recovery_paths():
    """Sanity on the serial sweep: the presets really do what they claim."""
    reports = {
        preset: run_chaos(
            _factory, _graph(), PRESET_PLANS[preset],
            seed=11, num_workers=4,
        )
        for preset in preset_names()
    }
    assert all(report.ok for report in reports.values())
    # Crashes roll back; the double-crash preset rolls back twice.
    assert reports["worker-crash"].rollbacks == 2
    assert reports["checkpoint-corruption"].checkpoints_skipped >= 1
    # Torn-write presets capture the crash-moment filesystem and the
    # harness proved the readers still open it.
    assert reports["torn-trace-tail"].snapshots_checked >= 1
    assert reports["stale-sidecar"].snapshots_checked >= 1
    # The transient preset fires for several files (writers retried them all).
    assert reports["transient-io"].faults_fired > 2
