"""Integration test: the paper's Scenario 4.1 (graph coloring), end to end.

Walks the exact debugging cycle the paper demonstrates:

1. run the buggy GC with Graft capturing a random set of vertices and their
   neighbors;
2. go to the final superstep in the GUI and notice adjacent vertices with
   the same color;
3. step back to the superstep where both entered the MIS;
4. generate a unit test reproducing that vertex's context and replay it
   line by line to find the buggy decision.
"""

import pytest

from repro.algorithms import BuggyGraphColoring, GCMaster, find_coloring_conflicts
from repro.algorithms.coloring import IN_SET, UNKNOWN
from repro.datasets import load_dataset
from repro.graft import DebugConfig, debug_run


class RandomTenWithNeighbors(DebugConfig):
    """The Figure 2-style DebugConfig the scenario uses."""

    def num_random_vertices_to_capture(self):
        return 10

    def capture_neighbors_of_vertices(self):
        return True


@pytest.fixture(scope="module")
def scenario_run():
    graph = load_dataset("bipartite-1M-3M", num_vertices=300, seed=3)
    run = debug_run(
        BuggyGraphColoring,
        graph,
        RandomTenWithNeighbors(),
        master=GCMaster(),
        seed=3,
        num_workers=4,
        max_supersteps=500,
    )
    assert run.ok
    return run


def find_conflict_pair(run):
    """An adjacent same-colored pair, as the user would spot in the GUI."""
    conflicts = find_coloring_conflicts(run.graph, run.result.vertex_values)
    assert conflicts, "the buggy run must produce a conflict"
    return conflicts[0]


class TestScenario:
    def test_step1_captures_random_vertices_and_neighbors(self, scenario_run):
        ids = scenario_run.reader.captured_vertex_ids()
        assert len(ids) >= 10
        reasons = {
            reason
            for record in scenario_run.captures_at(0)
            for reason in record.reasons
        }
        assert "random" in reasons
        assert "neighbor" in reasons

    def test_step2_final_superstep_shows_conflict(self, scenario_run):
        u, v, color = find_conflict_pair(scenario_run)
        values = scenario_run.result.vertex_values
        assert values[u].color == values[v].color == color

    def test_step3_find_superstep_where_both_entered_mis(self, scenario_run):
        u, v, _color = find_conflict_pair(scenario_run)
        # Replay the algorithm superstep by superstep over the engine's
        # final values: find when both conflicting vertices entered the MIS.
        history_u = {r.superstep: r for r in scenario_run.history(u)}
        history_v = {r.superstep: r for r in scenario_run.history(v)}
        mis_steps = [
            s
            for s in sorted(set(history_u) & set(history_v))
            if history_u[s].value_after.state == IN_SET
            and history_v[s].value_after.state == IN_SET
        ]
        # Whether u/v themselves were captured depends on the random draw;
        # when they were, both must have entered in the same DECIDE superstep
        # with equal priorities (the tie the bug mishandles).
        for superstep in mis_steps:
            assert (
                history_u[superstep].value_before.priority
                == history_v[superstep].value_before.priority
            )

    def test_step4_reproduce_decide_superstep(self, scenario_run):
        # Take any captured vertex that entered the MIS and replay its
        # DECIDE call line by line.
        record = next(
            r
            for r in scenario_run.reader.vertex_records
            if r.value_before.state == UNKNOWN and r.value_after.state == IN_SET
        )
        report = scenario_run.reproduce(record.vertex_id, record.superstep)
        assert report.faithful
        annotated = report.annotated_source(BuggyGraphColoring())
        executed = [l for l in annotated.splitlines() if l.startswith(">")]
        assert any("_decide" in l or "compute" in l for l in executed)

    def test_step4_generated_unit_test_passes(self, scenario_run):
        record = next(
            r
            for r in scenario_run.reader.vertex_records
            if r.value_after.state == IN_SET
        )
        code = scenario_run.generate_test_code(record.vertex_id, record.superstep)
        namespace = {"__name__": "generated"}
        exec(compile(code, "<generated>", "exec"), namespace)
        for name, value in namespace.items():
            if name.startswith("test_"):
                value()

    def test_correct_implementation_passes_same_inspection(self):
        from repro.algorithms import GraphColoring

        graph = load_dataset("bipartite-1M-3M", num_vertices=300, seed=3)
        run = debug_run(
            GraphColoring,
            graph,
            RandomTenWithNeighbors(),
            master=GCMaster(),
            seed=3,
            num_workers=4,
            max_supersteps=500,
        )
        assert find_coloring_conflicts(graph, run.result.vertex_values) == []
