"""Out-of-core determinism: the spill plane changes nothing observable.

The contract of the partitioned vertex/message store (ISSUE 8): for the
same job, runs with ``store="spill"`` (paged vertex state, sorted
per-partition message runs, merge-join delivery) and ``store="memory"``
(plain dicts) must produce the same :class:`~repro.pregel.PregelResult`
and byte-identical canonical trace digests — across backends, worker
counts, and partition counts, with checkpoint/rollback recovery on the
spilled layout included. If paging, run sorting, combiner-at-load, or
barrier mutation resolution ever reorders or rewrites anything
observable, a digest here splits.
"""

import pytest

from repro.algorithms import PageRank, ShortestPaths
from repro.common.errors import PregelError
from repro.datasets import load_dataset, make
from repro.graft import CaptureAllActiveConfig, debug_run
from repro.graft.trace import canonical_trace_digest
from repro.pregel import MinCombiner, PregelEngine
from repro.pregel.permutation import PermutationSchedule

from tests.integration.test_columnar_determinism import TopologyChurn

WORKER_COUNTS = (1, 2, 4)
EXECUTORS = ("serial", "processes")

JOBS = {
    "pagerank": (lambda: PageRank(iterations=4), {}),
    "sssp_combined": (lambda: ShortestPaths(0), {"combiner": MinCombiner()}),
    "mutation": (TopologyChurn, {}),
    "mutation_drop": (TopologyChurn, {"on_message_to_missing": "drop"}),
}


def _graph():
    return load_dataset("web-BS", num_vertices=90, seed=11)


_CACHE = {}


def _run(job, executor, workers, store, partitions=None):
    """Run one debugged job; memoized so each config executes once."""
    key = (job, executor, workers, store, partitions)
    if key not in _CACHE:
        factory, extra_kwargs = JOBS[job]
        kwargs = dict(extra_kwargs)
        if partitions is not None:
            kwargs["num_partitions"] = partitions
        run = debug_run(
            factory,
            _graph(),
            CaptureAllActiveConfig(),
            job_id="spill",
            lint=False,
            seed=7,
            num_workers=workers,
            executor=executor,
            max_supersteps=8,
            store=store,
            **kwargs,
        )
        assert run.ok, f"{key}: {run.failure}"
        _CACHE[key] = {
            "values": dict(run.result.vertex_values),
            "supersteps": run.result.num_supersteps,
            "halt_reason": run.result.halt_reason,
            "captures": run.capture_count,
            "canonical_digest": canonical_trace_digest(
                run.session.filesystem, "spill"
            ),
        }
    return _CACHE[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("job", sorted(JOBS))
def test_spill_matches_memory(job, executor, workers):
    """spill/memory parity at every (backend, worker count) cell."""
    memory = _run(job, "serial", 1, "memory")
    spill = _run(job, executor, workers, "spill")
    assert spill["values"] == memory["values"]
    assert spill["supersteps"] == memory["supersteps"]
    assert spill["halt_reason"] == memory["halt_reason"]
    assert spill["captures"] == memory["captures"]
    assert spill["canonical_digest"] == memory["canonical_digest"]


def test_partition_count_does_not_change_digests():
    """8 vs 32 partitions: same bytes, only different page boundaries."""
    reference = _run("pagerank", "serial", 1, "memory")
    for partitions in (8, 32):
        spill = _run("pagerank", "serial", 2, "spill", partitions=partitions)
        assert spill["canonical_digest"] == reference["canonical_digest"]


def test_streaming_dataset_matches_materialized():
    """A VertexStream fed straight into the spill store equals the
    demo-scale dict graph it replays."""
    stream = make("bipartite-1M-3M", scale="full", num_vertices=400)
    graph = stream.materialize()
    digests = {}
    for label, source, kwargs in (
        ("memory", graph, {"store": "memory"}),
        ("spill", stream, {"store": "spill", "num_partitions": 8}),
        ("auto", stream, {"store": "auto", "memory_limit": 10_000}),
    ):
        run = debug_run(
            lambda: PageRank(iterations=3), source, CaptureAllActiveConfig(),
            job_id="stream", lint=False, seed=5, num_workers=2,
            max_supersteps=6, **kwargs,
        )
        assert run.ok, f"{label}: {run.failure}"
        digests[label] = canonical_trace_digest(
            run.session.filesystem, "stream"
        )
    assert digests["spill"] == digests["memory"]
    assert digests["auto"] == digests["memory"]


@pytest.mark.parametrize("executor", EXECUTORS)
def test_chaos_recovery_on_spilled_layout(executor):
    """Checkpoint + rollback over spilled pages reproduces the clean run."""
    from repro.chaos import PRESET_PLANS, run_chaos

    report = run_chaos(
        lambda: PageRank(iterations=8),
        load_dataset("web-BS", num_vertices=40, seed=11),
        PRESET_PLANS["worker-crash"],
        seed=7,
        num_workers=4,
        executor=executor,
        checkpoint_every=2,
        store="spill",
        num_partitions=8,
    )
    assert report.ok, report.summary()
    assert report.rollbacks > 0
    assert report.injected_digest == report.baseline_digest


def test_auto_spills_only_above_the_ceiling():
    graph = load_dataset("web-BS", num_vertices=60, seed=11)
    over = PregelEngine(
        lambda: PageRank(iterations=2), graph,
        store="auto", memory_limit=1_000,
    )
    under = PregelEngine(
        lambda: PageRank(iterations=2), graph,
        store="auto", memory_limit=1_000_000_000,
    )
    assert over._store is not None
    assert under._store is None


def test_spill_rejects_columnar_and_schedules():
    graph = load_dataset("web-BS", num_vertices=30, seed=11)
    with pytest.raises(PregelError, match="columnar"):
        PregelEngine(
            lambda: PageRank(iterations=2), graph,
            store="spill", columnar=True,
        )
    with pytest.raises(PregelError, match="delivery_schedule"):
        PregelEngine(
            lambda: PageRank(iterations=2), graph,
            store="spill",
            delivery_schedule=PermutationSchedule(seed=1),
        )


def test_spill_telemetry_is_reported():
    run = debug_run(
        lambda: PageRank(iterations=3),
        _graph(),
        CaptureAllActiveConfig(),
        job_id="telemetry",
        lint=False,
        seed=7,
        num_workers=2,
        store="spill",
        num_partitions=8,
    )
    assert run.ok
    stats = run.superstep_stats()
    assert stats and all(s.transport == "spill" for s in stats)
    assert any(s.store_bytes_loaded for s in stats)
    assert all(s.peak_memory_bytes > 0 for s in stats)
    assert stats[0].partitions_resident > 0
    metrics = run.result.metrics
    assert metrics.total_store_bytes_loaded > 0
    assert "spilled" in metrics.summary()
