"""Backend determinism: one job, same answer, byte-identical traces.

The contract of the pluggable execution backends (ISSUE 2): for the same
job — algorithm, graph, seed, worker count — the ``serial``, ``threads``,
and ``processes`` backends must produce

- the same :class:`~repro.pregel.PregelResult` (values, supersteps,
  halt reason, aggregators),
- byte-identical per-worker Graft trace files (same SHA-256 per file),

and across *worker counts* the canonical merged trace (which normalizes
the partition-dependent worker placement) must hash identically too.
"""

import hashlib

import pytest

from repro.algorithms import PageRank, ShortestPaths
from repro.datasets import load_dataset
from repro.graft import CaptureAllActiveConfig, debug_run
from repro.graft.trace import canonical_trace_digest, worker_trace_path
from repro.pregel.runtime import EXECUTOR_NAMES

WORKER_COUNTS = (1, 2, 4, 8)

ALGORITHMS = {
    "pagerank": lambda: PageRank(iterations=4),
    "sssp": lambda: ShortestPaths(0),
}


def _graph():
    return load_dataset("web-BS", num_vertices=90, seed=11)


_CACHE = {}


def _run(algorithm, executor, workers):
    """Run one debugged job; memoized so each config executes once."""
    key = (algorithm, executor, workers)
    if key not in _CACHE:
        run = debug_run(
            ALGORITHMS[algorithm],
            _graph(),
            CaptureAllActiveConfig(),
            job_id="det",
            lint=False,
            seed=7,
            num_workers=workers,
            executor=executor,
            max_supersteps=12,
        )
        assert run.ok, f"{key}: {run.failure}"
        fs = run.session.filesystem
        file_hashes = {
            worker_id: hashlib.sha256(
                fs.read_bytes(worker_trace_path("det", worker_id))
            ).hexdigest()
            for worker_id in range(workers)
        }
        _CACHE[key] = {
            "values": dict(run.result.vertex_values),
            "aggregators": dict(run.result.aggregator_values),
            "supersteps": run.result.num_supersteps,
            "halt_reason": run.result.halt_reason,
            "captures": run.capture_count,
            "file_hashes": file_hashes,
            "canonical_digest": canonical_trace_digest(fs, "det"),
        }
    return _CACHE[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("executor", EXECUTOR_NAMES[1:])
def test_backends_agree_with_serial(algorithm, executor, workers):
    """threads/processes match serial exactly at every worker count."""
    reference = _run(algorithm, "serial", workers)
    candidate = _run(algorithm, executor, workers)
    assert candidate["values"] == reference["values"]
    assert candidate["aggregators"] == reference["aggregators"]
    assert candidate["supersteps"] == reference["supersteps"]
    assert candidate["halt_reason"] == reference["halt_reason"]
    assert candidate["captures"] == reference["captures"]
    # Byte-identical traces: every per-worker file hashes the same.
    assert candidate["file_hashes"] == reference["file_hashes"]


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_canonical_digest_stable_across_worker_counts(algorithm):
    """The merged canonical trace is one hash whatever the partitioning."""
    digests = {
        workers: _run(algorithm, "serial", workers)["canonical_digest"]
        for workers in WORKER_COUNTS
    }
    assert len(set(digests.values())) == 1, digests


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_results_stable_across_worker_counts(algorithm):
    """Vertex values and aggregators don't depend on the partitioning."""
    reference = _run(algorithm, "serial", 1)
    for workers in WORKER_COUNTS[1:]:
        candidate = _run(algorithm, "serial", workers)
        assert candidate["values"] == reference["values"]
        assert candidate["aggregators"] == reference["aggregators"]
        assert candidate["supersteps"] == reference["supersteps"]
