"""Opt-in wrapper around scripts/bench_lint.py.

Skipped by default so tier-1 stays fast and timing-free; run it with::

    RUN_BENCH_LINT=1 PYTHONPATH=src python -m pytest -m bench_lint \
        tests/integration/test_bench_lint.py -q

(or run the script directly — it is the same code path).
"""

import json
import os
import sys

import pytest

pytestmark = [
    pytest.mark.bench_lint,
    pytest.mark.skipif(
        not os.environ.get("RUN_BENCH_LINT"),
        reason="timing-sensitive benchmark; set RUN_BENCH_LINT=1 to run",
    ),
]

_SCRIPTS = os.path.join(os.path.dirname(__file__), "..", "..", "scripts")


def test_bench_lint_gates(tmp_path):
    sys.path.insert(0, os.path.abspath(_SCRIPTS))
    try:
        import bench_lint
    finally:
        sys.path.pop(0)

    output = tmp_path / "BENCH_lint.json"
    status = bench_lint.main(["--quick", "--output", str(output)])
    report = json.loads(output.read_text())
    assert report["gates"]["passed"], report["gates"]["failures"]
    assert status == 0
    assert report["cold_full_corpus_seconds"] < report["gates"][
        "cold_seconds_ceiling"
    ]
    assert report["corpus"]["algorithm_classes"] > 5
