"""Integration test: the paper's Scenario 4.2 (random walk), end to end.

The RW implementation uses 16-bit short counters; once a vertex funnels
more than 32767 walkers over one edge the counter wraps negative. The
scenario: run with a message-value constraint ``msg >= 0``, see the M box
turn red, find the offending vertices in the Violations view, reproduce one
and diagnose the overflow.
"""

import pytest

from repro.algorithms import BuggyRandomWalk, RandomWalk
from repro.graft import DebugConfig, debug_run
from repro.pregel import Short16


class NonNegativeMessages(DebugConfig):
    """The scenario's message value constraint (paper Figure 2 lines 4-5)."""

    def message_value_constraint(self, message, source_id, target_id, superstep):
        return not (message < 0)


@pytest.fixture(scope="module")
def scenario_run(request):
    graph = request.getfixturevalue("funnel_graph")
    run = debug_run(
        lambda: BuggyRandomWalk(steps=8, initial_walkers=800),
        graph,
        NonNegativeMessages(),
        seed=1,
        num_workers=4,
    )
    assert run.ok
    return run


# Rebuild the funnel fixture at module scope.
@pytest.fixture(scope="module")
def funnel_graph():
    from repro.graph import GraphBuilder

    builder = GraphBuilder(directed=True)
    for leaf in range(1, 60):
        builder.edge(leaf, 0)
    builder.edge(0, 99)
    builder.edge(99, 0)
    return builder.build()


class TestScenario:
    def test_message_box_red_in_violating_superstep(self, scenario_run):
        violations_view = scenario_run.violations_view()
        red_supersteps = violations_view.supersteps_with_violations()
        assert red_supersteps
        node_link = scenario_run.node_link_view(superstep=red_supersteps[0])
        assert node_link.status_boxes()["M"] == "red"

    def test_violations_view_identifies_negative_senders(self, scenario_run):
        first = scenario_run.violations_view().first_violation()
        assert first.kind == "message"
        assert first.details["message"] < 0
        assert isinstance(first.details["message"], Short16)

    def test_reproduce_shows_overflow(self, scenario_run):
        first = scenario_run.violations_view().first_violation()
        report = scenario_run.reproduce(first.vertex_id, first.superstep)
        assert report.faithful
        # The replayed call re-sends the same wrapped counter.
        negative_sends = [v for _t, v in report.outcome.sent if v < 0]
        assert negative_sends
        # Diagnosis: the true walker count (parked + arrived) exceeds the
        # short range, and the sent message is its two's-complement wrap.
        record = scenario_run.captured(first.vertex_id, first.superstep)
        true_count = int(record.value_before) + sum(
            int(value) for _source, value in record.incoming
        )
        assert true_count > Short16.max_value()
        assert negative_sends[0] == Short16(true_count)

    def test_generated_test_reproduces_negative_send(self, scenario_run):
        first = scenario_run.violations_view().first_violation()
        code = scenario_run.generate_test_code(first.vertex_id, first.superstep)
        assert "Short16" in code
        namespace = {"__name__": "generated"}
        exec(compile(code, "<generated>", "exec"), namespace)
        for name, value in namespace.items():
            if name.startswith("test_"):
                value()

    def test_fixed_implementation_is_clean(self, funnel_graph):
        run = debug_run(
            lambda: RandomWalk(steps=8, initial_walkers=800),
            funnel_graph,
            NonNegativeMessages(),
            seed=1,
            num_workers=4,
        )
        assert run.ok
        assert run.violations() == []
        assert run.capture_count == 0

    def test_capture_counts_small_relative_to_compute(self, scenario_run):
        # Graft is a lightweight debugger: few captures, small traces.
        assert scenario_run.capture_count < 20
        assert scenario_run.trace_bytes < 100_000
