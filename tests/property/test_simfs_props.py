"""Property tests: the simulated file system behaves like a file system."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simfs import LineWriter, SimFileSystem

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=6
)
paths = st.builds(lambda parts: "/" + "/".join(parts), st.lists(names, min_size=1, max_size=3))
payloads = st.text(max_size=50)


class TestFileSemantics:
    @given(st.dictionaries(paths, payloads, min_size=1, max_size=6))
    @settings(max_examples=40)
    def test_write_then_read_everything(self, files):
        fs = SimFileSystem()
        written = {}
        for path, payload in files.items():
            try:
                fs.write_text(path, payload)
                written[path] = payload
            except Exception:
                # A path may collide with a directory implied by another
                # file (e.g. /a and /a/b); those writes legitimately fail.
                continue
        for path, payload in written.items():
            if fs.is_file(path):
                assert fs.read_text(path) in {payload, files[path]}

    @given(st.lists(payloads.filter(lambda s: "\n" not in s), max_size=20),
           st.integers(1, 7))
    @settings(max_examples=40)
    def test_line_writer_preserves_lines(self, lines, buffer_lines):
        fs = SimFileSystem()
        with LineWriter(fs, "/log", buffer_lines=buffer_lines) as writer:
            for line in lines:
                writer.write_line(line)
        # splitlines() on read must give back exactly what went in, except
        # that empty trailing entries survive because each line got its \n.
        assert list(fs.read_lines("/log")) == lines

    @given(st.lists(st.tuples(paths, payloads), min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_total_bytes_is_sum_of_files(self, writes):
        fs = SimFileSystem()
        for path, payload in writes:
            try:
                fs.write_text(path, payload)
            except Exception:
                continue
        total = sum(
            fs.stat(path).size
            for path in fs.glob_files("/")
        )
        assert fs.total_bytes() == total
