"""Property tests: capture decisions are exactly what the config asks for.

For arbitrary specified-id sets and random-capture counts, every produced
record's reasons must be justified by the config, and every justified
vertex must appear — no over- or under-capture.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import erdos_renyi
from repro.graft import DebugConfig, debug_run
from repro.graft.capture import REASON_NEIGHBOR, REASON_RANDOM, REASON_SPECIFIED
from repro.pregel import Computation

GRAPH = erdos_renyi(14, 0.25, seed=6)


class TwoStep(Computation):
    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(ctx.vertex_id)
        else:
            ctx.vote_to_halt()


class ParamConfig(DebugConfig):
    def __init__(self, ids, random_count, neighbors):
        self._ids = tuple(ids)
        self._random = random_count
        self._neighbors = neighbors

    def vertices_to_capture(self):
        return self._ids

    def num_random_vertices_to_capture(self):
        return self._random

    def capture_neighbors_of_vertices(self):
        return self._neighbors


class TestCaptureSelection:
    @given(
        st.sets(st.integers(0, 13), max_size=4),
        st.integers(0, 4),
        st.booleans(),
        st.integers(0, 50),
    )
    @settings(max_examples=20, deadline=None)
    def test_reasons_justified_and_complete(self, ids, random_count, neighbors, seed):
        config = ParamConfig(sorted(ids), random_count, neighbors)
        run = debug_run(TwoStep, GRAPH, config, seed=seed)

        random_ids = {
            r.vertex_id
            for r in run.reader.vertex_records
            if REASON_RANDOM in r.reasons
        }
        assert len(random_ids) == random_count

        selected = set(ids) | random_ids
        expected_neighbors = set()
        if neighbors:
            for vertex_id in selected:
                expected_neighbors.update(GRAPH.neighbors(vertex_id))
        expected = selected | expected_neighbors

        captured = set(run.reader.captured_vertex_ids())
        assert captured == expected

        for record in run.reader.vertex_records:
            for reason in record.reasons:
                if reason == REASON_SPECIFIED:
                    assert record.vertex_id in ids
                elif reason == REASON_RANDOM:
                    assert record.vertex_id in random_ids
                elif reason == REASON_NEIGHBOR:
                    assert record.vertex_id in expected_neighbors

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_every_capture_has_every_superstep(self, seed):
        config = ParamConfig((0, 1), 0, False)
        run = debug_run(TwoStep, GRAPH, config, seed=seed)
        for vertex_id in (0, 1):
            supersteps = [r.superstep for r in run.history(vertex_id)]
            assert supersteps == [0, 1]
