"""Property tests: DFS-to-DFS jobs equal in-memory runs, for any graph."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ConnectedComponents, PageRank
from repro.datasets import erdos_renyi
from repro.graph import write_adjacency_simfs
from repro.pregel import read_output, run_computation, run_job
from repro.simfs import SimFileSystem


class TestJobEquivalence:
    @given(st.integers(0, 60), st.integers(1, 5))
    @settings(max_examples=12, deadline=None)
    def test_components_job_equals_direct_run(self, graph_seed, workers):
        graph = erdos_renyi(10, 0.3, seed=graph_seed, directed=False)
        direct = run_computation(ConnectedComponents, graph, num_workers=workers)

        fs = SimFileSystem()
        write_adjacency_simfs(graph, fs, "/in.adj")
        job = run_job(
            fs, "/in.adj", "/out", ConnectedComponents, directed=False,
            num_workers=workers,
        )
        assert read_output(fs, "/out") == direct.vertex_values
        assert job.result.num_supersteps == direct.num_supersteps

    @given(st.integers(0, 60))
    @settings(max_examples=8, deadline=None)
    def test_float_values_roundtrip_exactly(self, graph_seed):
        graph = erdos_renyi(8, 0.4, seed=graph_seed)
        direct = run_computation(lambda: PageRank(iterations=5), graph)

        fs = SimFileSystem()
        write_adjacency_simfs(graph, fs, "/in.adj")
        run_job(fs, "/in.adj", "/out", lambda: PageRank(iterations=5))
        # Text roundtrip must not perturb floats (shortest-repr JSON).
        assert read_output(fs, "/out") == direct.vertex_values
