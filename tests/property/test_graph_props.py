"""Property tests over graph structures, I/O, and transforms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    parse_adjacency_text,
    render_adjacency_text,
    subgraph,
    to_undirected,
)
from repro.graph.stats import compute_stats


@st.composite
def graphs(draw, max_vertices=8):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    graph = Graph()
    values = draw(
        st.lists(
            st.one_of(st.none(), st.integers(-9, 9), st.text(max_size=4)),
            min_size=n,
            max_size=n,
        )
    )
    for vertex, value in enumerate(values):
        graph.add_vertex(vertex, value)
    edge_count = draw(st.integers(min_value=0, max_value=n * 2))
    for _ in range(edge_count):
        source = draw(st.integers(0, n - 1))
        target = draw(st.integers(0, n - 1))
        weight = draw(st.one_of(st.none(), st.floats(-10, 10)))
        graph.add_edge(source, target, weight)
    return graph


class TestIoProperties:
    @given(graphs())
    @settings(max_examples=60)
    def test_adjacency_text_roundtrip(self, graph):
        assert parse_adjacency_text(render_adjacency_text(graph)) == graph


class TestTransformProperties:
    @given(graphs())
    @settings(max_examples=60)
    def test_to_undirected_is_symmetric(self, graph):
        undirected = to_undirected(graph)
        for source, target, _value in undirected.edges():
            assert undirected.has_edge(target, source)

    @given(graphs())
    @settings(max_examples=40)
    def test_to_undirected_idempotent_on_structure(self, graph):
        once = to_undirected(graph)
        twice = to_undirected(once)
        assert set(
            (s, t) for s, t, _v in once.edges()
        ) == set((s, t) for s, t, _v in twice.edges())

    @given(graphs(), st.integers(0, 7))
    @settings(max_examples=60)
    def test_subgraph_is_induced(self, graph, cutoff):
        keep = [v for v in graph.vertex_ids() if v <= cutoff]
        sub = subgraph(graph, keep)
        assert set(sub.vertex_ids()) == set(keep)
        for source, target, value in sub.edges():
            assert graph.edge_value(source, target) == value
        for source, target, _value in graph.edges():
            if source in set(keep) and target in set(keep):
                assert sub.has_edge(source, target)


class TestStatsProperties:
    @given(graphs())
    @settings(max_examples=60)
    def test_degree_sum_equals_edge_count(self, graph):
        stats = compute_stats(graph)
        assert (
            sum(graph.out_degree(v) for v in graph.vertex_ids())
            == stats.num_directed_edges
        )

    @given(graphs())
    @settings(max_examples=60)
    def test_undirected_pairs_at_most_directed_edges(self, graph):
        stats = compute_stats(graph)
        assert stats.num_undirected_edges <= max(stats.num_directed_edges, 0)
        # And at least half (each pair collapses at most two directed edges).
        assert stats.num_undirected_edges * 2 >= stats.num_directed_edges

    @given(graphs())
    @settings(max_examples=40)
    def test_copy_equality(self, graph):
        assert graph.copy() == graph
