"""Property tests: Graft observes, never perturbs.

Whatever the DebugConfig, a debugged run must produce exactly the same
vertex values, superstep count, and halt reason as the uninstrumented
engine on the same seed — the debugger's Heisenberg-freedom, which the
paper's overhead experiment silently assumes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ConnectedComponents, GCMaster, GraphColoring, RandomWalk
from repro.datasets import erdos_renyi
from repro.graft import CaptureAllActiveConfig, DebugConfig, debug_run
from repro.pregel import run_computation


class EverythingConfig(DebugConfig):
    """All five categories at once, with aggressive constraints."""

    def vertices_to_capture(self):
        return (0, 1, 2)

    def num_random_vertices_to_capture(self):
        return 3

    def capture_neighbors_of_vertices(self):
        return True

    def vertex_value_constraint(self, value, vertex_id, superstep):
        return not (isinstance(value, int) and value % 3 == 0)

    def message_value_constraint(self, message, source_id, target_id, superstep):
        return not (isinstance(message, int) and message % 2 == 0)


CONFIG_FACTORIES = [DebugConfig, CaptureAllActiveConfig, EverythingConfig]


class TestNonInterference:
    @given(
        st.integers(0, 40),
        st.integers(0, 40),
        st.sampled_from(CONFIG_FACTORIES),
    )
    @settings(max_examples=15, deadline=None)
    def test_components_unperturbed(self, graph_seed, run_seed, config_factory):
        graph = erdos_renyi(10, 0.3, seed=graph_seed, directed=False)
        plain = run_computation(ConnectedComponents, graph, seed=run_seed)
        debugged = debug_run(ConnectedComponents, graph, config_factory(),
                             seed=run_seed)
        assert debugged.ok
        assert debugged.result.vertex_values == plain.vertex_values
        assert debugged.result.num_supersteps == plain.num_supersteps
        assert debugged.result.halt_reason == plain.halt_reason

    @given(st.integers(0, 40), st.sampled_from(CONFIG_FACTORIES))
    @settings(max_examples=10, deadline=None)
    def test_randomized_run_unperturbed(self, run_seed, config_factory):
        # The RNG is derived from (seed, vertex, superstep) — never from
        # whether anyone is watching.
        graph = erdos_renyi(8, 0.35, seed=3)
        plain = run_computation(lambda: RandomWalk(4, 11), graph, seed=run_seed)
        debugged = debug_run(lambda: RandomWalk(4, 11), graph, config_factory(),
                             seed=run_seed)
        assert debugged.result.vertex_values == plain.vertex_values

    @given(st.integers(0, 20))
    @settings(max_examples=6, deadline=None)
    def test_multiphase_run_unperturbed(self, run_seed):
        graph = erdos_renyi(8, 0.3, seed=5, directed=False)
        plain = run_computation(
            GraphColoring, graph, master=GCMaster(), seed=run_seed,
            max_supersteps=200,
        )
        debugged = debug_run(
            GraphColoring, graph, CaptureAllActiveConfig(),
            master=GCMaster(), seed=run_seed, max_supersteps=200,
        )
        assert debugged.result.vertex_values == plain.vertex_values
        assert debugged.result.aggregator_values == plain.aggregator_values
