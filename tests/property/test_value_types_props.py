"""Property tests: fixed-width integers behave exactly like Java's."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.serialization import decode_value, encode_value
from repro.pregel import Int32, Short16

ints = st.integers(min_value=-(2**20), max_value=2**20)
shorts = st.integers(min_value=-(2**15), max_value=2**15 - 1)


def java_short(value):
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


class TestShort16Properties:
    @given(ints)
    @settings(max_examples=100)
    def test_construction_matches_java_semantics(self, value):
        assert Short16(value).value == java_short(value)

    @given(shorts, shorts)
    @settings(max_examples=100)
    def test_addition_matches_java(self, a, b):
        assert (Short16(a) + Short16(b)).value == java_short(a + b)

    @given(shorts, shorts)
    @settings(max_examples=100)
    def test_multiplication_matches_java(self, a, b):
        assert (Short16(a) * Short16(b)).value == java_short(a * b)

    @given(shorts, shorts)
    @settings(max_examples=60)
    def test_addition_commutative(self, a, b):
        assert Short16(a) + Short16(b) == Short16(b) + Short16(a)

    @given(shorts, shorts, shorts)
    @settings(max_examples=60)
    def test_addition_associative(self, a, b, c):
        left = (Short16(a) + Short16(b)) + Short16(c)
        right = Short16(a) + (Short16(b) + Short16(c))
        assert left == right

    @given(shorts)
    @settings(max_examples=60)
    def test_negation_involution(self, a):
        assert (-(-Short16(a))) == Short16(a)

    @given(shorts)
    @settings(max_examples=60)
    def test_codec_roundtrip(self, a):
        assert decode_value(encode_value(Short16(a))) == Short16(a)

    @given(shorts, shorts)
    @settings(max_examples=60)
    def test_ordering_consistent_with_values(self, a, b):
        assert (Short16(a) < Short16(b)) == (a < b)

    @given(shorts)
    @settings(max_examples=60)
    def test_int32_widens_short_losslessly(self, a):
        assert Int32(Short16(a)).value == a
