"""Property tests: the trace codec round-trips its whole value domain."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import stable_hash
from repro.common.serialization import default_codec

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)


def containers(children):
    return st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.dictionaries(
            st.integers(min_value=-100, max_value=100), children, max_size=4
        ),
        st.frozensets(
            st.integers(min_value=-100, max_value=100) | st.text(max_size=5),
            max_size=4,
        ),
    )


values = st.recursive(scalars, containers, max_leaves=12)


class TestCodecProperties:
    @given(values)
    @settings(max_examples=80)
    def test_roundtrip_identity(self, value):
        assert default_codec.loads(default_codec.dumps(value)) == value

    @given(values)
    @settings(max_examples=40)
    def test_dumps_deterministic(self, value):
        assert default_codec.dumps(value) == default_codec.dumps(value)

    @given(values)
    @settings(max_examples=40)
    def test_single_line_output(self, value):
        assert "\n" not in default_codec.dumps(value)


hashables = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.floats(allow_nan=False),
        st.text(max_size=10),
        st.binary(max_size=10),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4), st.tuples(children, children)
    ),
    max_leaves=8,
)


class TestStableHashProperties:
    @given(hashables)
    @settings(max_examples=60)
    def test_deterministic(self, value):
        assert stable_hash(value) == stable_hash(value)

    @given(hashables)
    @settings(max_examples=60)
    def test_in_64_bit_range(self, value):
        assert 0 <= stable_hash(value) < 2**64

    @given(st.integers(), st.integers())
    @settings(max_examples=60)
    def test_distinct_ints_rarely_collide(self, a, b):
        if a != b:
            assert stable_hash(a) != stable_hash(b)
