"""Property tests for Graft's core guarantee: captured contexts replay
exactly, across algorithms, graphs, seeds, and worker counts.

This is the invariant behind the paper's Reproduce step — the generated
test must execute "exactly those lines of vertex.compute() that executed
for a specific vertex and superstep". Here we assert the stronger,
checkable form: replaying from the trace reproduces the identical outgoing
messages, post-value, and halt decision for every captured record.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    ConnectedComponents,
    GCMaster,
    GraphColoring,
    RandomWalk,
)
from repro.datasets import erdos_renyi
from repro.graft import CaptureAllActiveConfig, debug_run, verify_run_fidelity


class TestReplayFidelity:
    @given(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=10, deadline=None)
    def test_connected_components_fidelity(self, graph_seed, run_seed, workers):
        graph = erdos_renyi(10, 0.25, seed=graph_seed, directed=False)
        run = debug_run(
            ConnectedComponents,
            graph,
            CaptureAllActiveConfig(),
            seed=run_seed,
            num_workers=workers,
        )
        report = verify_run_fidelity(run)
        assert report.ok, report.summary()

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=8, deadline=None)
    def test_random_walk_fidelity(self, run_seed):
        # The hard case: the algorithm is randomized, so fidelity proves
        # the RNG derivation is fully part of the captured context.
        graph = erdos_renyi(8, 0.35, seed=4)
        run = debug_run(
            lambda: RandomWalk(4, 12),
            graph,
            CaptureAllActiveConfig(),
            seed=run_seed,
            num_workers=3,
        )
        report = verify_run_fidelity(run)
        assert report.ok, report.summary()

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=6, deadline=None)
    def test_graph_coloring_fidelity(self, run_seed):
        # Multi-phase with aggregators: fidelity proves aggregator snapshots
        # are captured and replayed correctly.
        graph = erdos_renyi(8, 0.3, seed=2, directed=False)
        run = debug_run(
            GraphColoring,
            graph,
            CaptureAllActiveConfig(),
            master=GCMaster(),
            seed=run_seed,
            num_workers=3,
            max_supersteps=200,
        )
        assert run.ok
        report = verify_run_fidelity(run)
        assert report.ok, report.summary()
