"""Property-style robustness sweep for graft-lint's dataflow pack.

Every vertex program the repository ships — the algorithm library, the
example scripts, and every inline computation embedded in the test suite
itself — must lint without any rule raising, with or without the dataflow
pack. The test corpus is adversarial by construction (deliberately buggy
programs, odd control flow, exotic idioms), which makes it a good free
fuzz corpus for the CFG builder and the interval solver.
"""

import ast
import glob
import os

import pytest

from repro.analysis import analyze_module_source, contexts_from_module_source

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


def _python_files():
    patterns = [
        os.path.join(REPO_ROOT, "src", "repro", "**", "*.py"),
        os.path.join(REPO_ROOT, "examples", "*.py"),
        os.path.join(REPO_ROOT, "tests", "**", "*.py"),
        os.path.join(REPO_ROOT, "scripts", "*.py"),
    ]
    files = []
    for pattern in patterns:
        files.extend(glob.glob(pattern, recursive=True))
    return sorted(set(files))


def _corpus():
    """(relpath, source) for every parseable repo file defining a class."""
    entries = []
    for path in _python_files():
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        if any(isinstance(node, ast.ClassDef) for node in ast.walk(tree)):
            entries.append((os.path.relpath(path, REPO_ROOT), source))
    return entries

CORPUS = _corpus()


def test_corpus_is_nontrivial():
    assert len(CORPUS) > 20


@pytest.mark.parametrize(
    "relpath,source", CORPUS, ids=[rel for rel, _ in CORPUS]
)
def test_no_rule_raises_with_dataflow(relpath, source):
    reports = analyze_module_source(source, relpath, dataflow=True)
    for report in reports:
        for finding in report.findings:
            assert finding.rule_id.startswith("GL")
            assert finding.severity in ("error", "warning", "info")


@pytest.mark.parametrize(
    "relpath,source", CORPUS, ids=[rel for rel, _ in CORPUS]
)
def test_dataflow_never_fails_on_corpus_methods(relpath, source):
    """Every corpus method gets a CFG; no pass crashes mid-fixpoint."""
    for context in contexts_from_module_source(source, relpath):
        for scope in context.iter_scopes(include_init=True):
            context.dataflow(scope)
        assert context.dataflow_errors == {}, (
            context.class_name,
            context.dataflow_errors,
        )


@pytest.mark.parametrize(
    "relpath,source", CORPUS, ids=[rel for rel, _ in CORPUS]
)
def test_interproc_and_protocol_never_fail_on_corpus(relpath, source):
    """Call-graph summaries and the protocol table build for every corpus
    class — helpers included — without raising or recording dataflow
    errors, and both renderers produce text."""
    for context in contexts_from_module_source(source, relpath):
        interproc = context.interproc
        assert interproc is not None, context.class_name
        for key in interproc.edges():
            interproc.summary(key)
        interproc.recursion_sites()
        assert isinstance(interproc.explain(), str)
        protocol = context.protocol
        assert protocol is not None, context.class_name
        protocol.conflicts()
        protocol.phase_gaps()
        protocol.aggregator_hazards()
        assert isinstance(protocol.render(), str)
        assert context.dataflow_errors == {}, (
            context.class_name,
            context.dataflow_errors,
        )


def test_dataflow_and_pattern_rules_agree_on_shared_pack():
    """Disabling dataflow never introduces findings the full pack lacks,
    except the documented GL005/GL007/GL006 -> GL014/GL013/GL024
    upgrades."""
    upgrades = {"GL005": "GL014", "GL007": "GL013", "GL006": "GL024"}
    for relpath, source in CORPUS:
        full = {
            r.class_name: set(r.rule_ids())
            for r in analyze_module_source(source, relpath, dataflow=True)
        }
        pattern = {
            r.class_name: set(r.rule_ids())
            for r in analyze_module_source(source, relpath, dataflow=False)
        }
        for class_name, pattern_ids in pattern.items():
            full_ids = full.get(class_name, set())
            for rule_id in pattern_ids:
                assert (
                    rule_id in full_ids or upgrades.get(rule_id) in full_ids
                ), (relpath, class_name, rule_id, full_ids)
