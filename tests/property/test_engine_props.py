"""Property tests over the engine: determinism and placement invariance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ConnectedComponents, RandomWalk, total_walkers
from repro.datasets import erdos_renyi
from repro.pregel import run_computation


class TestDeterminism:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=4, max_value=16),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_walk_deterministic_per_seed(self, seed, size):
        graph = erdos_renyi(size, 0.3, seed=1)
        first = run_computation(lambda: RandomWalk(4, 10), graph, seed=seed)
        second = run_computation(lambda: RandomWalk(4, 10), graph, seed=seed)
        assert first.vertex_values == second.vertex_values

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_walker_conservation_any_graph(self, graph_seed):
        graph = erdos_renyi(12, 0.25, seed=graph_seed)
        result = run_computation(lambda: RandomWalk(5, 7), graph, seed=3)
        assert total_walkers(result.vertex_values) == 7 * 12


class TestPlacementInvariance:
    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=15, deadline=None)
    def test_components_independent_of_worker_count(self, graph_seed, workers):
        graph = erdos_renyi(14, 0.18, seed=graph_seed, directed=False)
        baseline = run_computation(ConnectedComponents, graph, num_workers=1)
        other = run_computation(ConnectedComponents, graph, num_workers=workers)
        assert baseline.vertex_values == other.vertex_values

    @given(st.integers(min_value=1, max_value=7))
    @settings(max_examples=10, deadline=None)
    def test_random_walk_independent_of_worker_count(self, workers):
        # Randomness is derived per (seed, vertex, superstep), never from
        # worker identity — so placement cannot change the walk.
        graph = erdos_renyi(12, 0.3, seed=5)
        baseline = run_computation(lambda: RandomWalk(4, 9), graph, seed=2,
                                   num_workers=1)
        other = run_computation(lambda: RandomWalk(4, 9), graph, seed=2,
                                num_workers=workers)
        assert baseline.vertex_values == other.vertex_values
