"""Property tests: aggregator merges are order-insensitive folds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pregel import (
    AndAggregator,
    MaxAggregator,
    MinAggregator,
    OrAggregator,
    SumAggregator,
)


def fold(aggregator, contributions):
    value = aggregator.initial_value()
    for contribution in contributions:
        value = aggregator.merge(value, contribution)
    return value


numbers = st.lists(st.integers(-1000, 1000), min_size=1, max_size=20)
booleans = st.lists(st.booleans(), min_size=1, max_size=20)


class TestOrderInsensitivity:
    @given(numbers, st.randoms())
    @settings(max_examples=60)
    def test_sum_order_free(self, contributions, rng):
        shuffled = list(contributions)
        rng.shuffle(shuffled)
        assert fold(SumAggregator(), contributions) == fold(
            SumAggregator(), shuffled
        )

    @given(numbers, st.randoms())
    @settings(max_examples=60)
    def test_min_order_free(self, contributions, rng):
        shuffled = list(contributions)
        rng.shuffle(shuffled)
        assert fold(MinAggregator(), contributions) == fold(
            MinAggregator(), shuffled
        )

    @given(numbers, st.randoms())
    @settings(max_examples=60)
    def test_max_order_free(self, contributions, rng):
        shuffled = list(contributions)
        rng.shuffle(shuffled)
        assert fold(MaxAggregator(), contributions) == fold(
            MaxAggregator(), shuffled
        )

    @given(booleans, st.randoms())
    @settings(max_examples=40)
    def test_and_or_order_free(self, contributions, rng):
        shuffled = list(contributions)
        rng.shuffle(shuffled)
        assert fold(AndAggregator(), contributions) == fold(
            AndAggregator(), shuffled
        )
        assert fold(OrAggregator(), contributions) == fold(
            OrAggregator(), shuffled
        )


class TestCorrectness:
    @given(numbers)
    @settings(max_examples=60)
    def test_sum_equals_builtin(self, contributions):
        assert fold(SumAggregator(), contributions) == sum(contributions)

    @given(numbers)
    @settings(max_examples=60)
    def test_min_max_equal_builtins(self, contributions):
        assert fold(MinAggregator(), contributions) == min(contributions)
        assert fold(MaxAggregator(), contributions) == max(contributions)

    @given(booleans)
    @settings(max_examples=40)
    def test_and_or_equal_builtins(self, contributions):
        assert fold(AndAggregator(), contributions) == all(contributions)
        assert fold(OrAggregator(), contributions) == any(contributions)
