"""Property tests: failure recovery is invisible in the final result.

For any checkpoint interval and any injected failure point, a recovered
run must produce exactly the result of an undisturbed run — Pregel's
fault-tolerance contract, which holds here because all randomness derives
from (seed, vertex, superstep).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import PageRank, RandomWalk
from repro.datasets import erdos_renyi
from repro.pregel import CheckpointConfig, run_computation
from repro.simfs import SimFileSystem


class TestRecoveryTransparency:
    @given(
        st.integers(min_value=1, max_value=6),   # checkpoint interval
        st.integers(min_value=0, max_value=8),   # failure superstep
        st.integers(min_value=0, max_value=3),   # failed worker
    )
    @settings(max_examples=12, deadline=None)
    def test_pagerank_recovery_identical(self, interval, fail_at, worker):
        graph = erdos_renyi(10, 0.3, seed=4)
        baseline = run_computation(lambda: PageRank(iterations=8), graph, seed=2)
        recovered = run_computation(
            lambda: PageRank(iterations=8),
            graph,
            seed=2,
            checkpoint_config=CheckpointConfig(
                SimFileSystem(), every_n_supersteps=interval
            ),
            failure_injections=[(fail_at, worker)],
        )
        assert recovered.recoveries == 1
        assert recovered.vertex_values == baseline.vertex_values
        assert recovered.num_supersteps == baseline.num_supersteps

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=8, deadline=None)
    def test_randomized_algorithm_recovery_identical(self, interval, fail_at):
        graph = erdos_renyi(8, 0.35, seed=1)
        baseline = run_computation(lambda: RandomWalk(5, 9), graph, seed=7)
        recovered = run_computation(
            lambda: RandomWalk(5, 9),
            graph,
            seed=7,
            checkpoint_config=CheckpointConfig(
                SimFileSystem(), every_n_supersteps=interval
            ),
            failure_injections=[(fail_at, 0)],
        )
        assert recovered.vertex_values == baseline.vertex_values
