"""Unit tests for repro.common.hashing."""

import pytest

from repro.common.errors import SerializationError
from repro.common.hashing import stable_hash, stable_hash_bytes


class TestStableHash:
    def test_deterministic_for_equal_inputs(self):
        assert stable_hash("v", 42) == stable_hash("v", 42)

    def test_differs_for_different_ints(self):
        assert stable_hash("v", 42) != stable_hash("v", 43)

    def test_type_tagging_distinguishes_int_from_str(self):
        assert stable_hash(1) != stable_hash("1")

    def test_type_tagging_distinguishes_int_from_float(self):
        assert stable_hash(1) != stable_hash(1.0)

    def test_bool_is_not_int(self):
        assert stable_hash(True) != stable_hash(1)

    def test_none_hashes(self):
        assert stable_hash(None) == stable_hash(None)

    def test_tuple_vs_list_distinguished(self):
        assert stable_hash((1, 2)) != stable_hash([1, 2])

    def test_nesting_boundaries_unambiguous(self):
        assert stable_hash([1], [2]) != stable_hash([1, 2], [])
        assert stable_hash(["ab"]) != stable_hash(["a", "b"])

    def test_string_content_matters(self):
        assert stable_hash("abc") != stable_hash("abd")

    def test_bytes_supported(self):
        assert stable_hash(b"xy") == stable_hash(b"xy")
        assert stable_hash(b"xy") != stable_hash("xy")

    def test_negative_and_large_ints(self):
        assert stable_hash(-5) != stable_hash(5)
        big = 2**80
        assert stable_hash(big) == stable_hash(big)

    def test_result_is_nonnegative_64bit(self):
        for value in ("a", 0, -1, 3.14, (1, "x")):
            h = stable_hash(value)
            assert 0 <= h < 2**64

    def test_unhashable_type_raises(self):
        with pytest.raises(SerializationError):
            stable_hash(object())

    def test_dict_not_supported(self):
        with pytest.raises(SerializationError):
            stable_hash({"a": 1})

    def test_known_stability_across_calls(self):
        # The same value must hash identically within and across processes;
        # spot-check the in-process half here.
        values = [stable_hash("partition", i) for i in range(100)]
        assert values == [stable_hash("partition", i) for i in range(100)]

    def test_bytes_digest_length(self):
        assert len(stable_hash_bytes("x")) == 8

    def test_float_special_ordering(self):
        assert stable_hash(0.5) != stable_hash(-0.5)
