"""Unit tests for repro.common.serialization."""

import dataclasses
import math

import pytest

from repro.common.errors import SerializationError
from repro.common.serialization import (
    ValueCodec,
    decode_value,
    default_codec,
    encode_value,
    register_value_type,
)


@register_value_type
@dataclasses.dataclass(frozen=True)
class Point:
    x: int
    y: int


class Custom:
    """Non-dataclass type with explicit payload hooks."""

    def __init__(self, tag):
        self.tag = tag

    def to_payload(self):
        return {"tag": self.tag}

    @classmethod
    def from_payload(cls, payload):
        return cls(payload["tag"])

    def __eq__(self, other):
        return isinstance(other, Custom) and other.tag == self.tag


register_value_type(Custom)


class TestScalars:
    @pytest.mark.parametrize(
        "value", [None, True, False, 0, -17, 2**70, "text", "unié", 3.25]
    )
    def test_roundtrip(self, value):
        codec = default_codec
        assert codec.loads(codec.dumps(value)) == value

    def test_nan_roundtrip(self):
        out = default_codec.loads(default_codec.dumps(float("nan")))
        assert math.isnan(out)

    def test_inf_roundtrip(self):
        assert default_codec.loads(default_codec.dumps(math.inf)) == math.inf
        assert default_codec.loads(default_codec.dumps(-math.inf)) == -math.inf

    def test_float_precision_exact(self):
        value = 0.1 + 0.2
        assert default_codec.loads(default_codec.dumps(value)) == value


class TestContainers:
    def test_list_roundtrip(self):
        value = [1, "a", None, [2.5, False]]
        assert decode_value(encode_value(value)) == value

    def test_tuple_stays_tuple(self):
        value = (1, (2, 3))
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert isinstance(decoded, tuple)
        assert isinstance(decoded[1], tuple)

    def test_set_and_frozenset(self):
        value = {1, 2, 3}
        decoded = decode_value(encode_value(value))
        assert decoded == value and isinstance(decoded, set)
        frozen = frozenset("ab")
        decoded_frozen = decode_value(encode_value(frozen))
        assert decoded_frozen == frozen and isinstance(decoded_frozen, frozenset)

    def test_str_key_dict_plain(self):
        value = {"a": 1, "b": [2]}
        assert decode_value(encode_value(value)) == value

    def test_non_str_key_dict_enveloped(self):
        value = {1: "a", (2, 3): "b"}
        assert decode_value(encode_value(value)) == value

    def test_dict_with_reserved_key_enveloped(self):
        value = {"__t__": "sneaky"}
        assert decode_value(encode_value(value)) == value

    def test_bytes_roundtrip(self):
        assert decode_value(encode_value(b"\x00\xff")) == b"\x00\xff"

    def test_deep_nesting(self):
        value = {"k": [(1, {2: {"x", "y"}}), None]}
        assert decode_value(encode_value(value)) == value


class TestRegisteredTypes:
    def test_dataclass_roundtrip(self):
        assert decode_value(encode_value(Point(1, -2))) == Point(1, -2)

    def test_custom_payload_roundtrip(self):
        assert decode_value(encode_value(Custom("t"))) == Custom("t")

    def test_nested_registered_values(self):
        value = {"pts": [Point(0, 0), Point(9, 9)]}
        assert decode_value(encode_value(value)) == value

    def test_unregistered_type_raises(self):
        class Stranger:
            pass

        with pytest.raises(SerializationError, match="unregistered"):
            encode_value(Stranger())

    def test_reregistration_idempotent(self):
        register_value_type(Point)
        assert decode_value(encode_value(Point(5, 5))) == Point(5, 5)

    def test_conflicting_name_rejected(self):
        codec = ValueCodec()

        @dataclasses.dataclass
        class A:
            pass

        codec.register(A, name="clash")

        @dataclasses.dataclass
        class B:
            pass

        with pytest.raises(SerializationError, match="already registered"):
            codec.register(B, name="clash")

    def test_decoding_unknown_type_raises(self):
        codec = ValueCodec()
        with pytest.raises(SerializationError, match="unregistered"):
            codec.decode({"__t__": "obj", "type": "Ghost", "fields": {}})

    def test_register_requires_hooks_or_dataclass(self):
        codec = ValueCodec()
        with pytest.raises(SerializationError, match="dataclass"):
            codec.register(object)


class TestWireFormat:
    def test_dumps_is_single_line(self):
        line = default_codec.dumps({"a": [1, 2], "b": Point(1, 2)})
        assert "\n" not in line

    def test_dumps_deterministic(self):
        value = {"b": 1, "a": 2}
        assert default_codec.dumps(value) == default_codec.dumps(value)

    def test_malformed_line_raises(self):
        with pytest.raises(SerializationError, match="malformed"):
            default_codec.loads("{not json")

    def test_unknown_tag_raises(self):
        with pytest.raises(SerializationError, match="unknown type tag"):
            default_codec.decode({"__t__": "warp"})
