"""Unit tests for the exception hierarchy."""

import pytest

from repro.common.errors import (
    AggregatorError,
    CaptureLimitExceeded,
    ComputeError,
    EdgeNotFoundError,
    GraftError,
    GraphError,
    MasterComputeError,
    PregelError,
    ReplayMismatchError,
    ReproError,
    SerializationError,
    SimFsError,
    SimFsFileNotFound,
    TraceError,
    VertexNotFoundError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass, base",
        [
            (GraphError, ReproError),
            (PregelError, ReproError),
            (GraftError, ReproError),
            (SimFsError, ReproError),
            (SerializationError, ReproError),
            (VertexNotFoundError, GraphError),
            (EdgeNotFoundError, GraphError),
            (ComputeError, PregelError),
            (MasterComputeError, PregelError),
            (AggregatorError, PregelError),
            (CaptureLimitExceeded, GraftError),
            (TraceError, GraftError),
            (ReplayMismatchError, GraftError),
            (SimFsFileNotFound, SimFsError),
        ],
    )
    def test_subclass_relationships(self, subclass, base):
        assert issubclass(subclass, base)
        assert issubclass(subclass, ReproError)


class TestPayloads:
    def test_vertex_not_found_carries_id(self):
        error = VertexNotFoundError(("v", 7))
        assert error.vertex_id == ("v", 7)
        assert "('v', 7)" in str(error)

    def test_edge_not_found_carries_endpoints(self):
        error = EdgeNotFoundError(1, 2)
        assert (error.source, error.target) == (1, 2)

    def test_compute_error_carries_location_and_cause(self):
        original = ValueError("inner")
        error = ComputeError("v9", 12, original)
        assert error.vertex_id == "v9"
        assert error.superstep == 12
        assert error.original is original
        assert "superstep 12" in str(error)

    def test_master_error_carries_superstep(self):
        error = MasterComputeError(4, KeyError("phase"))
        assert error.superstep == 4

    def test_capture_limit_carries_limit(self):
        error = CaptureLimitExceeded(500)
        assert error.limit == 500
        assert "500" in str(error)

    def test_replay_mismatch_fields(self):
        error = ReplayMismatchError("v", 3, "sent", [1], [2])
        assert error.field == "sent"
        assert error.recorded == [1]
        assert error.replayed == [2]

    def test_one_base_catches_everything(self):
        for error in (
            VertexNotFoundError(1),
            ComputeError(1, 0, ValueError()),
            CaptureLimitExceeded(1),
            SimFsFileNotFound("/x"),
            SerializationError("bad"),
        ):
            with pytest.raises(ReproError):
                raise error
