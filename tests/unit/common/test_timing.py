"""Unit tests for repro.common.timing."""

import time

from repro.common.timing import Timer, format_duration


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_start_stop(self):
        timer = Timer().start()
        elapsed = timer.stop()
        assert elapsed >= 0.0
        assert timer.elapsed == elapsed

    def test_restart_resets(self):
        timer = Timer().start()
        time.sleep(0.005)
        first = timer.stop()
        timer.start()
        second = timer.stop()
        assert second < first


class TestFormatDuration:
    def test_microseconds(self):
        assert format_duration(2e-6) == "2.0us"

    def test_milliseconds(self):
        assert format_duration(0.0123) == "12.3ms"

    def test_seconds(self):
        assert format_duration(1.5) == "1.50s"

    def test_minutes(self):
        assert format_duration(75.0) == "1m15.0s"
