"""Unit tests for repro.common.rng."""

from repro.common.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_same_path_same_seed(self):
        assert derive_seed(7, "v", 1) == derive_seed(7, "v", 1)

    def test_different_root_different_seed(self):
        assert derive_seed(7, "v", 1) != derive_seed(8, "v", 1)

    def test_different_component_different_seed(self):
        assert derive_seed(7, "v", 1) != derive_seed(7, "v", 2)

    def test_component_order_matters(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")


class TestDeriveRng:
    def test_reproducible_stream(self):
        first = [derive_rng(3, "x", 0).random() for _ in range(5)]
        second = [derive_rng(3, "x", 0).random() for _ in range(5)]
        assert first == second

    def test_independent_streams_differ(self):
        a = derive_rng(3, "vertex", 1, 0)
        b = derive_rng(3, "vertex", 2, 0)
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_string_vertex_ids_supported(self):
        assert derive_rng(0, "vertex", "v-17", 3).random() == (
            derive_rng(0, "vertex", "v-17", 3).random()
        )

    def test_sample_reproducible(self):
        population = list(range(100))
        first = derive_rng(1, "s").sample(population, 10)
        second = derive_rng(1, "s").sample(population, 10)
        assert first == second
