"""Unit tests for the Figure 7/8 overhead grid runner."""

from repro.bench import (
    ExperimentSpec,
    max_overhead_by_config,
    run_overhead_grid,
)
from repro.bench.overhead import NO_DEBUG, OverheadCell
from repro.graft import CaptureAllActiveConfig, DebugConfig
from repro.graph import GraphBuilder
from repro.pregel import Computation


class Tick(Computation):
    def compute(self, ctx, messages):
        if ctx.superstep >= 2:
            ctx.vote_to_halt()
            return
        ctx.send_message_to_all_neighbors(1)


def spec():
    graph = GraphBuilder(directed=False).cycle(*range(8)).build()
    return ExperimentSpec("Tick", "ring", graph, Tick)


class TestRunOverheadGrid:
    def test_grid_shape(self):
        cells = run_overhead_grid(
            [spec()],
            {"all": CaptureAllActiveConfig, "none": DebugConfig},
            repetitions=1,
            warmup=0,
        )
        assert [c.config_name for c in cells] == [NO_DEBUG, "all", "none"]

    def test_baseline_normalized_to_one(self):
        cells = run_overhead_grid([spec()], {}, repetitions=1, warmup=0)
        assert cells[0].normalized == 1.0
        assert cells[0].captures == 0

    def test_capture_counts_attached(self):
        cells = run_overhead_grid(
            [spec()], {"all": CaptureAllActiveConfig}, repetitions=1, warmup=0
        )
        all_cell = cells[1]
        assert all_cell.captures == 8 * 3
        assert all_cell.trace_bytes > 0

    def test_overhead_percent(self):
        cell = OverheadCell("a", "d", "c", 0.2, 0.0, 1.25, 1, 1)
        assert cell.overhead_percent == 25.0

    def test_engine_kwargs_factory_called_per_run(self):
        calls = []

        def kwargs_factory():
            calls.append(1)
            return {"num_workers": 2}

        grid_spec = ExperimentSpec(
            "Tick", "ring", spec().graph, Tick, engine_kwargs_factory=kwargs_factory
        )
        run_overhead_grid([grid_spec], {"none": DebugConfig}, repetitions=2, warmup=0)
        assert len(calls) == 4  # 2 baseline runs + 2 debug runs


class TestHeadlines:
    def test_max_overhead_excludes_baseline(self):
        cells = [
            OverheadCell("a", "d", NO_DEBUG, 0.1, 0, 1.0, 0, 0),
            OverheadCell("a", "d", "DC-sp", 0.1, 0, 1.10, 5, 1),
            OverheadCell("a", "e", "DC-sp", 0.1, 0, 1.30, 5, 1),
        ]
        import pytest

        worst = max_overhead_by_config(cells)
        assert set(worst) == {"DC-sp"}
        assert worst["DC-sp"] == pytest.approx(0.30)
