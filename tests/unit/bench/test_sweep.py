"""Unit tests for the sweep utilities."""

import pytest

from repro.bench import SweepStats, repeat_timed


class TestSweepStats:
    def test_from_samples(self):
        stats = SweepStats.from_samples([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.repetitions == 3
        assert stats.std == pytest.approx(0.8164965, abs=1e-5)

    def test_single_sample(self):
        stats = SweepStats.from_samples([0.5])
        assert stats.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SweepStats.from_samples([])

    def test_summary_format(self):
        assert "±" in SweepStats.from_samples([0.001, 0.002]).summary()


class TestRepeatTimed:
    def test_runs_warmup_plus_repetitions(self):
        calls = []
        stats, result = repeat_timed(lambda: calls.append(1) or len(calls), 3, warmup=2)
        assert len(calls) == 5
        assert result == 5
        assert stats.repetitions == 3

    def test_zero_warmup(self):
        calls = []
        repeat_timed(lambda: calls.append(1), repetitions=2, warmup=0)
        assert len(calls) == 2

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            repeat_timed(lambda: None, repetitions=0)

    def test_timing_positive(self):
        import time

        stats, _result = repeat_timed(lambda: time.sleep(0.002), repetitions=2)
        assert stats.mean >= 0.002
