"""Unit tests for benchmark rendering."""

from repro.bench import render_headlines, render_overhead_bars, render_table
from repro.bench.overhead import NO_DEBUG, OverheadCell


class TestRenderTable:
    def test_columns_aligned(self):
        text = render_table(["name", "n"], [["x", 1], ["longer", 23]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_title_included(self):
        assert render_table(["a"], [["b"]], title="Table 1").startswith("Table 1")


class TestRenderBars:
    def _cells(self):
        return [
            OverheadCell("GC", "web", NO_DEBUG, 0.1, 0.001, 1.0, 0, 0),
            OverheadCell("GC", "web", "DC-sp", 0.11, 0.001, 1.1, 5, 100),
            OverheadCell("RW", "web", NO_DEBUG, 0.2, 0.001, 1.0, 0, 0),
            OverheadCell("RW", "web", "DC-full", 0.26, 0.002, 1.3, 24213, 900),
        ]

    def test_clusters_grouped(self):
        text = render_overhead_bars(self._cells())
        assert "GC-web" in text
        assert "RW-web" in text

    def test_capture_counts_on_debug_bars_only(self):
        text = render_overhead_bars(self._cells())
        assert "captures=24213" in text
        lines = [l for l in text.splitlines() if NO_DEBUG in l]
        assert all("captures=" not in l for l in lines)

    def test_bar_lengths_scale_with_normalized(self):
        text = render_overhead_bars(self._cells())
        sp = next(l for l in text.splitlines() if "DC-sp" in l)
        full = next(l for l in text.splitlines() if "DC-full" in l)
        assert full.count("#") > sp.count("#")

    def test_title(self):
        assert render_overhead_bars(self._cells(), title="Figure 7").startswith(
            "Figure 7"
        )


class TestHeadlines:
    def test_percent_rendering(self):
        text = render_headlines({"DC-sp": 0.16, "DC-full": 0.29})
        assert "DC-sp" in text
        assert "16.0%" in text
        assert "29.0%" in text
