"""CLI surface of the chaos subsystem, plus the trace-stats skip warning."""

import json

from repro.cli import main


def run_cli(*argv):
    lines = []
    status = main(list(argv), out=lines.append)
    return status, "\n".join(str(line) for line in lines)


class TestChaosPresets:
    def test_lists_every_shipped_plan(self):
        status, output = run_cli("chaos", "presets")
        assert status == 0
        for name in (
            "worker-crash", "torn-trace-tail", "stale-sidecar",
            "transient-io", "checkpoint-corruption", "slow-worker",
        ):
            assert name in output


class TestChaosRun:
    def test_preset_run_passes(self):
        status, output = run_cli(
            "chaos", "run", "--plan", "worker-crash",
            "--algorithm", "pagerank", "--dataset", "web-BS",
            "--vertices", "40", "--iterations", "8",
        )
        assert status == 0
        assert "OK" in output
        assert "== baseline" in output

    def test_json_format(self):
        status, output = run_cli(
            "chaos", "run", "--plan", "torn-trace-tail",
            "--algorithm", "pagerank", "--dataset", "web-BS",
            "--vertices", "40", "--iterations", "8", "--format", "json",
        )
        assert status == 0
        report = json.loads(output[output.index("{"):])
        assert report["ok"] is True
        assert report["injected_digest"] == report["baseline_digest"]

    def test_unknown_plan_exits_one(self):
        status, output = run_cli(
            "chaos", "run", "--plan", "no-such-plan",
            "--algorithm", "pagerank", "--dataset", "web-BS",
            "--vertices", "20",
        )
        assert status == 1
        assert "neither a preset plan" in output

    def test_plan_file(self, tmp_path):
        from repro.chaos import PRESET_PLANS

        path = tmp_path / "plan.json"
        path.write_text(
            PRESET_PLANS["worker-crash"].to_json(), encoding="utf-8"
        )
        status, output = run_cli(
            "chaos", "run", "--plan", str(path),
            "--algorithm", "pagerank", "--dataset", "web-BS",
            "--vertices", "40", "--iterations", "8",
        )
        assert status == 0
        assert "'worker-crash'" in output


class TestDebugChaos:
    def test_debug_with_chaos_preset(self):
        status, output = run_cli(
            "debug", "--algorithm", "pagerank", "--dataset", "web-BS",
            "--vertices", "40", "--iterations", "8", "--capture-random", "3",
            "--chaos", "worker-crash",
        )
        assert status == 0
        assert "chaos: injecting plan 'worker-crash'" in output
        assert "rollback" in output
        assert "chaos: superstep 3: worker_crash" in output

    def test_debug_with_bad_plan(self):
        status, output = run_cli(
            "debug", "--algorithm", "pagerank", "--dataset", "web-BS",
            "--vertices", "20", "--chaos", "no-such-plan",
        )
        assert status == 1
        assert "neither a preset plan" in output


class TestTraceStatsSkipsForeignFiles:
    def test_junk_trace_file_warned_not_fatal(self, tmp_path):
        export = tmp_path / "exported"
        status, _ = run_cli(
            "debug", "--algorithm", "pagerank", "--dataset", "web-BS",
            "--vertices", "30", "--iterations", "3", "--capture-random", "3",
            "--export-traces", str(export),
        )
        assert status == 0
        # Job ids are a process-wide counter, so discover the one this
        # export actually used.
        [job_dir] = (export / "graft").iterdir()
        (job_dir / "garbage.trace").write_bytes(b"\x00\xffnot a trace at all")
        # Plain text is sneakier: no v2 magic, so it reaches the v1 branch
        # and must fail record parsing rather than pass as an empty trace.
        (job_dir / "notes.trace").write_text("meeting notes\n", encoding="utf-8")

        status, output = run_cli(
            "trace", "stats", job_dir.name, "--dir", str(export),
        )
        assert status == 0
        assert "warning: skipping unreadable trace file" in output
        assert "garbage.trace" in output
        assert "notes.trace" in output
        # The real files still got their rows.
        assert "worker-0.trace" in output
        assert "TOTAL" in output
