"""Unit tests for fault plans and specs (repro.chaos.faults)."""

import pytest

from repro.chaos import (
    FAULT_KINDS,
    PRESET_PLANS,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    load_fault_plan,
    preset_names,
)


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike")

    def test_worker_kinds_need_worker_id(self):
        with pytest.raises(FaultPlanError, match="worker_id"):
            FaultSpec(kind="worker_crash", superstep=2)

    def test_step_crash_needs_after_calls(self):
        with pytest.raises(FaultPlanError, match="after_calls"):
            FaultSpec(kind="step_crash", superstep=2, worker_id=0)

    def test_slow_worker_needs_delay(self):
        with pytest.raises(FaultPlanError, match="delay_ms"):
            FaultSpec(kind="slow_worker", worker_id=0)

    def test_write_kinds_need_path_suffix(self):
        with pytest.raises(FaultPlanError, match="path_suffix"):
            FaultSpec(kind="torn_write", superstep=1, path_suffix="")

    def test_probability_bounds(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultSpec(kind="torn_write", superstep=1, probability=0.0)
        with pytest.raises(FaultPlanError, match="probability"):
            FaultSpec(kind="torn_write", superstep=1, probability=1.5)

    def test_times_bounds(self):
        with pytest.raises(FaultPlanError, match="times"):
            FaultSpec(kind="torn_write", superstep=1, times=0)
        # None means unbounded and is legal.
        FaultSpec(kind="transient_io", superstep=1, times=None)

    def test_negative_superstep_rejected(self):
        with pytest.raises(FaultPlanError, match="superstep"):
            FaultSpec(kind="worker_crash", superstep=-1, worker_id=0)

    def test_superstep_none_matches_everything(self):
        spec = FaultSpec(kind="slow_worker", worker_id=0, delay_ms=1.0)
        assert spec.matches_superstep(0)
        assert spec.matches_superstep(17)
        pinned = FaultSpec(kind="worker_crash", superstep=3, worker_id=0)
        assert pinned.matches_superstep(3)
        assert not pinned.matches_superstep(4)


class TestSerialization:
    def test_spec_round_trip(self):
        spec = FaultSpec(
            kind="step_crash", superstep=5, worker_id=1, after_calls=2,
            probability=0.5, times=3,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unbounded_times_survives_round_trip(self):
        spec = FaultSpec(kind="transient_io", superstep=2, times=None)
        data = spec.to_dict()
        assert data["times"] is None
        assert FaultSpec.from_dict(data) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault spec fields"):
            FaultSpec.from_dict({"kind": "worker_crash", "worker": 1})

    def test_plan_json_round_trip(self):
        for plan in PRESET_PLANS.values():
            assert FaultPlan.from_json(plan.to_json()) == plan

    def test_plan_needs_name(self):
        with pytest.raises(FaultPlanError, match="name"):
            FaultPlan(name="", faults=())

    def test_plan_faults_must_be_specs(self):
        with pytest.raises(FaultPlanError, match="FaultSpec"):
            FaultPlan(name="bad", faults=({"kind": "worker_crash"},))

    def test_plan_from_bad_json(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError, match="missing"):
            FaultPlan.from_json('{"faults": []}')


class TestPresetsAndLoading:
    def test_every_preset_has_faults_and_description(self):
        assert preset_names() == sorted(PRESET_PLANS)
        for plan in PRESET_PLANS.values():
            assert plan.faults
            assert plan.description
            for spec in plan.faults:
                assert spec.kind in FAULT_KINDS

    def test_presets_cover_every_fault_kind(self):
        kinds = {
            spec.kind
            for plan in PRESET_PLANS.values()
            for spec in plan.faults
        }
        assert kinds == set(FAULT_KINDS)

    def test_load_passthrough_and_preset(self):
        plan = PRESET_PLANS["worker-crash"]
        assert load_fault_plan(plan) is plan
        assert load_fault_plan("worker-crash") is plan

    def test_load_from_json_file(self, tmp_path):
        plan = PRESET_PLANS["torn-trace-tail"]
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        assert load_fault_plan(str(path)) == plan

    def test_load_unknown_token_lists_presets(self):
        with pytest.raises(FaultPlanError, match="worker-crash"):
            load_fault_plan("no-such-plan")
