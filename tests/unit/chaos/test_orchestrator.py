"""Unit tests for the chaos recovery-verification harness."""

from repro.algorithms import PageRank
from repro.chaos import FaultPlan, FaultSpec, run_chaos
from repro.datasets import premade_graph


def petersen():
    return premade_graph("petersen")


def factory():
    return PageRank(iterations=5)


class TestRunChaos:
    def test_empty_plan_passes_all_checks(self):
        report = run_chaos(
            factory, petersen(),
            FaultPlan(name="quiet", faults=()),
            seed=3, num_workers=2, expect_faults=False,
        )
        assert report.ok, report.failures
        assert report.rollbacks == 0
        assert report.faults_fired == 0
        assert report.baseline_digest == report.injected_digest
        assert report.baseline_digest  # non-empty: traces were compared

    def test_single_crash_recovers_bit_identically(self):
        report = run_chaos(
            factory, petersen(),
            FaultPlan(name="one-crash", faults=(
                FaultSpec(kind="worker_crash", superstep=3, worker_id=1),
            )),
            seed=3, num_workers=2,
        )
        assert report.ok, report.failures
        assert report.rollbacks == 1
        assert report.recovered_supersteps >= 1
        assert report.fault_events[0]["kind"] == "worker_crash"
        assert report.injected_digest == report.baseline_digest

    def test_plan_that_never_matches_fails_the_fired_check(self):
        report = run_chaos(
            factory, petersen(),
            FaultPlan(name="past-halt", faults=(
                FaultSpec(kind="worker_crash", superstep=500, worker_id=0),
            )),
            seed=3, num_workers=2,
        )
        assert not report.ok
        assert any("no faults" in failure for failure in report.failures)
        # ... unless the caller says the plan is aimed past the halt.
        report = run_chaos(
            factory, petersen(),
            FaultPlan(name="past-halt", faults=(
                FaultSpec(kind="worker_crash", superstep=500, worker_id=0),
            )),
            seed=3, num_workers=2, expect_faults=False,
        )
        assert report.ok, report.failures

    def test_report_shapes(self):
        report = run_chaos(
            factory, petersen(),
            FaultPlan(name="one-crash", faults=(
                FaultSpec(kind="worker_crash", superstep=3, worker_id=0),
            )),
            seed=3, num_workers=2,
        )
        data = report.to_dict()
        assert data["ok"] is True
        assert data["plan"] == "one-crash"
        assert data["rollbacks"] == 1
        summary = report.summary()
        assert "OK" in summary
        assert "== baseline" in summary
