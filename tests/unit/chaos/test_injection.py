"""Unit tests for the fault injector and the chaos filesystem."""

import pytest

from repro.chaos import ChaosFileSystem, FaultInjector, FaultPlan, FaultSpec
from repro.common.errors import InjectedWriteCrash, SimFsTransientError
from repro.simfs.writers import TRANSIENT_RETRY_ATTEMPTS, append_retrying


def plan_of(*specs, name="test-plan"):
    return FaultPlan(name=name, faults=specs)


def bound(injector, seed=7, workers=4):
    injector.bind(seed, workers)
    return injector


class TestFaultInjector:
    def test_barrier_crash_fires_at_its_superstep_only(self):
        injector = bound(FaultInjector(plan_of(
            FaultSpec(kind="worker_crash", superstep=3, worker_id=1),
        )))
        assert injector.barrier_crash(2) is None
        assert injector.barrier_crash(3) == 1
        # times=1 budget is spent: never again, even at the same superstep.
        assert injector.barrier_crash(3) is None
        assert len(injector.events) == 1
        assert injector.events[0].kind == "worker_crash"

    def test_step_fault_merges_delay_and_crash(self):
        injector = bound(FaultInjector(plan_of(
            FaultSpec(kind="slow_worker", superstep=2, worker_id=0,
                      delay_ms=5.0),
            FaultSpec(kind="step_crash", superstep=2, worker_id=0,
                      after_calls=3),
        )))
        fault = injector.step_fault(2, 0)
        assert fault == {"delay": 0.005, "crash_after": 3}
        assert injector.step_fault(2, 1) is None

    def test_probabilistic_firing_is_deterministic(self):
        def events_for(seed):
            injector = FaultInjector(plan_of(
                FaultSpec(kind="slow_worker", worker_id=0, delay_ms=1.0,
                          probability=0.5, times=None),
            ))
            injector.bind(seed, 4)
            return [
                superstep
                for superstep in range(40)
                if injector.step_fault(superstep, 0)
            ]

        first, second = events_for(123), events_for(123)
        assert first == second          # same seed -> same firings
        assert first != events_for(99)  # different seed -> different firings
        assert 0 < len(first) < 40      # p=0.5 actually skips some

    def test_transient_fires_once_per_site_then_retry_succeeds(self):
        injector = bound(FaultInjector(plan_of(
            FaultSpec(kind="transient_io", superstep=1, path_suffix=".trace",
                      times=None),
        )))
        fs = ChaosFileSystem(injector)
        fs.create("/g/a.trace")
        fs.create("/g/b.trace")
        injector.begin_superstep(1)
        append_retrying(fs, "/g/a.trace", "hello\n")
        append_retrying(fs, "/g/b.trace", "world\n")
        assert fs.read_text("/g/a.trace") == "hello\n"
        assert fs.read_text("/g/b.trace") == "world\n"
        # One transient event per distinct site, not per attempt.
        assert len(injector.events) == 2

    def test_writes_before_superstep_zero_never_fault(self):
        injector = bound(FaultInjector(plan_of(
            FaultSpec(kind="transient_io", path_suffix=".trace", times=None),
        )))
        fs = ChaosFileSystem(injector)
        fs.create("/g/a.trace")
        fs.append_text("/g/a.trace", "prelude\n")  # begin_superstep not called
        assert fs.read_text("/g/a.trace") == "prelude\n"
        assert injector.events == []

    def test_path_suffix_scopes_write_faults(self):
        injector = bound(FaultInjector(plan_of(
            FaultSpec(kind="torn_write", superstep=0, path_suffix=".idx"),
        )))
        fs = ChaosFileSystem(injector)
        fs.create("/g/a.trace")
        fs.create("/g/a.trace.idx")
        injector.begin_superstep(0)
        fs.append_text("/g/a.trace", "safe\n")
        with pytest.raises(InjectedWriteCrash):
            fs.append_text("/g/a.trace.idx", "torn line\n")

    def test_checkpoint_corruption_truncates(self):
        injector = bound(FaultInjector(plan_of(
            FaultSpec(kind="checkpoint_corrupt", superstep=4),
        )))
        fs = ChaosFileSystem(injector)
        fs.write_text("/ckpt/superstep-000004.ckpt", "x" * 100)
        injector.after_checkpoint(fs, "/ckpt/superstep-000004.ckpt", 4)
        assert fs.stat("/ckpt/superstep-000004.ckpt").size == 50
        assert injector.events[0].kind == "checkpoint_corrupt"


class TestChaosFileSystem:
    def test_without_injector_behaves_like_simfs(self):
        fs = ChaosFileSystem()
        fs.write_text("/a.txt", "plain")
        assert fs.read_text("/a.txt") == "plain"
        assert fs.crash_snapshots == []

    def test_torn_write_leaves_prefix_and_snapshots(self):
        injector = bound(FaultInjector(plan_of(
            FaultSpec(kind="torn_write", superstep=0, path_suffix=".trace"),
        )))
        fs = ChaosFileSystem(injector)
        fs.create("/g/a.trace")
        injector.begin_superstep(0)
        with pytest.raises(InjectedWriteCrash):
            fs.append_bytes("/g/a.trace", b"0123456789")
        # Half the bytes landed: a real torn tail.
        assert fs.read_bytes("/g/a.trace") == b"01234"
        [(path, snapshot)] = fs.crash_snapshots
        assert path == "/g/a.trace"
        # The snapshot froze the filesystem at the crash moment and stays
        # frozen while the live filesystem moves on.
        fs.append_bytes("/g/a.trace", b"recovered")
        assert snapshot.read_bytes("/g/a.trace") == b"01234"

    def test_transient_leaves_file_untouched(self):
        injector = bound(FaultInjector(plan_of(
            FaultSpec(kind="transient_io", superstep=0, path_suffix=".trace"),
        )))
        fs = ChaosFileSystem(injector)
        fs.create("/g/a.trace")
        injector.begin_superstep(0)
        with pytest.raises(SimFsTransientError):
            fs.append_bytes("/g/a.trace", b"data")
        assert fs.read_bytes("/g/a.trace") == b""

    def test_retry_budget_covers_one_transient(self):
        # The writers' bounded retry must absorb a single transient blip.
        assert TRANSIENT_RETRY_ATTEMPTS >= 2
