"""Unit tests for SSSP and BFS."""

import math

from repro.algorithms import BreadthFirstSearch, ShortestPaths
from repro.datasets import premade_graph
from repro.graph import GraphBuilder
from repro.pregel import MinCombiner, run_computation


class TestShortestPaths:
    def test_path_distances(self):
        g = premade_graph("path5")
        result = run_computation(lambda: ShortestPaths(0), g)
        assert result.vertex_values == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}

    def test_weighted_shortcut_preferred(self):
        g = (
            GraphBuilder(directed=True)
            .edge("s", "a", 1.0).edge("a", "t", 1.0)
            .edge("s", "t", 5.0)
            .build()
        )
        result = run_computation(lambda: ShortestPaths("s"), g)
        assert result.vertex_values["t"] == 2.0

    def test_unreachable_stays_infinite(self):
        g = GraphBuilder(directed=True).edge(0, 1).vertex(9).build()
        result = run_computation(lambda: ShortestPaths(0), g)
        assert result.vertex_values[9] == math.inf

    def test_none_edge_weight_counts_as_one(self):
        g = GraphBuilder(directed=True).edge(0, 1).build()
        result = run_computation(lambda: ShortestPaths(0), g)
        assert result.vertex_values[1] == 1

    def test_combiner_equivalence(self, petersen):
        plain = run_computation(lambda: ShortestPaths(0), petersen)
        combined = run_computation(
            lambda: ShortestPaths(0), petersen, combiner=MinCombiner()
        )
        assert plain.vertex_values == combined.vertex_values

    def test_directed_edges_respected(self):
        g = GraphBuilder(directed=True).edge(0, 1).edge(2, 1).build()
        result = run_computation(lambda: ShortestPaths(0), g)
        assert result.vertex_values[2] == math.inf


class TestBFS:
    def test_hop_counts_ignore_weights(self):
        g = (
            GraphBuilder(directed=True)
            .edge("s", "a", 100.0).edge("a", "t", 100.0)
            .edge("s", "t", 1.0)
            .build()
        )
        result = run_computation(lambda: BreadthFirstSearch("s"), g)
        assert result.vertex_values["t"] == 1

    def test_petersen_diameter_two(self, petersen):
        result = run_computation(lambda: BreadthFirstSearch(0), petersen)
        assert max(result.vertex_values.values()) == 2
