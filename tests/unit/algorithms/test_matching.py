"""Unit tests for maximum-weight matching."""

from repro.algorithms import (
    MaximumWeightMatching,
    MWMValue,
    extract_matching,
    matching_weight,
)
from repro.algorithms.matching import MATCHED
from repro.datasets import (
    corrupt_asymmetric_weights,
    load_dataset,
    premade_graph,
    random_symmetric_weights,
)
from repro.graph import GraphBuilder
from repro.pregel import run_computation
from repro.pregel.halting import MAX_SUPERSTEPS


def run_mwm(graph, max_supersteps=300, seed=0):
    return run_computation(
        MaximumWeightMatching, graph, seed=seed, max_supersteps=max_supersteps
    )


class TestMatchingCorrectness:
    def test_single_edge_matches(self):
        g = GraphBuilder(directed=False).edge(1, 2, value=5.0).build()
        result = run_mwm(g)
        assert extract_matching(result.vertex_values) == {frozenset({1, 2})}

    def test_weighted_square_takes_heavy_edges(self):
        # weights: (0,1)=4 (1,2)=1 (2,3)=5 (3,0)=2 -> best matching {2,3},{0,1}
        g = premade_graph("weighted-square")
        result = run_mwm(g)
        pairs = extract_matching(result.vertex_values)
        assert pairs == {frozenset({2, 3}), frozenset({0, 1})}
        assert matching_weight(g, pairs) == 9.0

    def test_matching_is_valid(self):
        g = random_symmetric_weights(
            load_dataset("bipartite-1M-3M", num_vertices=100, seed=1), seed=2
        )
        result = run_mwm(g)
        pairs = extract_matching(result.vertex_values)
        used = [v for pair in pairs for v in pair]
        assert len(used) == len(set(used)), "a vertex matched twice"
        for pair in pairs:
            u, v = tuple(pair)
            assert g.has_edge(u, v)

    def test_matching_consistency_both_sides_agree(self):
        g = random_symmetric_weights(
            load_dataset("bipartite-1M-3M", num_vertices=60, seed=3), seed=4
        )
        values = run_mwm(g).vertex_values
        for vertex, value in values.items():
            if value.state == MATCHED:
                partner = values[value.matched_to]
                assert partner.state == MATCHED
                assert partner.matched_to == vertex

    def test_half_approximation_on_small_graph(self):
        g = premade_graph("weighted-square")
        pairs = extract_matching(run_mwm(g).vertex_values)
        # Optimal here is 9.0; the 1/2-approximation guarantees >= 4.5.
        assert matching_weight(g, pairs) >= 4.5

    def test_terminates_on_symmetric_weights(self):
        g = random_symmetric_weights(
            load_dataset("soc-Epinions", num_vertices=150, seed=5), seed=6
        )
        from repro.graph import to_undirected

        result = run_mwm(to_undirected(g), max_supersteps=400)
        assert result.halt_reason != MAX_SUPERSTEPS

    def test_triangle_leaves_one_unmatched(self, triangle):
        from repro.graph import with_edge_values

        g = with_edge_values(triangle, lambda u, v: float(u + v))
        values = run_mwm(g).vertex_values
        unmatched = [v for v in values.values() if v.state != MATCHED]
        assert len(unmatched) == 1

    def test_deterministic(self):
        g = random_symmetric_weights(
            load_dataset("bipartite-1M-3M", num_vertices=80, seed=7), seed=8
        )
        assert run_mwm(g).vertex_values == run_mwm(g).vertex_values


class TestScenario43InfiniteLoop:
    def test_preference_cycle_never_terminates(self, asymmetric_triangle):
        result = run_mwm(asymmetric_triangle, max_supersteps=100)
        assert result.halt_reason == MAX_SUPERSTEPS

    def test_active_set_in_loop_is_the_cycle(self, asymmetric_triangle):
        result = run_mwm(asymmetric_triangle, max_supersteps=100)
        unmatched = {
            v for v, value in result.vertex_values.items() if value.state != MATCHED
        }
        assert unmatched == {"u", "v", "w"}

    def test_corrupted_epinions_enters_infinite_loop(self):
        # The full Scenario 4.3 shape: a clean weighted soc-Epinions
        # converges quickly; the same graph with asymmetric weights on a
        # fraction of its pairs never terminates.
        from repro.graph import to_undirected

        base = to_undirected(
            random_symmetric_weights(
                load_dataset("soc-Epinions", num_vertices=120, seed=1), seed=2
            )
        )
        clean_result = run_mwm(base, max_supersteps=400)
        assert clean_result.halt_reason != MAX_SUPERSTEPS
        corrupted, pairs = corrupt_asymmetric_weights(base, fraction=0.25, seed=3)
        assert pairs
        corrupted_result = run_mwm(corrupted, max_supersteps=400)
        assert corrupted_result.halt_reason == MAX_SUPERSTEPS


class TestHelpers:
    def test_extract_matching_skips_unmatched(self):
        values = {1: MWMValue(), 2: MWMValue(state=MATCHED, matched_to=3),
                  3: MWMValue(state=MATCHED, matched_to=2)}
        assert extract_matching(values) == {frozenset({2, 3})}

    def test_matching_weight_none_counts_one(self):
        g = GraphBuilder(directed=False).edge(1, 2).build()
        assert matching_weight(g, {frozenset({1, 2})}) == 1.0
