"""Unit tests for PageRank variants."""

import pytest

from repro.algorithms import PageRank, TolerancePageRank, TolerancePRMaster
from repro.datasets import load_dataset, premade_graph
from repro.graph import GraphBuilder
from repro.pregel import SumCombiner, run_computation
from repro.pregel.halting import MASTER_HALT


class TestFixedIterations:
    def test_regular_graph_keeps_uniform_rank(self, petersen):
        result = run_computation(lambda: PageRank(iterations=8), petersen)
        assert all(abs(v - 1.0) < 1e-9 for v in result.vertex_values.values())

    def test_rank_mass_conserved_without_dangling(self, petersen):
        result = run_computation(lambda: PageRank(iterations=8), petersen)
        assert sum(result.vertex_values.values()) == pytest.approx(10.0)

    def test_hub_outranks_leaf(self):
        g = GraphBuilder(directed=False)
        for leaf in range(1, 8):
            g.edge(0, leaf)
        result = run_computation(lambda: PageRank(iterations=20), g.build())
        assert result.vertex_values[0] > result.vertex_values[1]

    def test_runs_expected_superstep_count(self, petersen):
        result = run_computation(lambda: PageRank(iterations=5), petersen)
        assert result.num_supersteps == 6  # iterations + final halt pass

    def test_combiner_equivalence(self):
        g = load_dataset("soc-Epinions", num_vertices=150, seed=2)
        plain = run_computation(lambda: PageRank(10), g)
        combined = run_computation(lambda: PageRank(10), g, combiner=SumCombiner())
        for vertex in plain.vertex_values:
            assert plain.vertex_values[vertex] == pytest.approx(
                combined.vertex_values[vertex]
            )


class TestToleranceDriven:
    def test_master_halts_on_convergence(self, petersen):
        result = run_computation(
            TolerancePageRank,
            petersen,
            master=TolerancePRMaster(tolerance=1e-6),
            max_supersteps=100,
        )
        assert result.halt_reason == MASTER_HALT
        assert result.num_supersteps < 100

    def test_converged_ranks_close_to_fixed_iteration(self):
        g = premade_graph("star6")
        tolerant = run_computation(
            TolerancePageRank, g, master=TolerancePRMaster(tolerance=1e-9),
            max_supersteps=200,
        )
        fixed = run_computation(lambda: PageRank(iterations=100), g)
        for vertex in fixed.vertex_values:
            assert tolerant.vertex_values[vertex] == pytest.approx(
                fixed.vertex_values[vertex], abs=1e-4
            )

    def test_tighter_tolerance_takes_longer(self):
        g = load_dataset("web-BS", num_vertices=200, seed=1)
        loose = run_computation(
            TolerancePageRank, g, master=TolerancePRMaster(tolerance=1e-1),
            max_supersteps=100,
        )
        tight = run_computation(
            TolerancePageRank, g, master=TolerancePRMaster(tolerance=1e-6),
            max_supersteps=100,
        )
        assert tight.num_supersteps > loose.num_supersteps
