"""Unit tests for connected components."""

from repro.algorithms import ConnectedComponents, component_sizes
from repro.datasets import premade_graph
from repro.graph import GraphBuilder
from repro.pregel import MinCombiner, run_computation


class TestConnectedComponents:
    def test_single_component(self, triangle):
        result = run_computation(ConnectedComponents, triangle)
        assert set(result.vertex_values.values()) == {0}

    def test_two_components(self):
        g = premade_graph("two-triangles")
        result = run_computation(ConnectedComponents, g)
        assert component_sizes(result.vertex_values) == {0: 3, 3: 3}

    def test_isolated_vertex_is_own_component(self):
        g = GraphBuilder(directed=False).edge(1, 2).vertex(9).build()
        result = run_computation(ConnectedComponents, g)
        assert result.vertex_values[9] == 9
        assert result.vertex_values[1] == result.vertex_values[2] == 1

    def test_long_path_converges_to_min(self):
        g = GraphBuilder(directed=False).path(*range(9, -1, -1)).build()
        result = run_computation(ConnectedComponents, g)
        assert set(result.vertex_values.values()) == {0}

    def test_combiner_equivalence(self, petersen):
        plain = run_computation(ConnectedComponents, petersen)
        combined = run_computation(
            ConnectedComponents, petersen, combiner=MinCombiner()
        )
        assert plain.vertex_values == combined.vertex_values

    def test_labels_are_component_minima(self):
        g = GraphBuilder(directed=False).edge(5, 3).edge(3, 8).edge(10, 11).build()
        result = run_computation(ConnectedComponents, g)
        assert result.vertex_values[8] == 3
        assert result.vertex_values[10] == 10

    def test_string_ids(self):
        g = GraphBuilder(directed=False).edge("b", "a").edge("a", "c").build()
        result = run_computation(ConnectedComponents, g)
        assert set(result.vertex_values.values()) == {"a"}


class TestComponentSizes:
    def test_histogram(self):
        assert component_sizes({1: "x", 2: "x", 3: "y"}) == {"x": 2, "y": 1}

    def test_empty(self):
        assert component_sizes({}) == {}
