"""Unit tests for graph coloring (correct and buggy variants)."""

import pytest

from repro.algorithms import (
    BuggyGraphColoring,
    GCMaster,
    GraphColoring,
    color_counts,
    find_coloring_conflicts,
)
from repro.algorithms.coloring import COLORED, GCValue
from repro.datasets import load_dataset, premade_graph
from repro.pregel import run_computation
from repro.pregel.halting import MAX_SUPERSTEPS


def run_gc(graph, computation=GraphColoring, seed=0, max_supersteps=500):
    return run_computation(
        computation,
        graph,
        master=GCMaster(),
        seed=seed,
        max_supersteps=max_supersteps,
    )


class TestCorrectColoring:
    def test_triangle_needs_three_colors(self, triangle):
        result = run_gc(triangle)
        values = result.vertex_values
        assert all(v.state == COLORED for v in values.values())
        assert len({v.color for v in values.values()}) == 3

    def test_no_conflicts_on_bipartite(self, small_bipartite):
        result = run_gc(small_bipartite, seed=2)
        assert find_coloring_conflicts(small_bipartite, result.vertex_values) == []

    def test_no_conflicts_on_petersen(self, petersen):
        result = run_gc(petersen, seed=1)
        assert find_coloring_conflicts(petersen, result.vertex_values) == []

    def test_every_vertex_colored(self, small_bipartite):
        result = run_gc(small_bipartite)
        assert all(
            value.state == COLORED and value.color is not None
            for value in result.vertex_values.values()
        )

    def test_colors_are_consecutive_rounds(self, petersen):
        result = run_gc(petersen)
        colors = sorted(color_counts(result.vertex_values))
        assert colors == list(range(len(colors)))

    def test_terminates_well_before_cap(self, small_bipartite):
        result = run_gc(small_bipartite, max_supersteps=500)
        assert result.halt_reason != MAX_SUPERSTEPS

    def test_deterministic_given_seed(self, small_bipartite):
        first = run_gc(small_bipartite, seed=4)
        second = run_gc(small_bipartite, seed=4)
        assert first.vertex_values == second.vertex_values

    def test_isolated_vertex_gets_first_color(self):
        from repro.graph import GraphBuilder

        g = GraphBuilder(directed=False).vertex("lonely").build()
        result = run_gc(g)
        assert result.vertex_values["lonely"].color == 0


class TestBuggyColoring:
    def test_produces_adjacent_same_color_conflicts(self, small_bipartite):
        # The defining symptom of Scenario 4.1 — with coarse priorities and
        # the <= comparison, ties put both neighbors in the same MIS.
        conflicts = []
        for seed in range(5):
            result = run_gc(small_bipartite, BuggyGraphColoring, seed=seed)
            conflicts.extend(
                find_coloring_conflicts(small_bipartite, result.vertex_values)
            )
        assert conflicts, "the buggy variant should miscolor at least one pair"

    def test_still_terminates(self, small_bipartite):
        result = run_gc(small_bipartite, BuggyGraphColoring, seed=1)
        assert result.halt_reason != MAX_SUPERSTEPS

    def test_correct_variant_is_conflict_free_same_seeds(self, small_bipartite):
        for seed in range(5):
            result = run_gc(small_bipartite, GraphColoring, seed=seed)
            assert find_coloring_conflicts(small_bipartite, result.vertex_values) == []


class TestConflictFinder:
    def test_reports_pairs_once_with_color(self):
        values = {
            0: GCValue(color=1, state=COLORED),
            1: GCValue(color=1, state=COLORED),
            2: GCValue(color=2, state=COLORED),
        }
        conflicts = find_coloring_conflicts(premade_graph("triangle"), values)
        assert conflicts == [(0, 1, 1)]

    def test_uncolored_vertices_ignored(self):
        values = {
            0: GCValue(color=None),
            1: GCValue(color=None),
            2: GCValue(color=None),
        }
        assert find_coloring_conflicts(premade_graph("triangle"), values) == []


class TestColorCounts:
    def test_histogram(self):
        values = {
            "a": GCValue(color=0, state=COLORED),
            "b": GCValue(color=0, state=COLORED),
            "c": GCValue(color=1, state=COLORED),
        }
        assert color_counts(values) == {0: 2, 1: 1}


class TestPhaseMachine:
    def test_phase_cycle_in_master_traces(self, petersen):
        phases = []

        class Spy:
            def on_master_computed(self, superstep, master_ctx):
                phases.append(master_ctx.aggregator_snapshot().get("phase"))

        run_computation(
            GraphColoring,
            petersen,
            master=GCMaster(),
            listeners=[Spy()],
            max_supersteps=200,
        )
        assert phases[0] == "SELECT"
        assert "DECIDE" in phases
        assert "DISCOVER" in phases
        assert "ASSIGN" in phases

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_round_counter_grows_monotonically(self, petersen, seed):
        rounds = []

        class Spy:
            def on_master_computed(self, superstep, master_ctx):
                rounds.append(master_ctx.aggregator_snapshot().get("round"))

        run_computation(
            GraphColoring,
            petersen,
            master=GCMaster(),
            seed=seed,
            listeners=[Spy()],
            max_supersteps=200,
        )
        numeric = [r for r in rounds if isinstance(r, int)]
        assert numeric == sorted(numeric)
