"""Unit tests for the random walk algorithm (correct and buggy variants)."""

from repro.algorithms import BuggyRandomWalk, RandomWalk, total_walkers
from repro.datasets import load_dataset
from repro.graph import GraphBuilder
from repro.pregel import Short16, run_computation


class TestCorrectRandomWalk:
    def test_walkers_conserved(self, petersen):
        result = run_computation(
            lambda: RandomWalk(steps=6, initial_walkers=50), petersen, seed=3
        )
        assert total_walkers(result.vertex_values) == 50 * 10

    def test_walkers_conserved_on_skewed_graph(self):
        g = load_dataset("web-BS", num_vertices=300, seed=1)
        # Count walkers that can still move plus those stuck on sinks.
        result = run_computation(
            lambda: RandomWalk(steps=5, initial_walkers=20), g, seed=2
        )
        assert total_walkers(result.vertex_values) == 20 * 300

    def test_values_never_negative(self, petersen):
        result = run_computation(
            lambda: RandomWalk(steps=8, initial_walkers=100), petersen, seed=1
        )
        assert all(v >= 0 for v in result.vertex_values.values())

    def test_deterministic_given_seed(self, petersen):
        first = run_computation(lambda: RandomWalk(5, 30), petersen, seed=9)
        second = run_computation(lambda: RandomWalk(5, 30), petersen, seed=9)
        assert first.vertex_values == second.vertex_values

    def test_different_seed_moves_walkers_differently(self, petersen):
        first = run_computation(lambda: RandomWalk(5, 30), petersen, seed=1)
        second = run_computation(lambda: RandomWalk(5, 30), petersen, seed=2)
        assert first.vertex_values != second.vertex_values

    def test_sink_vertices_accumulate(self):
        g = GraphBuilder(directed=True).edge(1, 0).edge(2, 0).build()
        result = run_computation(lambda: RandomWalk(3, 10), g, seed=1)
        assert result.vertex_values[0] == 30  # everyone funnels into the sink

    def test_terminates_after_steps(self, petersen):
        result = run_computation(lambda: RandomWalk(steps=4), petersen)
        assert result.num_supersteps == 5


class TestBuggyRandomWalk:
    def test_counters_are_shorts(self, funnel_graph):
        sent_types = set()

        class Probe(BuggyRandomWalk):
            def _make_counter(self, count):
                counter = super()._make_counter(count)
                sent_types.add(type(counter))
                return counter

        run_computation(lambda: Probe(steps=2, initial_walkers=5), funnel_graph, seed=1)
        assert sent_types == {Short16}

    def test_overflow_sends_negative_counts(self, funnel_graph):
        # 59 leaves x 800 walkers pile onto the hub, which forwards them all
        # over a single edge: the short counter must wrap.
        result = run_computation(
            lambda: BuggyRandomWalk(steps=6, initial_walkers=800),
            funnel_graph,
            seed=1,
        )
        assert any(int(v) < 0 for v in result.vertex_values.values())

    def test_walkers_lost_after_overflow(self, funnel_graph):
        result = run_computation(
            lambda: BuggyRandomWalk(steps=6, initial_walkers=800),
            funnel_graph,
            seed=1,
        )
        expected = 800 * funnel_graph.num_vertices
        assert total_walkers(result.vertex_values) != expected

    def test_no_overflow_at_small_scale_matches_correct(self, petersen):
        buggy = run_computation(lambda: BuggyRandomWalk(4, 10), petersen, seed=5)
        correct = run_computation(lambda: RandomWalk(4, 10), petersen, seed=5)
        assert {k: int(v) for k, v in buggy.vertex_values.items()} == (
            correct.vertex_values
        )


class TestTotalWalkers:
    def test_counts_mixed_int_types(self):
        assert total_walkers({1: Short16(5), 2: 7}) == 12
