"""Unit tests for triangle counting."""

from repro.algorithms import TriangleCount, total_triangles
from repro.datasets import premade_graph
from repro.graph import GraphBuilder
from repro.pregel import run_computation


class TestTriangleCount:
    def test_single_triangle(self, triangle):
        result = run_computation(TriangleCount, triangle)
        assert result.vertex_values == {0: 1, 1: 1, 2: 1}
        assert total_triangles(result.vertex_values) == 1

    def test_complete_graph_k5(self):
        result = run_computation(TriangleCount, premade_graph("complete5"))
        # Each vertex of K5 sits in C(4,2) = 6 triangles; total C(5,3) = 10.
        assert all(v == 6 for v in result.vertex_values.values())
        assert total_triangles(result.vertex_values) == 10

    def test_triangle_free_graphs(self):
        for name in ("path5", "cycle6", "star6", "petersen"):
            result = run_computation(TriangleCount, premade_graph(name))
            assert total_triangles(result.vertex_values) == 0, name

    def test_bipartite_graphs_have_no_triangles(self, small_bipartite):
        result = run_computation(TriangleCount, small_bipartite)
        assert total_triangles(result.vertex_values) == 0

    def test_two_disjoint_triangles(self):
        result = run_computation(TriangleCount, premade_graph("two-triangles"))
        assert total_triangles(result.vertex_values) == 2

    def test_shared_edge_triangles(self):
        # Two triangles sharing edge (0, 1): 0 and 1 are in 2 each.
        g = GraphBuilder(directed=False).cycle(0, 1, 2).cycle(0, 1, 3).build()
        result = run_computation(TriangleCount, g)
        assert result.vertex_values[0] == 2
        assert result.vertex_values[2] == 1
        assert total_triangles(result.vertex_values) == 2

    def test_runs_in_two_supersteps(self, triangle):
        assert run_computation(TriangleCount, triangle).num_supersteps == 2
