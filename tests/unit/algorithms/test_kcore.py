"""Unit tests for k-core decomposition."""

from repro.algorithms import KCore, core_members
from repro.datasets import premade_graph
from repro.graph import GraphBuilder
from repro.pregel import run_computation


class TestKCore:
    def test_whole_cycle_is_its_own_2core(self):
        result = run_computation(lambda: KCore(2), premade_graph("cycle6"))
        assert core_members(result.vertex_values) == list(range(6))

    def test_path_has_no_2core(self):
        result = run_computation(lambda: KCore(2), premade_graph("path5"))
        assert core_members(result.vertex_values) == []

    def test_star_collapses_entirely_at_k2(self):
        # Leaves die (degree 1); the hub then has no survivors.
        result = run_computation(lambda: KCore(2), premade_graph("star6"))
        assert core_members(result.vertex_values) == []

    def test_cascading_peel(self):
        # Triangle with a pendant path: the path peels away hop by hop,
        # the triangle survives as the 2-core.
        g = (
            GraphBuilder(directed=False)
            .cycle(0, 1, 2)
            .path(2, 3, 4, 5)
            .build()
        )
        result = run_computation(lambda: KCore(2), g)
        assert core_members(result.vertex_values) == [0, 1, 2]

    def test_k1_keeps_everything_with_an_edge(self):
        g = GraphBuilder(directed=False).edge(0, 1).vertex(9).build()
        result = run_computation(lambda: KCore(1), g)
        assert core_members(result.vertex_values) == [0, 1]

    def test_k4_on_petersen_empty(self, petersen):
        result = run_computation(lambda: KCore(4), petersen)
        assert core_members(result.vertex_values) == []

    def test_k3_on_petersen_full(self, petersen):
        result = run_computation(lambda: KCore(3), petersen)
        assert len(core_members(result.vertex_values)) == 10

    def test_core_invariant_every_member_has_k_member_neighbors(self):
        g = premade_graph("complete5")
        result = run_computation(lambda: KCore(3), g)
        members = set(core_members(result.vertex_values))
        for member in members:
            neighbor_members = sum(
                1 for target in g.neighbors(member) if target in members
            )
            assert neighbor_members >= 3
