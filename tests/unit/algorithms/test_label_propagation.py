"""Unit tests for label propagation."""

from repro.algorithms import LabelPropagation, communities
from repro.datasets import premade_graph
from repro.graph import GraphBuilder
from repro.pregel import run_computation


class TestLabelPropagation:
    def test_disconnected_cliques_get_distinct_labels(self):
        g = GraphBuilder(directed=False).clique(0, 1, 2).clique(10, 11, 12).build()
        result = run_computation(lambda: LabelPropagation(iterations=6), g)
        groups = communities(result.vertex_values)
        assert sorted(map(sorted, groups.values())) == [[0, 1, 2], [10, 11, 12]]

    def test_clique_converges_to_min_label(self):
        g = GraphBuilder(directed=False).clique(5, 6, 7, 8).build()
        result = run_computation(lambda: LabelPropagation(iterations=6), g)
        # A vertex never counts its own label, so the clique settles on one
        # of the two smallest labels; all members agree.
        assert len(set(result.vertex_values.values())) == 1

    def test_two_cliques_with_weak_bridge(self):
        builder = GraphBuilder(directed=False)
        builder.clique(0, 1, 2, 3)
        builder.clique(10, 11, 12, 13)
        builder.edge(3, 10)
        result = run_computation(lambda: LabelPropagation(iterations=8), builder.build())
        groups = communities(result.vertex_values)
        # The bridge must not merge the cliques into one community.
        assert len(groups) >= 2

    def test_isolated_vertex_keeps_own_label(self):
        g = GraphBuilder(directed=False).vertex(42).clique(0, 1, 2).build()
        result = run_computation(lambda: LabelPropagation(iterations=4), g)
        assert result.vertex_values[42] == 42

    def test_fixed_iteration_termination(self, petersen):
        result = run_computation(lambda: LabelPropagation(iterations=5), petersen)
        assert result.num_supersteps == 6

    def test_deterministic(self, petersen):
        first = run_computation(lambda: LabelPropagation(6), petersen, num_workers=2)
        second = run_computation(lambda: LabelPropagation(6), petersen, num_workers=5)
        assert first.vertex_values == second.vertex_values


class TestCommunitiesHelper:
    def test_groups_and_sorts(self):
        assert communities({3: "a", 1: "a", 2: "b"}) == {"a": [1, 3], "b": [2]}
