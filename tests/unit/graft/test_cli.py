"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(*argv):
    lines = []
    status = main(list(argv), out=lines.append)
    return status, "\n".join(str(line) for line in lines)


class TestListingCommands:
    def test_datasets(self):
        status, output = run_cli("datasets")
        assert status == 0
        for name in ("web-BS", "twitter", "bipartite-2B-6B"):
            assert name in output

    def test_premade(self):
        status, output = run_cli("premade")
        assert status == 0
        assert "petersen" in output
        assert "triangle" in output


class TestRunCommand:
    def test_pagerank_run(self):
        status, output = run_cli(
            "run", "--algorithm", "pagerank", "--dataset", "web-BS",
            "--vertices", "100", "--iterations", "3",
        )
        assert status == 0
        assert "running pagerank" in output
        assert "halt=converged" in output

    def test_show_values(self):
        status, output = run_cli(
            "run", "--algorithm", "components", "--dataset", "bipartite-1M-3M",
            "--vertices", "40", "--show-values", "3",
        )
        assert status == 0
        assert output.count(":") >= 3

    def test_mwm_gets_weighted_graph(self):
        status, output = run_cli(
            "run", "--algorithm", "mwm", "--dataset", "soc-Epinions",
            "--vertices", "60", "--max-supersteps", "200",
        )
        assert status == 0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "--algorithm", "quicksort")


class TestDebugCommand:
    def test_capture_random_tabular(self):
        status, output = run_cli(
            "debug", "--algorithm", "components", "--dataset", "bipartite-1M-3M",
            "--vertices", "60", "--capture-random", "4", "--view", "tabular",
        )
        assert status == 0
        assert "Tabular View" in output
        assert "captures" in output

    def test_nothing_captured_notice(self):
        status, output = run_cli(
            "debug", "--algorithm", "components", "--dataset", "bipartite-1M-3M",
            "--vertices", "40",
        )
        assert status == 0
        assert "nothing captured" in output

    def test_nonneg_messages_catches_rw_bug(self):
        # Each vertex has degree 3, so 110000 walkers mean per-edge counts
        # around 36000 > Short16.max_value() from the very first superstep.
        status, output = run_cli(
            "debug", "--algorithm", "rw-buggy", "--dataset", "bipartite-1M-3M",
            "--vertices", "12", "--walkers", "110000", "--steps", "2",
            "--nonneg-messages", "--view", "violations",
        )
        # Captured violations gate CI pipelines: documented exit code 2.
        assert status == 2
        assert "violations" in output
        assert "Short16" in output
        # The violations view cross-links to the static rule that predicted
        # the negative messages (GL007: fixed-width wrap-around).
        assert "predicted by static analysis (GL007)" in output

    def test_capture_ids_nodelink_last(self):
        status, output = run_cli(
            "debug", "--algorithm", "components", "--dataset", "bipartite-1M-3M",
            "--vertices", "40", "--capture-ids", "0", "1", "--view", "nodelink",
            "--superstep", "last",
        )
        assert status == 0
        assert "Node-link View" in output

    def test_reproduce_prints_generated_test(self):
        status, output = run_cli(
            "debug", "--algorithm", "components", "--dataset", "bipartite-1M-3M",
            "--vertices", "40", "--capture-ids", "0", "--reproduce", "0", "0",
        )
        assert status == 0
        assert "ReplayHarness" in output
        assert "faithful" in output

    def test_capture_all_active_from_superstep(self):
        status, output = run_cli(
            "debug", "--algorithm", "gc", "--dataset", "bipartite-1M-3M",
            "--vertices", "40", "--capture-all-active", "--from-superstep", "2",
            "--max-supersteps", "200", "--view", "tabular",
        )
        assert status == 0
        assert "superstep 2" in output


class TestInputFileOption:
    def test_run_from_local_adjacency_file(self, tmp_path):
        from repro.datasets import premade_graph
        from repro.graph import write_adjacency_file

        path = tmp_path / "graph.adj"
        write_adjacency_file(premade_graph("two-triangles"), str(path))
        status, output = run_cli(
            "run", "--algorithm", "components", "--input", str(path),
            "--undirected", "--show-values", "6",
        )
        assert status == 0
        assert "6 vertices" in output

    def test_debug_from_local_file(self, tmp_path):
        from repro.datasets import premade_graph
        from repro.graph import write_adjacency_file

        path = tmp_path / "graph.adj"
        write_adjacency_file(premade_graph("triangle"), str(path))
        status, output = run_cli(
            "debug", "--algorithm", "components", "--input", str(path),
            "--undirected", "--capture-ids", "0", "--view", "tabular",
        )
        assert status == 0
        assert "Tabular View" in output


class TestValidateCommand:
    def test_clean_dataset_ok(self):
        status, output = run_cli(
            "validate", "--dataset", "bipartite-1M-3M", "--vertices", "40",
            "--weighted",
        )
        assert status == 0
        assert "graph OK" in output

    def test_directed_dataset_reports_missing_reverse(self):
        # The trust network is directed; validating it as undirected
        # surfaces the one-way edges.
        status, output = run_cli(
            "validate", "--dataset", "soc-Epinions", "--vertices", "60",
        )
        assert status == 0  # directed graphs skip symmetry checks


class TestTraceCommand:
    def test_export_then_stats(self, tmp_path):
        export_dir = str(tmp_path / "traces")
        status, output = run_cli(
            "debug", "--algorithm", "pagerank", "--dataset", "web-BS",
            "--vertices", "50", "--iterations", "2", "--capture-all-active",
            "--export-traces", export_dir,
        )
        assert status == 0
        assert "exported traces" in output
        # The job id is printed in the hint; recover it.
        job_id = output.split("repro trace stats ")[1].split()[0]
        status, output = run_cli(
            "trace", "stats", job_id, "--dir", export_dir,
        )
        assert status == 0
        assert "worker-0.trace" in output
        assert "master.trace" in output
        assert "TOTAL" in output
        assert "100.0%" in output  # fully indexed
        assert "v2" in output

    def test_stats_missing_directory(self):
        status, output = run_cli(
            "trace", "stats", "job-0", "--dir", "/nonexistent/definitely",
        )
        assert status == 1
        assert "cannot load" in output

    def test_stats_unknown_job(self, tmp_path):
        (tmp_path / "stray.txt").write_text("not a trace tree")
        status, output = run_cli(
            "trace", "stats", "ghost", "--dir", str(tmp_path),
        )
        assert status == 1
        assert "no trace directory" in output
