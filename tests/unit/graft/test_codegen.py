"""Unit tests for generated test files (the paper's Figure 6 analogue).

The strongest check here is executing the generated code: every generated
test file is compiled and run in-process, which is exactly what a user's
IDE would do after pasting it.
"""

import pytest

from repro.graft import (
    CaptureAllActiveConfig,
    DebugConfig,
    debug_run,
    generate_end_to_end_test,
    generate_master_test_code,
    generate_test_code,
)
from repro.graph import GraphBuilder
from repro.pregel import Computation


class Accumulate(Computation):
    def initial_value(self, vertex_id, input_value):
        return 10

    def compute(self, ctx, messages):
        ctx.set_value(ctx.value + sum(messages))
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(ctx.value)
        else:
            ctx.vote_to_halt()


def pair_graph():
    return GraphBuilder(directed=False).edge(0, 1).build()


def execute_generated(code, **extra_names):
    """Compile and run a generated test file the way pytest would."""
    namespace = {"__name__": "generated_test", **extra_names}
    exec(compile(code, "<generated>", "exec"), namespace)
    tests = [v for k, v in namespace.items() if k.startswith("test_")]
    assert tests, "generated file defines no test function"
    for test in tests:
        test()
    return namespace


@pytest.fixture
def run():
    return debug_run(
        Accumulate, pair_graph(), CaptureAllActiveConfig(), seed=2, num_workers=2
    )


class TestVertexCodegen:
    def test_generated_code_executes_and_passes(self, run):
        code = run.generate_test_code(0, 1)
        execute_generated(code)

    def test_generated_code_for_superstep_zero(self, run):
        execute_generated(run.generate_test_code(1, 0))

    def test_code_contains_context_literals(self, run):
        code = run.generate_test_code(0, 1)
        assert "vertex_id=0" in code
        assert "superstep=1" in code
        assert "run_seed=2" in code
        assert "ReplayHarness" in code
        assert "Accumulate()" in code

    def test_assertions_reflect_recorded_outcome(self, run):
        record = run.captured(0, 1)
        code = run.generate_test_code(0, 1)
        assert f"assert outcome.value == {record.value_after}" in code
        assert "assert outcome.halted is True" in code

    def test_custom_test_name(self, run):
        code = run.generate_test_code(0, 1, test_name="test_my_bug")
        assert "def test_my_bug():" in code

    def test_default_name_mentions_vertex_and_superstep(self, run):
        assert "def test_reproduce_vertex_0_superstep_1():" in run.generate_test_code(0, 1)

    def test_generated_code_with_dataclass_values_executes(self):
        from repro.algorithms import GCMaster, GraphColoring

        gc_run = debug_run(
            GraphColoring,
            GraphBuilder(directed=False).cycle(0, 1, 2).build(),
            CaptureAllActiveConfig(),
            master=GCMaster(),
            seed=1,
            max_supersteps=100,
        )
        record = gc_run.reader.vertex_records[-1]
        code = gc_run.generate_test_code(record.vertex_id, record.superstep)
        assert "GCValue(" in code
        execute_generated(code)

    def test_exception_record_generates_raising_test(self):
        class Boom(Computation):
            def compute(self, ctx, messages):
                raise ArithmeticError("bad math")

        boom_run = debug_run(Boom, pair_graph(), DebugConfig(), seed=1)
        record, _exc = boom_run.exceptions()[0]
        code = generate_test_code(record, Boom)
        assert "'ArithmeticError'" in code
        # Boom is defined inside this test, so the generated file carries a
        # TODO import comment and we inject the class when executing.
        assert "TODO: make Boom importable" in code
        execute_generated(code, Boom=Boom)

    def test_mutated_detection_when_code_changed(self, run):
        # A user who edits the algorithm will see the generated assertions
        # fail — that's the point of keeping them as regression tests.
        code = run.generate_test_code(0, 1)
        broken = code.replace("Accumulate()", "BrokenAccumulate()")
        namespace = {
            "__name__": "generated_test",
            "BrokenAccumulate": _BrokenAccumulate,
        }
        exec(compile(broken, "<generated>", "exec"), namespace)
        test = next(v for k, v in namespace.items() if k.startswith("test_"))
        with pytest.raises(AssertionError):
            test()


class _BrokenAccumulate(Computation):
    def compute(self, ctx, messages):
        ctx.set_value(-1)


class TestMasterCodegen:
    def test_generated_master_test_executes(self):
        from repro.algorithms import GCMaster, GraphColoring

        gc_run = debug_run(
            GraphColoring,
            GraphBuilder(directed=False).cycle(0, 1, 2).build(),
            DebugConfig(),
            master=GCMaster(),
            seed=1,
            max_supersteps=100,
        )
        code = gc_run.generate_master_test_code(1, GCMaster)
        assert "MasterReplayHarness" in code
        execute_generated(code)

    def test_missing_superstep_rejected(self, run):
        from repro.common.errors import GraftError

        with pytest.raises(GraftError, match="no master capture"):
            run.generate_master_test_code(999, Accumulate)


class TestEndToEndCodegen:
    def test_generated_e2e_test_executes(self):
        graph = GraphBuilder(directed=False).edge(0, 1).edge(1, 2).build()
        code = generate_end_to_end_test(graph, Accumulate)
        assert "run_computation" in code
        assert "TODO" in code
        execute_generated(code)

    def test_expected_values_asserted(self):
        from repro.pregel import run_computation

        graph = GraphBuilder(directed=False).edge(0, 1).build()
        expected = run_computation(Accumulate, graph).vertex_values
        code = generate_end_to_end_test(graph, Accumulate, expected_values=expected)
        assert "assert result.vertex_values ==" in code
        execute_generated(code)

    def test_wrong_expected_values_fail(self):
        graph = GraphBuilder(directed=False).edge(0, 1).build()
        code = generate_end_to_end_test(
            graph, Accumulate, expected_values={0: -99, 1: -99}
        )
        with pytest.raises(AssertionError):
            execute_generated(code)

    def test_engine_kwargs_rendered(self):
        graph = GraphBuilder(directed=False).edge(0, 1).build()
        code = generate_end_to_end_test(
            graph, Accumulate, engine_kwargs={"num_workers": 2, "seed": 7}
        )
        assert "num_workers=2" in code
        assert "seed=7" in code
        execute_generated(code)
