"""Unit tests for offline mode (small-graph construction, Section 3.4)."""

from repro.graft import OfflineGraphBuilder
from repro.graph import parse_adjacency_text
from repro.pregel import Computation


class Halt(Computation):
    def compute(self, ctx, messages):
        ctx.vote_to_halt()


class TestOfflineBuilder:
    def test_menu_matches_premade(self):
        from repro.datasets import premade_menu

        assert OfflineGraphBuilder.menu() == premade_menu()

    def test_from_premade_then_edit(self):
        builder = OfflineGraphBuilder.from_premade("triangle")
        graph = builder.edge(2, 3).build()
        assert graph.num_vertices == 4
        assert graph.has_edge(3, 2)  # undirected edit

    def test_from_premade_preserves_weights(self):
        graph = OfflineGraphBuilder.from_premade("weighted-square").build()
        assert graph.edge_value(2, 3) == 5.0
        assert graph.edge_value(3, 2) == 5.0

    def test_from_premade_equals_original(self):
        from repro.datasets import premade_graph

        rebuilt = OfflineGraphBuilder.from_premade("petersen").build()
        assert rebuilt == premade_graph("petersen")

    def test_adjacency_text_export_parses_back(self):
        builder = OfflineGraphBuilder(directed=False).edge(1, 2).edge(2, 3)
        text = builder.to_adjacency_text()
        assert parse_adjacency_text(text, directed=False) == builder.build()

    def test_end_to_end_template_generated(self):
        builder = OfflineGraphBuilder(directed=False).edge(1, 2)
        code = builder.to_end_to_end_test(Halt)
        assert "def test_end_to_end():" in code
        assert "run_computation(Halt, graph" in code
        namespace = {"__name__": "generated"}
        exec(compile(code, "<generated>", "exec"), namespace)
        namespace["test_end_to_end"]()

    def test_end_to_end_with_expectations(self):
        builder = OfflineGraphBuilder(directed=False).vertex(1, value=5).edge(1, 2)
        code = builder.to_end_to_end_test(
            Halt, expected_values={1: 5, 2: None}, test_name="test_small"
        )
        namespace = {"__name__": "generated"}
        exec(compile(code, "<generated>", "exec"), namespace)
        namespace["test_small"]()
