"""Unit tests for the combiner safety checker."""

from repro.algorithms import ConnectedComponents, PageRank
from repro.datasets import premade_graph
from repro.graft import check_combiner_safety
from repro.pregel import Computation, MessageCombiner, MinCombiner, SumCombiner


class CountMessages(Computation):
    """Depends on message *multiplicity* — unsafe under any combiner."""

    def initial_value(self, vertex_id, input_value):
        return 0

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(1)
        else:
            ctx.set_value(len(messages))
        ctx.vote_to_halt()


class FirstMessageWins(MessageCombiner):
    """Not commutative over delivery order — unsafe for most algorithms."""

    def combine(self, first, second):
        return first


class TestCombinerSafety:
    def test_min_combiner_safe_for_components(self, petersen):
        report = check_combiner_safety(
            ConnectedComponents, petersen, MinCombiner(), seed=1
        )
        assert report.safe
        assert report.messages_saved > 0
        assert "safe" in report.summary()

    def test_sum_combiner_safe_for_pagerank(self, petersen):
        report = check_combiner_safety(
            lambda: PageRank(iterations=6), petersen, SumCombiner(), seed=1
        )
        assert report.safe

    def test_multiplicity_dependence_detected(self, petersen):
        report = check_combiner_safety(
            CountMessages, petersen, SumCombiner(), seed=1
        )
        assert not report.safe
        assert report.differing_vertices
        assert "UNSAFE" in report.summary()

    def test_wrong_fold_detected(self):
        # SSSP requires a MIN fold; a MAX combiner keeps the worse of two
        # candidate distances arriving at t in the same superstep.
        from repro.algorithms import ShortestPaths
        from repro.graph import GraphBuilder
        from repro.pregel import MaxCombiner

        diamond = (
            GraphBuilder(directed=True)
            .edge("s", "a", 1.0).edge("s", "b", 5.0)
            .edge("a", "t", 1.0).edge("b", "t", 1.0)
            .build()
        )
        report = check_combiner_safety(
            lambda: ShortestPaths("s"), diamond, MaxCombiner(), seed=1
        )
        assert not report.safe
        assert "t" in report.differing_vertices

    def test_first_wins_combiner_runs(self, petersen):
        # Order-dependent folds are the classic subtle bug; the checker at
        # least must execute them deterministically.
        report = check_combiner_safety(
            ConnectedComponents, petersen, FirstMessageWins(), seed=1
        )
        assert report.supersteps_without >= 1
        assert isinstance(report.safe, bool)

    def test_superstep_counts_reported(self, petersen):
        report = check_combiner_safety(
            ConnectedComponents, petersen, MinCombiner(), seed=1
        )
        assert report.supersteps_without == report.supersteps_with
