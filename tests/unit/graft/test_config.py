"""Unit tests for DebugConfig and the Table 3 standard configurations."""

import pytest

from repro.common.errors import GraftError
from repro.graft import CaptureAllActiveConfig, DebugConfig, standard_configs
from repro.graft.config import STANDARD_CONFIG_DESCRIPTIONS
from repro.pregel import Short16


class TestDefaults:
    def test_nothing_selected_by_default(self):
        config = DebugConfig()
        assert tuple(config.vertices_to_capture()) == ()
        assert config.num_random_vertices_to_capture() == 0
        assert not config.capture_neighbors_of_vertices()
        assert not config.capture_all_active()

    def test_constraints_pass_by_default(self):
        config = DebugConfig()
        assert config.vertex_value_constraint(-1, "v", 0)
        assert config.message_value_constraint(-1, "s", "t", 0)

    def test_exception_capture_on_by_default(self):
        assert DebugConfig().capture_exceptions()
        assert not DebugConfig().continue_on_exception()

    def test_all_supersteps_captured_by_default(self):
        assert DebugConfig().should_capture_superstep(12345)

    def test_default_checks_disabled(self):
        config = DebugConfig()
        assert not config.checks_messages()
        assert not config.checks_vertex_values()
        assert not config.checks_messages_with_target()
        assert not config.checks_neighborhoods()


class TestOverrideDetection:
    def test_overridden_constraint_detected(self):
        class WithMessageCheck(DebugConfig):
            def message_value_constraint(self, message, source_id, target_id, superstep):
                return message >= 0

        config = WithMessageCheck()
        assert config.checks_messages()
        assert not config.checks_vertex_values()

    def test_extended_constraints_detected(self):
        class Extended(DebugConfig):
            def neighborhood_constraint(self, value, neighbor_values, vertex_id, superstep):
                return True

        assert Extended().checks_neighborhoods()


class TestValidation:
    def test_valid_config_returns_self(self):
        config = DebugConfig()
        assert config.validate() is config

    def test_negative_random_count_rejected(self):
        class Bad(DebugConfig):
            def num_random_vertices_to_capture(self):
                return -1

        with pytest.raises(GraftError):
            Bad().validate()

    def test_nonpositive_max_captures_rejected(self):
        class Bad(DebugConfig):
            def max_captures(self):
                return 0

        with pytest.raises(GraftError):
            Bad().validate()


class TestCaptureAllActiveConfig:
    def test_superstep_window(self):
        config = CaptureAllActiveConfig(from_superstep=10, to_superstep=20)
        assert not config.should_capture_superstep(9)
        assert config.should_capture_superstep(10)
        assert config.should_capture_superstep(20)
        assert not config.should_capture_superstep(21)

    def test_open_ended_window(self):
        config = CaptureAllActiveConfig(from_superstep=500)
        assert config.should_capture_superstep(10_000)

    def test_captures_all_active(self):
        assert CaptureAllActiveConfig().capture_all_active()

    def test_custom_max_captures(self):
        assert CaptureAllActiveConfig(max_captures=5).max_captures() == 5


class TestStandardConfigs:
    def test_table3_names(self):
        configs = standard_configs(range(10))
        assert sorted(configs) == sorted(STANDARD_CONFIG_DESCRIPTIONS)

    def test_dc_sp_captures_five_ids(self):
        configs = standard_configs(range(10))
        assert list(configs["DC-sp"].vertices_to_capture()) == [0, 1, 2, 3, 4]
        assert not configs["DC-sp"].capture_neighbors_of_vertices()

    def test_dc_sp_nbr_adds_neighbors(self):
        configs = standard_configs(range(10))
        assert configs["DC-sp+nbr"].capture_neighbors_of_vertices()

    def test_dc_msg_checks_messages_only(self):
        configs = standard_configs(range(10))
        config = configs["DC-msg"]
        assert config.checks_messages()
        assert not config.checks_vertex_values()
        assert not config.message_value_constraint(-3, "s", "t", 0)
        assert config.message_value_constraint(3, "s", "t", 0)

    def test_dc_vv_checks_vertex_values_only(self):
        configs = standard_configs(range(10))
        config = configs["DC-vv"]
        assert config.checks_vertex_values()
        assert not config.checks_messages()
        assert not config.vertex_value_constraint(-1, "v", 0)

    def test_dc_full_combines_everything(self):
        configs = standard_configs(range(10))
        config = configs["DC-full"]
        assert len(list(config.vertices_to_capture())) == 10
        assert config.capture_neighbors_of_vertices()
        assert config.checks_messages()
        assert config.checks_vertex_values()
        assert config.capture_exceptions()

    def test_constraints_tolerate_fixed_width_ints(self):
        config = standard_configs(range(10))["DC-msg"]
        assert not config.message_value_constraint(Short16(-5), "s", "t", 0)
        assert config.message_value_constraint(Short16(5), "s", "t", 0)

    def test_constraints_tolerate_non_numeric_values(self):
        config = standard_configs(range(10))["DC-vv"]
        assert config.vertex_value_constraint("not a number", "v", 0)

    def test_too_few_ids_rejected(self):
        with pytest.raises(GraftError, match="at least 10"):
            standard_configs(range(3))
