"""Thread-safety regression for the lazy trace reader.

The debug server shares one lazy :class:`TraceReader` (and one pair of
LRU caches) across every request thread, so the reader's lazy memoization
— index parse, superstep maps, vertex postings, the at-superstep cache —
and the LRU's OrderedDict mutations must all be safe under concurrent
use. These tests hammer them from many threads and require answers
identical to a single-threaded eager baseline; before the locks went in,
this reliably corrupted the record cache's recency order and dropped
postings mid-parse.
"""

import random
import threading

import pytest

from repro.graft.capture import (
    MasterContextRecord,
    VertexContextRecord,
    Violation,
)
from repro.graft.trace import TraceReader, TraceStore, _LRUCache
from repro.simfs import SimFileSystem

NUM_VERTICES = 120
NUM_SUPERSTEPS = 6
NUM_WORKERS = 3
NUM_THREADS = 8
QUERIES_PER_THREAD = 60


def _build_trace(fs, job_id="job-hammer"):
    store = TraceStore(fs, job_id, NUM_WORKERS, format="v2")
    for superstep in range(NUM_SUPERSTEPS):
        records = []
        for vertex_id in range(NUM_VERTICES):
            violations = []
            if vertex_id % 37 == 0:
                violations = [
                    Violation("message", vertex_id, superstep, {"value": -1})
                ]
            records.append(
                VertexContextRecord(
                    vertex_id=vertex_id,
                    superstep=superstep,
                    worker_id=vertex_id % NUM_WORKERS,
                    value_before=float(vertex_id),
                    edges_before={(vertex_id + 1) % NUM_VERTICES: None},
                    incoming=[((vertex_id - 1) % NUM_VERTICES, 0.5)],
                    aggregators={},
                    num_vertices=NUM_VERTICES,
                    num_edges=NUM_VERTICES,
                    run_seed=0,
                    value_after=float(vertex_id + superstep),
                    edges_after={(vertex_id + 1) % NUM_VERTICES: None},
                    sent=[((vertex_id + 1) % NUM_VERTICES, 1.0)],
                    reasons=["all_active"],
                    violations=violations,
                )
            )
        store.write_vertex_records(records)
        store.write_master_record(
            MasterContextRecord(superstep=superstep, aggregators={})
        )
        store.flush()
    store.close()


@pytest.fixture(scope="module")
def trace_fs():
    fs = SimFileSystem()
    _build_trace(fs)
    return fs


def _hammer(fn, threads=NUM_THREADS):
    """Run ``fn(thread_index)`` on N threads at once; re-raise any failure."""
    barrier = threading.Barrier(threads)
    errors = []

    def body(index):
        try:
            barrier.wait(timeout=30)
            fn(index)
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    workers = [
        threading.Thread(target=body, args=(i,)) for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60)
    assert not errors, errors


def test_shared_lazy_reader_answers_match_eager_under_threads(trace_fs):
    # Tiny caches on purpose: constant eviction maximizes contention on
    # the LRU's multi-step mutations.
    reader = TraceReader(
        trace_fs, "job-hammer", mode="lazy",
        cache_records=16, cache_blocks=2,
    )
    eager = TraceReader(trace_fs, "job-hammer", mode="eager")
    expected = {
        (vid, step): eager.get(vid, step).value_after
        for vid in range(NUM_VERTICES)
        for step in range(NUM_SUPERSTEPS)
    }
    expected_supersteps = eager.supersteps()
    expected_violations = [
        (v.vertex_id, v.superstep) for v in eager.violations()
    ]

    def worker(index):
        rng = random.Random(index)
        for _ in range(QUERIES_PER_THREAD):
            vid = rng.randrange(NUM_VERTICES)
            step = rng.randrange(NUM_SUPERSTEPS)
            record = reader.get(vid, step)
            assert record.value_after == expected[(vid, step)]
            assert record.vertex_id == vid and record.superstep == step
        assert reader.supersteps() == expected_supersteps
        history = reader.history(index)
        assert [r.superstep for r in history] == list(range(NUM_SUPERSTEPS))
        step = index % NUM_SUPERSTEPS
        ids = [r.vertex_id for r in reader.at_superstep(step)]
        assert ids == sorted(range(NUM_VERTICES), key=repr)
        assert [
            (v.vertex_id, v.superstep) for v in reader.violations()
        ] == expected_violations

    _hammer(worker)


def test_injected_caches_are_shared_across_readers(trace_fs):
    record_cache = _LRUCache(64)
    block_cache = _LRUCache(4)
    readers = [
        TraceReader(
            trace_fs, "job-hammer", mode="lazy",
            record_cache=record_cache, block_cache=block_cache,
        )
        for _ in range(3)
    ]

    def worker(index):
        reader = readers[index % len(readers)]
        rng = random.Random(1000 + index)
        for _ in range(QUERIES_PER_THREAD):
            vid = rng.randrange(NUM_VERTICES)
            step = rng.randrange(NUM_SUPERSTEPS)
            assert reader.get(vid, step).vertex_id == vid

    _hammer(worker)
    # The budgets hold process-wide, however many readers drew on them.
    assert len(record_cache) <= 64
    assert len(block_cache) <= 4
    assert record_cache.hits + record_cache.misses >= NUM_THREADS


def test_lru_cache_hammer_keeps_invariants():
    cache = _LRUCache(32)

    def worker(index):
        rng = random.Random(index)
        for round_ in range(500):
            key = (rng.randrange(64),)
            value = cache.get(key)
            if value is not None:
                assert value == key  # never another thread's entry
            cache.put(key, key)
            assert len(cache) <= 32

    _hammer(worker)
    assert len(cache) <= 32


def test_lru_cache_zero_size_never_stores():
    cache = _LRUCache(0)

    def worker(index):
        for i in range(200):
            cache.put((index, i), i)
            assert cache.get((index, i)) is None

    _hammer(worker)
    assert len(cache) == 0
