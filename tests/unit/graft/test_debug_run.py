"""Unit tests for the Graft session and debug_run (capture categories)."""

import pytest

from repro.common.errors import ComputeError
from repro.graft import CaptureAllActiveConfig, DebugConfig, debug_run
from repro.graft.capture import (
    REASON_ALL_ACTIVE,
    REASON_EXCEPTION,
    REASON_MESSAGE,
    REASON_NEIGHBOR,
    REASON_RANDOM,
    REASON_SPECIFIED,
    REASON_VERTEX_VALUE,
)
from repro.graph import GraphBuilder
from repro.pregel import Computation
from repro.simfs import SimFileSystem


class Gossip(Computation):
    """Each vertex sends its (possibly negative) value to neighbors."""

    def initial_value(self, vertex_id, input_value):
        return input_value if input_value is not None else 0

    def compute(self, ctx, messages):
        if ctx.superstep >= 2:
            ctx.vote_to_halt()
            return
        ctx.send_message_to_all_neighbors(ctx.value)


class FailOn(Computation):
    def __init__(self, bad_vertex):
        self.bad_vertex = bad_vertex

    def compute(self, ctx, messages):
        if ctx.vertex_id == self.bad_vertex and ctx.superstep == 1:
            raise RuntimeError("planted failure")
        if ctx.superstep >= 2:
            ctx.vote_to_halt()
            return
        ctx.send_message_to_all_neighbors(1)


def ring_graph(n=6, values=None):
    builder = GraphBuilder(directed=False)
    builder.cycle(*range(n))
    graph = builder.build()
    for vertex_id, value in (values or {}).items():
        graph.set_vertex_value(vertex_id, value)
    return graph


class TestCategorySpecified:
    def test_only_listed_vertices_captured(self):
        class SpecTwo(DebugConfig):
            def vertices_to_capture(self):
                return (0, 3)

        run = debug_run(Gossip, ring_graph(), SpecTwo(), seed=1)
        assert run.reader.captured_vertex_ids() == [0, 3]
        record = run.captured(0, 0)
        assert record.reasons == [REASON_SPECIFIED]

    def test_captured_every_superstep_by_default(self):
        class SpecOne(DebugConfig):
            def vertices_to_capture(self):
                return (0,)

        run = debug_run(Gossip, ring_graph(), SpecOne(), seed=1)
        assert [r.superstep for r in run.history(0)] == [0, 1, 2]

    def test_neighbors_included_when_requested(self):
        class SpecPlusNbr(DebugConfig):
            def vertices_to_capture(self):
                return (0,)

            def capture_neighbors_of_vertices(self):
                return True

        run = debug_run(Gossip, ring_graph(), SpecPlusNbr(), seed=1)
        assert run.reader.captured_vertex_ids() == [0, 1, 5]
        assert run.captured(1, 0).reasons == [REASON_NEIGHBOR]


class TestCategoryRandom:
    def test_requested_number_chosen(self):
        class RandomThree(DebugConfig):
            def num_random_vertices_to_capture(self):
                return 3

        run = debug_run(Gossip, ring_graph(12), RandomThree(), seed=2)
        assert len(run.reader.captured_vertex_ids()) == 3
        for record in run.captures_at(0):
            assert record.reasons == [REASON_RANDOM]

    def test_selection_deterministic_per_seed(self):
        class RandomThree(DebugConfig):
            def num_random_vertices_to_capture(self):
                return 3

        first = debug_run(Gossip, ring_graph(12), RandomThree(), seed=2)
        second = debug_run(Gossip, ring_graph(12), RandomThree(), seed=2)
        assert first.reader.captured_vertex_ids() == second.reader.captured_vertex_ids()

    def test_selection_varies_with_seed(self):
        class RandomThree(DebugConfig):
            def num_random_vertices_to_capture(self):
                return 3

        picks = {
            tuple(
                debug_run(Gossip, ring_graph(30), RandomThree(), seed=s)
                .reader.captured_vertex_ids()
            )
            for s in range(5)
        }
        assert len(picks) > 1

    def test_request_larger_than_graph_capped(self):
        class RandomMany(DebugConfig):
            def num_random_vertices_to_capture(self):
                return 100

        run = debug_run(Gossip, ring_graph(6), RandomMany(), seed=1)
        assert len(run.reader.captured_vertex_ids()) == 6


class TestCategoryConstraints:
    def test_vertex_value_violation_captured(self):
        class NonNegValues(DebugConfig):
            def vertex_value_constraint(self, value, vertex_id, superstep):
                return value >= 0

        graph = ring_graph(6, values={2: -7, 0: 1, 1: 1, 3: 1, 4: 1, 5: 1})
        run = debug_run(Gossip, graph, NonNegValues(), seed=1)
        ids = run.reader.captured_vertex_ids()
        assert ids == [2]
        record = run.captured(2, 0)
        assert REASON_VERTEX_VALUE in record.reasons
        assert record.violations[0].kind == "vertex_value"
        assert record.violations[0].details["value"] == -7

    def test_message_violation_captured_with_endpoints(self):
        class NonNegMessages(DebugConfig):
            def message_value_constraint(self, message, source_id, target_id, superstep):
                return message >= 0

        graph = ring_graph(6, values={4: -1, 0: 0, 1: 0, 2: 0, 3: 0, 5: 0})
        run = debug_run(Gossip, graph, NonNegMessages(), seed=1)
        assert run.reader.captured_vertex_ids() == [4]
        violations = run.violations()
        assert {v.details["target"] for v in violations} == {3, 5}
        assert all(v.details["source"] == 4 for v in violations)
        assert all(v.details["message"] == -1 for v in violations)

    def test_clean_run_captures_nothing(self):
        class NonNegMessages(DebugConfig):
            def message_value_constraint(self, message, source_id, target_id, superstep):
                return message >= 0

        run = debug_run(Gossip, ring_graph(6), NonNegMessages(), seed=1)
        assert run.capture_count == 0
        assert run.violations() == []


class TestCategoryExceptions:
    def test_exception_captured_and_job_fails(self):
        run = debug_run(lambda: FailOn(3), ring_graph(), DebugConfig(), seed=1)
        assert not run.ok
        assert isinstance(run.failure, ComputeError)
        pairs = run.exceptions()
        assert len(pairs) == 1
        record, exception = pairs[0]
        assert record.vertex_id == 3
        assert record.reasons == [REASON_EXCEPTION]
        assert exception.type_name == "RuntimeError"
        assert "planted failure" in exception.traceback_text

    def test_continue_on_exception_keeps_running(self):
        class Tolerant(DebugConfig):
            def continue_on_exception(self):
                return True

        run = debug_run(lambda: FailOn(3), ring_graph(), Tolerant(), seed=1)
        assert run.ok
        assert run.result.converged
        assert len(run.exceptions()) == 1

    def test_exception_capture_disabled(self):
        class NoCapture(DebugConfig):
            def capture_exceptions(self):
                return False

        run = debug_run(lambda: FailOn(3), ring_graph(), NoCapture(), seed=1)
        assert not run.ok
        assert run.exceptions() == []


class TestCategoryAllActive:
    def test_every_computed_vertex_captured(self):
        run = debug_run(Gossip, ring_graph(4), CaptureAllActiveConfig(), seed=1)
        # 4 vertices x 3 supersteps
        assert run.capture_count == 12
        assert all(
            REASON_ALL_ACTIVE in record.reasons
            for record in run.reader.vertex_records
        )

    def test_superstep_window_respected(self):
        run = debug_run(
            Gossip, ring_graph(4), CaptureAllActiveConfig(from_superstep=2), seed=1
        )
        assert run.reader.supersteps() == [2]


class TestSafetyNet:
    def test_max_captures_stops_capturing(self):
        run = debug_run(
            Gossip,
            ring_graph(10),
            CaptureAllActiveConfig(max_captures=7),
            seed=1,
        )
        assert run.capture_count == 7
        assert run.capture_limit_hit

    def test_limit_not_hit_when_under(self):
        run = debug_run(Gossip, ring_graph(4), CaptureAllActiveConfig(), seed=1)
        assert not run.capture_limit_hit


class TestMasterCapture:
    def test_master_context_captured_every_superstep(self):
        run = debug_run(Gossip, ring_graph(), DebugConfig(), seed=1)
        masters = run.master_contexts()
        assert [m.superstep for m in masters] == [0, 1, 2]

    def test_master_aggregators_recorded(self):
        from repro.algorithms import GCMaster, GraphColoring

        run = debug_run(
            GraphColoring,
            ring_graph(4),
            DebugConfig(),
            master=GCMaster(),
            seed=1,
            max_supersteps=300,
        )
        snapshots = [m.aggregators.get("phase") for m in run.master_contexts()]
        assert snapshots[0] == "SELECT"
        assert "ASSIGN" in snapshots


class TestRunPlumbing:
    def test_trace_bytes_positive_when_captured(self):
        run = debug_run(Gossip, ring_graph(4), CaptureAllActiveConfig(), seed=1)
        assert run.trace_bytes > 0

    def test_summary_mentions_captures(self):
        run = debug_run(Gossip, ring_graph(4), CaptureAllActiveConfig(), seed=1)
        assert "captures" in run.summary()

    def test_caller_supplied_filesystem_used(self):
        fs = SimFileSystem()
        run = debug_run(
            Gossip, ring_graph(4), CaptureAllActiveConfig(), filesystem=fs,
            job_id="my-job", seed=1,
        )
        assert fs.is_dir("/graft/my-job")
        assert run.session.job_id == "my-job"

    def test_job_ids_unique_by_default(self):
        fs = SimFileSystem()
        first = debug_run(Gossip, ring_graph(4), DebugConfig(), filesystem=fs)
        second = debug_run(Gossip, ring_graph(4), DebugConfig(), filesystem=fs)
        assert first.session.job_id != second.session.job_id

    def test_results_identical_to_uninstrumented_run(self):
        from repro.pregel import run_computation

        plain = run_computation(Gossip, ring_graph(8), seed=5, num_workers=3)
        debugged = debug_run(
            Gossip, ring_graph(8), CaptureAllActiveConfig(), seed=5, num_workers=3
        )
        assert debugged.result.vertex_values == plain.vertex_values
        assert debugged.result.num_supersteps == plain.num_supersteps


class TestExtendedConstraints:
    def test_message_constraint_with_target_value(self):
        class NoSendToNegativeTargets(DebugConfig):
            def message_value_constraint_with_target(
                self, message, source_id, target_id, target_value, superstep
            ):
                return target_value >= 0

        graph = ring_graph(6, values={2: -7, 0: 0, 1: 0, 3: 0, 4: 0, 5: 0})
        run = debug_run(Gossip, graph, NoSendToNegativeTargets(), seed=1)
        violations = run.violations()
        assert violations
        assert all(v.kind == "message_target" for v in violations)
        assert {v.details["target"] for v in violations} == {2}
        senders = {v.details["source"] for v in violations}
        assert senders == {1, 3}

    def test_neighborhood_constraint(self):
        class NoEqualNeighborValues(DebugConfig):
            def neighborhood_constraint(self, value, neighbor_values, vertex_id, superstep):
                return all(value != nv for nv in neighbor_values.values())

        graph = ring_graph(4, values={0: "x", 1: "x", 2: "y", 3: "z"})
        run = debug_run(Gossip, graph, NoEqualNeighborValues(), seed=1)
        violations = run.violations(superstep=0)
        violating = {v.vertex_id for v in violations}
        assert violating == {0, 1}
        assert all(v.kind == "neighborhood" for v in violations)
