"""Unit tests for instrumentation mechanics (the Javassist-wrap analogue)."""

from repro.graft import CaptureAllActiveConfig, DebugConfig, debug_run
from repro.graft.debug_run import GraftSession
from repro.graft.instrumenter import instrument
from repro.graph import GraphBuilder
from repro.pregel import Computation, PregelEngine
from repro.simfs import SimFileSystem


class Probe(Computation):
    """Records which of its hooks were called, to prove delegation."""

    calls = []

    def initial_value(self, vertex_id, input_value):
        Probe.calls.append(("initial", vertex_id))
        return 100

    def default_vertex_value(self, vertex_id):
        Probe.calls.append(("default", vertex_id))
        return -1

    def compute(self, ctx, messages):
        Probe.calls.append(("compute", ctx.vertex_id, ctx.superstep))
        if ctx.superstep == 0 and ctx.vertex_id == 0:
            ctx.send_message("spawned", 1)
        ctx.vote_to_halt()


def small_graph():
    return GraphBuilder(directed=False).edge(0, 1).build()


def make_session(config, graph, num_workers=2):
    return GraftSession(
        config, graph, SimFileSystem(), "job-t", num_workers=num_workers
    )


class TestWrapping:
    def test_user_class_is_untouched(self):
        original_compute = Probe.compute
        session = make_session(DebugConfig(), small_graph())
        factory = instrument(Probe, session)
        wrapped = factory()
        assert type(wrapped).__name__ == "InstrumentedComputation"
        assert Probe.compute is original_compute

    def test_worker_ids_allocated_in_order(self):
        session = make_session(DebugConfig(), small_graph())
        factory = instrument(Probe, session)
        first, second = factory(), factory()
        assert first._worker_id == 0
        assert second._worker_id == 1

    def test_lifecycle_hooks_delegate(self):
        Probe.calls = []
        session = make_session(DebugConfig(), small_graph())
        engine = PregelEngine(
            instrument(Probe, session), small_graph(), listeners=[session],
            num_workers=2,
        )
        result = engine.run()
        session.finalize()
        kinds = {call[0] for call in Probe.calls}
        assert "initial" in kinds
        assert "compute" in kinds
        assert "default" in kinds  # the 'spawned' vertex was auto-created
        assert result.vertex_values["spawned"] == -1

    def test_initial_values_flow_through_wrapper(self):
        Probe.calls = []
        run = debug_run(Probe, small_graph(), DebugConfig(), num_workers=2)
        assert run.result.vertex_values[0] == 100


class TestCapturedContextContents:
    def test_record_has_the_five_pieces_plus_outcome(self):
        class Talk(Computation):
            def initial_value(self, vertex_id, input_value):
                return f"init-{vertex_id}"

            def compute(self, ctx, messages):
                ctx.set_value(f"new-{ctx.vertex_id}")
                ctx.send_message_to_all_neighbors("hi")
                if ctx.superstep >= 1:
                    ctx.vote_to_halt()

        run = debug_run(
            Talk, small_graph(), CaptureAllActiveConfig(), seed=4, num_workers=2
        )
        record = run.captured(0, 1)
        # Pre-call context (the paper's five pieces):
        assert record.vertex_id == 0
        assert record.value_before == "new-0"  # from superstep 0
        assert record.edges_before == {1: None}
        assert record.incoming == [(1, "hi")]
        assert record.aggregators == {}
        assert record.num_vertices == 2 and record.num_edges == 2
        # Outcome:
        assert record.value_after == "new-0"
        assert record.sent == [(1, "hi")]
        assert record.halted is True
        assert record.worker_id in (0, 1)
        assert record.run_seed == 4

    def test_edge_mutations_reflected_in_before_after(self):
        class DropEdge(Computation):
            def compute(self, ctx, messages):
                ctx.remove_edge(1)
                ctx.vote_to_halt()

        run = debug_run(DropEdge, small_graph(), CaptureAllActiveConfig())
        record = run.captured(0, 0)
        assert record.edges_before == {1: None}
        assert record.edges_after == {}

    def test_incoming_messages_carry_sources(self):
        class SendThenLook(Computation):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.send_message_to_all_neighbors(f"from-{ctx.vertex_id}")
                else:
                    ctx.vote_to_halt()

        run = debug_run(SendThenLook, small_graph(), CaptureAllActiveConfig())
        record = run.captured(0, 1)
        assert record.incoming == [(1, "from-1")]


class TestConstraintInterceptionPoints:
    def test_message_constraint_sees_send_time_values(self):
        seen = []

        class SpyConfig(DebugConfig):
            def message_value_constraint(self, message, source_id, target_id, superstep):
                seen.append((message, source_id, target_id, superstep))
                return True

        class SendOnce(Computation):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.send_message(1 - ctx.vertex_id, f"m{ctx.vertex_id}")
                ctx.vote_to_halt()

        debug_run(SendOnce, small_graph(), SpyConfig())
        assert ("m0", 0, 1, 0) in seen
        assert ("m1", 1, 0, 0) in seen

    def test_message_constraint_checked_before_combining(self):
        from repro.pregel import SumCombiner

        violations_seen = []

        class NegativeCheck(DebugConfig):
            def message_value_constraint(self, message, source_id, target_id, superstep):
                if message < 0:
                    violations_seen.append((source_id, message))
                    return False
                return True

        class MixedSends(Computation):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    # -5 and +3 combine to -2 at the barrier, but the
                    # constraint must see each send individually.
                    ctx.send_message(1 - ctx.vertex_id, -5 if ctx.vertex_id == 0 else 3)
                    ctx.send_message(1 - ctx.vertex_id, 2)
                ctx.vote_to_halt()

        debug_run(MixedSends, small_graph(), NegativeCheck(), combiner=SumCombiner())
        assert (0, -5) in violations_seen

    def test_vertex_constraint_checked_after_compute(self):
        checked = []

        class SpyConfig(DebugConfig):
            def vertex_value_constraint(self, value, vertex_id, superstep):
                checked.append(value)
                return True

        class TwoUpdates(Computation):
            def compute(self, ctx, messages):
                ctx.set_value("intermediate")
                ctx.set_value("final")
                ctx.vote_to_halt()

        debug_run(TwoUpdates, small_graph(), SpyConfig())
        # Only the post-compute value is checked (the paper's semantics).
        assert checked == ["final", "final"]


class TestTrackingScope:
    def test_no_capture_outside_superstep_window(self):
        class WindowedConfig(DebugConfig):
            def capture_all_active(self):
                return True

            def should_capture_superstep(self, superstep):
                return superstep == 1

        class ThreeSteps(Computation):
            def compute(self, ctx, messages):
                if ctx.superstep >= 2:
                    ctx.vote_to_halt()
                    return
                ctx.send_message_to_all_neighbors(0)

        run = debug_run(ThreeSteps, small_graph(), WindowedConfig())
        assert run.reader.supersteps() == [1]

    def test_capture_stops_at_limit_mid_superstep(self):
        run = debug_run(
            Probe,
            GraphBuilder(directed=False).cycle(*range(9)).build(),
            CaptureAllActiveConfig(max_captures=4),
        )
        assert run.capture_count == 4
