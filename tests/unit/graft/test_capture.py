"""Unit tests for capture records and their serialization."""

import pytest

from repro.common.serialization import default_codec
from repro.graft.capture import (
    ExceptionRecord,
    MasterContextRecord,
    VertexContextRecord,
    Violation,
    record_from_line,
    record_to_line,
)


def sample_record(**overrides):
    defaults = dict(
        vertex_id=672,
        superstep=41,
        worker_id=2,
        value_before={"state": "UNKNOWN"},
        edges_before={671: None, 673: None},
        incoming=[(671, "m1"), (673, "m2")],
        aggregators={"phase": "CONFLICT-RESOLUTION"},
        num_vertices=10**9,
        num_edges=3 * 10**9,
        run_seed=7,
        value_after={"state": "IN_SET"},
        edges_after={671: None, 673: None},
        sent=[(671, "out")],
        halted=False,
        reasons=["specified"],
        violations=[],
    )
    defaults.update(overrides)
    return VertexContextRecord(**defaults)


class TestVertexContextRecord:
    def test_key(self):
        assert sample_record().key == (672, 41)

    def test_active_flag(self):
        assert sample_record(halted=False).active
        assert not sample_record(halted=True).active

    def test_summary_mentions_essentials(self):
        summary = sample_record().summary()
        assert "672" in summary
        assert "41" in summary
        assert "specified" in summary

    def test_roundtrip_through_trace_line(self):
        record = sample_record()
        line = record_to_line(record, default_codec)
        assert "\n" not in line
        back = record_from_line(line, default_codec)
        assert back == record

    def test_roundtrip_with_violations(self):
        violation = Violation(
            kind="message",
            vertex_id=672,
            superstep=41,
            details={"message": -5, "source": 672, "target": 1},
        )
        record = sample_record(violations=[violation], reasons=["message_violation"])
        back = record_from_line(record_to_line(record, default_codec), default_codec)
        assert back.violations == [violation]

    def test_roundtrip_with_exception(self):
        exception = ExceptionRecord(
            type_name="ValueError", message="boom", traceback_text="Trace..."
        )
        record = sample_record(exception=exception, reasons=["exception"])
        back = record_from_line(record_to_line(record, default_codec), default_codec)
        assert back.exception == exception
        assert back.exception.summary() == "ValueError: boom"

    def test_non_string_ids_roundtrip(self):
        record = sample_record(vertex_id=("compound", 3), incoming=[((1, 2), "m")])
        back = record_from_line(record_to_line(record, default_codec), default_codec)
        assert back.vertex_id == ("compound", 3)
        assert back.incoming == [((1, 2), "m")]


class TestMasterContextRecord:
    def test_roundtrip(self):
        record = MasterContextRecord(
            superstep=3, aggregators={"phase": "ASSIGN", "round": 2}, halted=False
        )
        back = record_from_line(record_to_line(record, default_codec), default_codec)
        assert back == record

    def test_summary_shows_halt(self):
        record = MasterContextRecord(superstep=9, aggregators={}, halted=True)
        assert "HALT" in record.summary()


class TestWireErrors:
    def test_unknown_record_type_rejected(self):
        with pytest.raises(TypeError, match="not a capture record"):
            record_to_line("a string", default_codec)

    def test_unknown_kind_rejected(self):
        line = default_codec.dumps({"kind": "mystery"})
        with pytest.raises(ValueError, match="unknown trace record kind"):
            record_from_line(line, default_codec)
