"""Unit tests for the Context Reproducer (replay, fidelity, line tracing)."""

import pytest

from repro.common.errors import AggregatorError
from repro.graft import CaptureAllActiveConfig, DebugConfig, debug_run
from repro.graft.reproducer import (
    MasterReplayHarness,
    ReplayHarness,
    render_literal,
    replay_master_record,
    replay_record,
)
from repro.graph import GraphBuilder
from repro.pregel import Computation, Short16


class Doubler(Computation):
    """Doubles its value and reports it; conditional on incoming messages."""

    def initial_value(self, vertex_id, input_value):
        return 1

    def compute(self, ctx, messages):
        if messages:
            ctx.set_value(ctx.value + sum(messages))
        else:
            ctx.set_value(ctx.value * 2)
        ctx.send_message_to_all_neighbors(ctx.value)
        if ctx.superstep >= 1:
            ctx.vote_to_halt()


class UsesEverything(Computation):
    """Touches aggregators, rng, and globals — the full context surface."""

    def compute(self, ctx, messages):
        phase = ctx.aggregated_value("phase")
        draw = ctx.rng.randrange(1000)
        ctx.set_value((phase, draw, ctx.num_vertices, ctx.num_edges))
        ctx.aggregate("count", 1)
        ctx.vote_to_halt()


def pair_graph():
    return GraphBuilder(directed=False).edge(0, 1).build()


class TestReplayHarness:
    def test_replays_sends_and_value(self):
        harness = ReplayHarness(
            vertex_id=0,
            superstep=0,
            value=5,
            edges={1: None},
            incoming=[],
            aggregators={},
            num_vertices=2,
            num_edges=2,
        )
        outcome = harness.run(Doubler())
        assert outcome.value == 10
        assert outcome.sent == [(1, 10)]
        assert outcome.halted is False

    def test_incoming_messages_replayed(self):
        harness = ReplayHarness(
            vertex_id=0,
            superstep=1,
            value=5,
            edges={1: None},
            incoming=[(1, 7)],
            aggregators={},
            num_vertices=2,
            num_edges=2,
        )
        outcome = harness.run(Doubler())
        assert outcome.value == 12
        assert outcome.halted is True

    def test_aggregator_snapshot_visible(self):
        harness = ReplayHarness(
            vertex_id="v",
            superstep=3,
            value=None,
            edges={},
            incoming=[],
            aggregators={"phase": "X", "count": 0},
            num_vertices=9,
            num_edges=9,
        )
        outcome = harness.run(UsesEverything())
        assert outcome.value[0] == "X"
        assert outcome.aggregated == [("count", 1)]

    def test_unknown_aggregator_raises(self):
        harness = ReplayHarness(
            vertex_id="v", superstep=0, value=None, edges={}, incoming=[],
            aggregators={}, num_vertices=1, num_edges=0,
        )
        outcome = harness.run(UsesEverything())
        assert isinstance(outcome.exception, AggregatorError)

    def test_rng_replay_exact(self):
        kwargs = dict(
            vertex_id="v", superstep=2, value=None, edges={}, incoming=[],
            aggregators={"phase": "p", "count": 0},
            num_vertices=1, num_edges=0, run_seed=42,
        )
        first = ReplayHarness(**kwargs).run(UsesEverything())
        second = ReplayHarness(**kwargs).run(UsesEverything())
        assert first.value == second.value

    def test_exception_captured_in_outcome(self):
        class Boom(Computation):
            def compute(self, ctx, messages):
                raise LookupError("nope")

        harness = ReplayHarness(
            vertex_id=0, superstep=0, value=None, edges={}, incoming=[],
            aggregators={}, num_vertices=1, num_edges=0,
        )
        outcome = harness.run(Boom())
        assert isinstance(outcome.exception, LookupError)
        assert "nope" in outcome.summary()

    def test_harness_inputs_not_mutated_by_run(self):
        class EdgeEditor(Computation):
            def compute(self, ctx, messages):
                ctx.remove_edge(1)
                ctx.vote_to_halt()

        edges = {1: None}
        harness = ReplayHarness(
            vertex_id=0, superstep=0, value=None, edges=edges, incoming=[],
            aggregators={}, num_vertices=2, num_edges=2,
        )
        outcome = harness.run(EdgeEditor())
        assert outcome.edges == {}
        assert harness.edges == {1: None}


class TestReplayRecord:
    def _run(self):
        return debug_run(
            Doubler, pair_graph(), CaptureAllActiveConfig(), seed=3, num_workers=2
        )

    def test_faithful_replay(self):
        run = self._run()
        record = run.captured(0, 1)
        report = replay_record(record, Doubler)
        assert report.faithful
        assert report.mismatches == []

    def test_replay_detects_changed_code(self):
        run = self._run()
        record = run.captured(0, 0)

        class DoublerV2(Computation):
            """A 'fixed' version that behaves differently."""

            def compute(self, ctx, messages):
                ctx.set_value(999)
                ctx.vote_to_halt()

        report = replay_record(record, DoublerV2)
        assert not report.faithful
        fields = {m.field_name for m in report.mismatches}
        assert "value_after" in fields

    def test_line_tracing_records_executed_branch(self):
        run = self._run()
        no_messages = replay_record(run.captured(0, 0), Doubler)
        with_messages = replay_record(run.captured(0, 1), Doubler)
        assert no_messages.executed_lines != with_messages.executed_lines

    def test_annotated_source_marks_lines(self):
        run = self._run()
        report = replay_record(run.captured(0, 0), Doubler)
        annotated = report.annotated_source(Doubler())
        lines = annotated.splitlines()
        executed = [l for l in lines if l.startswith(">")]
        skipped = [l for l in lines if not l.startswith(">")]
        assert any("ctx.value * 2" in l for l in executed)
        assert any("sum(messages)" in l for l in skipped)

    def test_trace_lines_off(self):
        run = self._run()
        report = replay_record(run.captured(0, 0), Doubler, trace_lines=False)
        assert report.executed_lines == {}
        assert report.faithful

    def test_summary(self):
        run = self._run()
        report = replay_record(run.captured(0, 0), Doubler)
        assert "faithful" in report.summary()

    def test_exception_record_replays_exception(self):
        class Fragile(Computation):
            def compute(self, ctx, messages):
                raise ValueError("always")

        run = debug_run(Fragile, pair_graph(), DebugConfig(), seed=1)
        record, _exception = run.exceptions()[0]
        report = replay_record(record, Fragile)
        assert report.faithful  # same exception type is reproduced


class TestMasterReplay:
    def test_master_replay_applies_writes(self):
        from repro.algorithms import GCMaster, GraphColoring

        run = debug_run(
            GraphColoring, pair_graph(), DebugConfig(),
            master=GCMaster(), max_supersteps=100,
        )
        record = run.reader.master_at(0)
        outcome = replay_master_record(record, GCMaster)
        assert outcome.aggregators["phase"] == "SELECT"
        assert outcome.halted is False

    def test_master_harness_direct(self):
        from repro.algorithms import GCMaster
        from repro.algorithms.coloring import (
            PHASE_AGG,
            ROUND_AGG,
            UNCOLORED_COUNT_AGG,
            UNKNOWN_COUNT_AGG,
        )

        harness = MasterReplayHarness(
            superstep=5,
            aggregators={
                PHASE_AGG: "ASSIGN",
                ROUND_AGG: 1,
                UNKNOWN_COUNT_AGG: 0,
                UNCOLORED_COUNT_AGG: 0,
            },
        )
        outcome = harness.run(GCMaster())
        assert outcome.halted is True  # nothing uncolored -> master halts

    def test_wrong_record_type_rejected(self):
        from repro.common.errors import GraftError

        with pytest.raises(GraftError, match="not a master record"):
            replay_master_record("nope", GCMasterPlaceholder)


def GCMasterPlaceholder():  # pragma: no cover - never called
    raise AssertionError


class TestRenderLiteral:
    @pytest.mark.parametrize(
        "value",
        [None, True, 0, -3, 2.5, "text", b"\x00", [1, 2], (1,), (1, 2),
         {"a": 1}, {1: "a"}, {1, 2}, frozenset({3})],
    )
    def test_roundtrips_through_eval(self, value):
        assert eval(render_literal(value)) == value

    def test_nonfinite_floats(self):
        assert eval(render_literal(float("inf"))) == float("inf")
        rendered_nan = eval(render_literal(float("nan")))
        assert rendered_nan != rendered_nan

    def test_dataclass_rendered_as_constructor(self):
        from repro.algorithms.coloring import GCValue

        rendered = render_literal(GCValue(color=2, state="COLORED", priority=-1))
        assert rendered == "GCValue(color=2, state='COLORED', priority=-1)"
        assert eval(rendered, {"GCValue": GCValue}) == GCValue(
            color=2, state="COLORED", priority=-1
        )

    def test_fixed_width_int_rendered(self):
        assert eval(render_literal(Short16(-5)), {"Short16": Short16}) == Short16(-5)

    def test_nested_structures(self):
        from repro.algorithms.coloring import GCMessage

        value = [(671, GCMessage(kind="NBR_IN_SET", sender=671))]
        rendered = render_literal(value)
        assert eval(rendered, {"GCMessage": GCMessage}) == value
