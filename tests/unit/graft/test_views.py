"""Unit tests for the three GUI views."""

import pytest

from repro.common.errors import GraftError
from repro.graft import CaptureAllActiveConfig, DebugConfig, debug_run
from repro.graph import GraphBuilder
from repro.pregel import Computation


class ColorLike(Computation):
    """Tiny stand-in for the coloring run shown in Figures 3 and 4."""

    def initial_value(self, vertex_id, input_value):
        return f"color-{vertex_id % 2}"

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(ctx.value)
            return
        if ctx.vertex_id == 0:
            ctx.vote_to_halt()  # vertex 0 goes inactive in superstep 1
        elif ctx.superstep >= 1:
            ctx.vote_to_halt()


class NegativeSender(Computation):
    def compute(self, ctx, messages):
        if ctx.superstep == 0 and ctx.vertex_id == 2:
            ctx.send_message_to_all_neighbors(-9)
        ctx.vote_to_halt()


def chain_graph(n=4):
    return GraphBuilder(directed=False).path(*range(n)).build()


@pytest.fixture
def captured_run():
    class TwoSpecified(DebugConfig):
        def vertices_to_capture(self):
            return (0, 1)

    return debug_run(ColorLike, chain_graph(), TwoSpecified(), seed=1)


@pytest.fixture
def violation_run():
    class NonNeg(DebugConfig):
        def message_value_constraint(self, message, source_id, target_id, superstep):
            return message >= 0

    return debug_run(NegativeSender, chain_graph(), NonNeg(), seed=1)


class TestNodeLinkView:
    def test_shows_captured_vertices_and_values(self, captured_run):
        text = captured_run.node_link_view(superstep=0).render()
        assert "(0)" in text
        assert "color-0" in text

    def test_inactive_vertices_dimmed(self, captured_run):
        view = captured_run.node_link_view(superstep=1)
        text = view.render()
        assert "inactive (dimmed)" in text

    def test_small_nodes_for_uncaptured_neighbors(self, captured_run):
        view = captured_run.node_link_view(superstep=0)
        _captured, small = view.nodes()
        assert small == [2]

    def test_stepping(self, captured_run):
        view = captured_run.node_link_view()
        start = view.superstep
        assert view.next().superstep > start
        assert view.previous().superstep == start
        view.last()
        assert view.superstep == captured_run.reader.supersteps()[-1]

    def test_stepping_clamps_at_ends(self, captured_run):
        view = captured_run.node_link_view()
        first = view.superstep
        assert view.previous().superstep == first
        view.last()
        final = view.superstep
        assert view.next().superstep == final

    def test_status_boxes_green_without_violations(self, captured_run):
        boxes = captured_run.node_link_view(superstep=0).status_boxes()
        assert boxes == {"M": "green", "V": "green", "E": "green"}

    def test_message_box_red_on_violation(self, violation_run):
        boxes = violation_run.node_link_view(superstep=0).status_boxes()
        assert boxes["M"] == "red"
        assert boxes["V"] == "green"

    def test_messages_of_click_through(self, captured_run):
        messages = captured_run.node_link_view(superstep=1).messages_of(1)
        assert messages["incoming"]
        assert all(len(entry) == 2 for entry in messages["incoming"])

    def test_aggregator_panel_includes_global_data(self, captured_run):
        _aggs, globals_data = captured_run.node_link_view(superstep=0).aggregator_panel()
        assert globals_data["num_vertices"] == 4

    def test_dot_output_well_formed(self, captured_run):
        dot = captured_run.node_link_view(superstep=0).to_dot()
        assert dot.startswith("digraph")
        assert dot.endswith("}")
        assert '"0"' in dot

    def test_dot_escapes_quotes_in_ids(self):
        class Noisy(Computation):
            def initial_value(self, vertex_id, input_value):
                return 'va"lue'

            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        graph = GraphBuilder(directed=False).edge('a"b', "c").build()
        run = debug_run(Noisy, graph, CaptureAllActiveConfig(), seed=1)
        dot = run.node_link_view(superstep=0).to_dot()
        assert '"a\\"b"' in dot
        # No raw (unescaped) quote may terminate a DOT string early.
        for line in dot.splitlines():
            assert line.count('"') % 2 == 0 or "\\\"" in line

    def test_html_output_contains_rows(self, captured_run):
        html = captured_run.node_link_view(superstep=0).to_html()
        assert html.startswith("<html>")
        assert "Superstep 0" in html

    def test_empty_run_rejected(self):
        run = debug_run(ColorLike, chain_graph(), DebugConfig(), seed=1)
        with pytest.raises(GraftError, match="nothing was captured"):
            run.node_link_view()


class TestTabularView:
    def test_rows_and_summaries(self, captured_run):
        view = captured_run.tabular_view(superstep=0)
        rows = view.rows()
        assert len(rows) == 2
        summary = view.row_summary(rows[0])
        assert "value=" in summary

    def test_expand_shows_full_context(self, captured_run):
        text = captured_run.tabular_view(superstep=1).expand(1)
        assert "incoming:" in text
        assert "outgoing:" in text
        assert "aggregators:" in text
        assert "|V|=4" in text

    def test_search_by_id(self, captured_run):
        view = captured_run.tabular_view(superstep=0)
        # "0" matches vertex 0 by id and vertex 1 through its neighbor 0.
        assert 0 in {r.vertex_id for r in view.search("0")}

    def test_search_by_neighbor_id(self, captured_run):
        view = captured_run.tabular_view(superstep=0)
        matches = {r.vertex_id for r in view.search("2")}
        assert 1 in matches  # vertex 1 has neighbor 2

    def test_search_by_value(self, captured_run):
        view = captured_run.tabular_view(superstep=0)
        assert {r.vertex_id for r in view.search("color-1")} == {1}

    def test_search_by_message_content(self, captured_run):
        view = captured_run.tabular_view(superstep=1)
        assert view.search("color-0")

    def test_search_no_match(self, captured_run):
        assert captured_run.tabular_view(superstep=0).search("zzz") == []

    def test_render_limit(self, chain=None):
        run = debug_run(ColorLike, chain_graph(6), CaptureAllActiveConfig(), seed=1)
        text = run.tabular_view(superstep=0).render(limit=2)
        assert "more rows" in text

    def test_stepping(self, captured_run):
        view = captured_run.tabular_view()
        start = view.superstep
        assert view.next().superstep > start


class TestViolationsView:
    def test_violation_rows(self, violation_run):
        rows = violation_run.violations_view().violation_rows()
        assert len(rows) == 2  # vertex 2 sent -9 to both neighbors
        vertex_id, superstep, kind, details = rows[0]
        assert vertex_id == 2
        assert kind == "message"
        assert details["message"] == -9

    def test_filter_by_kind(self, violation_run):
        view = violation_run.violations_view()
        assert view.violation_rows(kind="vertex_value") == []
        assert len(view.violation_rows(kind="message")) == 2

    def test_supersteps_with_violations(self, violation_run):
        assert violation_run.violations_view().supersteps_with_violations() == [0]

    def test_first_violation(self, violation_run):
        first = violation_run.violations_view().first_violation()
        assert first.vertex_id == 2
        assert first.superstep == 0

    def test_first_violation_none_when_clean(self, captured_run):
        assert captured_run.violations_view().first_violation() is None

    def test_exception_rows_with_traceback(self):
        class Boom(Computation):
            def compute(self, ctx, messages):
                raise IndexError("off by one")

        run = debug_run(Boom, chain_graph(), DebugConfig(), seed=1)
        rows = run.violations_view().exception_rows()
        assert rows
        _vid, _step, summary, traceback_text = rows[0]
        assert "IndexError" in summary
        assert "off by one" in traceback_text

    def test_render_includes_counts(self, violation_run):
        text = violation_run.violations_view().render()
        assert "2 violations, 0 exceptions" in text

    def test_render_traceback_opt_in(self):
        class Boom(Computation):
            def compute(self, ctx, messages):
                raise IndexError("off by one")

        run = debug_run(Boom, chain_graph(), DebugConfig(), seed=1)
        without = run.violations_view().render()
        with_tb = run.violations_view().render(include_tracebacks=True)
        assert "Traceback" not in without
        assert "Traceback" in with_tb
