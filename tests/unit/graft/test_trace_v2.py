"""Unit tests for the v2 trace format: framing, index, lazy reader, recovery."""

import json

import pytest

from repro.common.errors import TraceError
from repro.graft.capture import (
    ExceptionRecord,
    MasterContextRecord,
    Violation,
)
from repro.graft.trace import (
    TraceReader,
    TraceStore,
    canonical_trace_digest,
    canonical_trace_lines,
    iter_canonical_trace_lines,
    iter_file_records,
    master_trace_path,
    trace_stats,
    worker_trace_path,
)
from repro.graft.traceformat import IDX_MAGIC, TRACE_MAGIC
from tests.unit.graft.test_capture import sample_record

JOB = "jobV2"


def build_store(fs, fmt="v2", vertices=12, supersteps=4, workers=3):
    """A small trace with violations, an exception, and per-step flushes."""
    store = TraceStore(fs, JOB, workers, format=fmt)
    for step in range(supersteps):
        for vid in range(vertices):
            violations = (
                [Violation("message", vid, step, {"bad": True})]
                if vid == 2 and step == 1 else []
            )
            exception = (
                ExceptionRecord("ValueError", "boom", "tb")
                if vid == 5 and step == 2 else None
            )
            store.write_vertex_record(sample_record(
                vertex_id=vid, superstep=step, worker_id=vid % workers,
                violations=violations, exception=exception,
            ))
        store.write_master_record(
            MasterContextRecord(step, {"agg": step * 1.5})
        )
        store.flush()
    store.close()
    return store


def readers(fs):
    return (
        TraceReader(fs, JOB, mode="lazy"),
        TraceReader(fs, JOB, mode="eager"),
    )


class TestV2FileLayout:
    def test_magic_and_sidecar(self, fs):
        build_store(fs)
        path = worker_trace_path(JOB, 0)
        assert fs.read_range(path, 0, len(TRACE_MAGIC)) == TRACE_MAGIC
        idx_lines = list(fs.iter_lines(path + ".idx"))
        assert idx_lines[0].startswith(IDX_MAGIC)
        # One index line per flush that had records for this worker.
        assert all(line.startswith("B ") for line in idx_lines[1:])
        assert len(idx_lines) == 5  # header + 4 superstep flushes

    def test_index_prefix_is_json_free(self, fs):
        build_store(fs)
        line = list(fs.iter_lines(worker_trace_path(JOB, 0) + ".idx"))[1]
        prefix = line.partition("|")[0].split()
        assert prefix[0] == "B"
        assert all(token.lstrip("-").isdigit() for token in prefix[1:])
        entries = json.loads(line.partition("|")[2])
        assert len(entries) == int(prefix[6])

    def test_iter_file_records_both_formats(self, fs):
        build_store(fs, fmt="v2")
        v2 = list(iter_file_records(fs, worker_trace_path(JOB, 1)))
        fs1 = type(fs)()
        build_store(fs1, fmt="v1")
        v1 = list(iter_file_records(fs1, worker_trace_path(JOB, 1)))
        assert [r.key for r in v2] == [r.key for r in v1]
        assert v2[0].value_before == v1[0].value_before

    def test_unknown_format_rejected(self, fs):
        with pytest.raises(TraceError, match="unknown trace format"):
            TraceStore(fs, JOB, 1, format="v3")

    def test_unknown_reader_mode_rejected(self, fs):
        build_store(fs)
        with pytest.raises(TraceError, match="unknown TraceReader mode"):
            TraceReader(fs, JOB, mode="sometimes")


class TestLazyEagerEquivalence:
    def test_all_queries_agree(self, fs):
        build_store(fs)
        lazy, eager = readers(fs)
        assert len(lazy) == len(eager) == 48
        assert lazy.supersteps() == eager.supersteps() == [0, 1, 2, 3]
        for vid in range(12):
            for step in range(4):
                assert lazy.has(vid, step) and eager.has(vid, step)
                a, b = lazy.get(vid, step), eager.get(vid, step)
                assert a.key == b.key
                assert a.value_before == b.value_before
                assert a.violations == b.violations
        assert not lazy.has(99, 0) and not eager.has(99, 0)
        for step in range(4):
            assert [r.key for r in lazy.at_superstep(step)] == \
                [r.key for r in eager.at_superstep(step)]
        for vid in (0, 5, 11):
            assert [r.superstep for r in lazy.history(vid)] == \
                [r.superstep for r in eager.history(vid)]
        assert lazy.captured_vertex_ids() == eager.captured_vertex_ids()
        assert [(v.vertex_id, v.superstep) for v in lazy.violations()] == \
            [(v.vertex_id, v.superstep) for v in eager.violations()]
        assert [(r.key, e.type_name) for r, e in lazy.exceptions()] == \
            [(r.key, e.type_name) for r, e in eager.exceptions()]
        assert [r.key for r in lazy.vertex_records] == \
            [r.key for r in eager.vertex_records]
        assert [m.superstep for m in lazy.master_records] == \
            [m.superstep for m in eager.master_records]
        assert lazy.master_at(2).aggregators == eager.master_at(2).aggregators

    def test_get_missing_raises_not_captured(self, fs):
        build_store(fs)
        for reader in readers(fs):
            with pytest.raises(TraceError, match="not captured"):
                reader.get(99, 0)
            with pytest.raises(TraceError, match="not captured"):
                reader.get(0, 99)

    def test_duplicate_records_last_wins_in_both_modes(self, fs):
        """Failure recovery appends a second record for the same key."""
        store = TraceStore(fs, JOB, 1)
        store.write_vertex_record(sample_record(
            vertex_id=1, superstep=0, worker_id=0, value_after="first"))
        store.flush()
        store.write_vertex_record(sample_record(
            vertex_id=1, superstep=0, worker_id=0, value_after="retry"))
        store.close()
        lazy, eager = readers(fs)
        assert lazy.get(1, 0).value_after == "retry"
        assert eager.get(1, 0).value_after == "retry"
        assert len(lazy) == len(eager) == 1

    def test_superseded_violation_not_reported(self, fs):
        """A re-executed vertex whose retry is clean hides the old violation."""
        store = TraceStore(fs, JOB, 1)
        store.write_vertex_record(sample_record(
            vertex_id=1, superstep=0, worker_id=0,
            violations=[Violation("message", 1, 0, {})]))
        store.flush()
        store.write_vertex_record(sample_record(
            vertex_id=1, superstep=0, worker_id=0))
        store.close()
        lazy, eager = readers(fs)
        assert lazy.violations() == [] == eager.violations()

    def test_at_superstep_returns_cached_tuple(self, fs):
        build_store(fs)
        lazy, eager = readers(fs)
        assert lazy.at_superstep(1) is lazy.at_superstep(1)
        assert eager.at_superstep(1) is eager.at_superstep(1)
        assert eager.at_superstep(99) == ()

    def test_repeated_get_uses_record_cache(self, fs):
        build_store(fs)
        lazy = TraceReader(fs, JOB, mode="lazy")
        lazy.get(3, 2)
        calls_after_first = fs.read_calls
        lazy.get(3, 2)
        assert fs.read_calls == calls_after_first

    def test_point_query_reads_one_block_not_the_trace(self, fs):
        build_store(fs, vertices=300, supersteps=6)
        trace_total = sum(
            fs.stat(worker_trace_path(JOB, w)).size for w in range(3)
        ) + fs.stat(master_trace_path(JOB)).size
        idx_total = sum(
            fs.stat(worker_trace_path(JOB, w) + ".idx").size for w in range(3)
        ) + fs.stat(master_trace_path(JOB) + ".idx").size
        before = fs.bytes_read
        reader = TraceReader(fs, JOB, mode="lazy")
        reader.get(7, 3)
        lazy_cost = fs.bytes_read - before
        # Beyond the sidecars, open + one point query touches only the
        # file headers, the (tiny) master file, and ONE data block — never
        # whole worker trace files.
        assert lazy_cost - idx_total < trace_total / 2
        before = fs.bytes_read
        TraceReader(fs, JOB, mode="eager").get(7, 3)
        eager_cost = fs.bytes_read - before
        assert lazy_cost - idx_total < eager_cost / 2


class TestRecovery:
    def test_truncated_idx_recovers_all_records(self, fs):
        build_store(fs)
        idx = worker_trace_path(JOB, 0) + ".idx"
        data = fs.read_bytes(idx)
        fs.create(idx, overwrite=True)
        fs.append_bytes(idx, data[: len(data) // 2])
        lazy, eager = readers(fs)
        assert len(lazy) == len(eager) == 48
        assert lazy.get(0, 3).key == (0, 3)
        stats = trace_stats(fs, JOB)
        assert 0 < stats["totals"]["index_coverage"] < 1.0
        worker0 = next(
            f for f in stats["files"] if f["path"].endswith("worker-0.trace")
        )
        assert worker0["recovered_records"] > 0

    def test_missing_idx_recovers_all_records(self, fs):
        build_store(fs)
        fs.delete(worker_trace_path(JOB, 1) + ".idx")
        lazy, eager = readers(fs)
        assert len(lazy) == len(eager) == 48
        assert [r.key for r in lazy.at_superstep(2)] == \
            [r.key for r in eager.at_superstep(2)]

    def test_garbage_idx_recovers_all_records(self, fs):
        build_store(fs)
        idx = worker_trace_path(JOB, 2) + ".idx"
        fs.create(idx, overwrite=True)
        fs.append_bytes(idx, b"\x00\xff not an index\n")
        lazy = TraceReader(fs, JOB, mode="lazy")
        assert len(lazy) == 48

    def test_torn_final_trace_frame_is_dropped(self, fs):
        """A crash mid-append leaves a partial frame; reads ignore it."""
        build_store(fs)
        path = worker_trace_path(JOB, 0)
        fs.delete(path + ".idx")
        data = fs.read_bytes(path)
        fs.create(path, overwrite=True)
        fs.append_bytes(path, data + b"\x00\x00\x01\x00\x01trunc")
        records = list(iter_file_records(fs, path))
        assert [r.key for r in records] == \
            [r.key for r in iter_file_records(fs, path)]
        lazy = TraceReader(fs, JOB, mode="lazy")
        assert len(lazy) == 48  # the torn frame contributed nothing

    def test_digest_unchanged_by_idx_loss(self, fs):
        build_store(fs)
        want = canonical_trace_digest(fs, JOB)
        fs.delete(worker_trace_path(JOB, 0) + ".idx")
        assert canonical_trace_digest(fs, JOB) == want


class TestV1Fallback:
    def test_lazy_reader_reads_v1_files(self, fs):
        build_store(fs, fmt="v1")
        lazy, eager = readers(fs)
        assert len(lazy) == len(eager) == 48
        assert lazy.get(2, 1).violations == eager.get(2, 1).violations
        assert [r.key for r in lazy.vertex_records] == \
            [r.key for r in eager.vertex_records]

    def test_digest_identical_across_formats(self, fs):
        build_store(fs, fmt="v2")
        fs1 = type(fs)()
        build_store(fs1, fmt="v1")
        assert canonical_trace_digest(fs, JOB) == \
            canonical_trace_digest(fs1, JOB)


class TestCanonicalStreaming:
    def test_iterator_matches_list_form(self, fs):
        build_store(fs)
        assert list(iter_canonical_trace_lines(fs, JOB)) == \
            canonical_trace_lines(fs, JOB)

    def test_duplicates_are_preserved(self, fs):
        store = TraceStore(fs, JOB, 1)
        store.write_vertex_record(sample_record(
            vertex_id=1, superstep=0, worker_id=0, value_after="first"))
        store.write_vertex_record(sample_record(
            vertex_id=1, superstep=0, worker_id=0, value_after="retry"))
        store.close()
        lines = canonical_trace_lines(fs, JOB)
        assert len(lines) == 2  # the merge never dedups

    def test_worker_id_normalized(self, fs):
        build_store(fs)
        for line in canonical_trace_lines(fs, JOB):
            payload = json.loads(line)
            if payload.get("kind") == "vertex":
                assert payload["worker_id"] == 0

    def test_missing_job_raises(self, fs):
        with pytest.raises(TraceError, match="no trace directory"):
            canonical_trace_lines(fs, "ghost")


class TestTraceStats:
    def test_totals_and_per_file_fields(self, fs):
        build_store(fs)
        stats = trace_stats(fs, JOB)
        assert stats["totals"]["records"] == 52  # 48 vertex + 4 master
        assert stats["totals"]["files"] == 4
        assert stats["totals"]["index_coverage"] == 1.0
        for info in stats["files"]:
            assert info["format"] == "v2"
            assert info["bytes"] > 0
            assert info["index_bytes"] > 0
        worker0 = next(
            f for f in stats["files"] if f["path"].endswith("worker-2.trace")
        )
        assert worker0["violations"] == 1

    def test_v1_files_reported(self, fs):
        build_store(fs, fmt="v1")
        stats = trace_stats(fs, JOB)
        assert all(f["format"] == "v1" for f in stats["files"])
        assert stats["totals"]["records"] == 52

    def test_missing_job_raises(self, fs):
        with pytest.raises(TraceError, match="no trace directory"):
            trace_stats(fs, "ghost")
