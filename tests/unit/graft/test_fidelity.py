"""Unit tests for the replay fidelity checker."""

from repro.graft import CaptureAllActiveConfig, debug_run, verify_run_fidelity
from repro.graph import GraphBuilder
from repro.pregel import Computation


class Stable(Computation):
    def initial_value(self, vertex_id, input_value):
        return 0

    def compute(self, ctx, messages):
        ctx.set_value(ctx.value + len(messages))
        if ctx.superstep < 2:
            ctx.send_message_to_all_neighbors("m")
        else:
            ctx.vote_to_halt()


class Unstable(Computation):
    """Depends on hidden instance state — the Section 7 limitation."""

    def __init__(self):
        self.hidden_calls = 0

    def initial_value(self, vertex_id, input_value):
        return 0

    def compute(self, ctx, messages):
        self.hidden_calls += 1
        ctx.set_value(self.hidden_calls)
        ctx.vote_to_halt()


def ring():
    return GraphBuilder(directed=False).cycle(*range(5)).build()


class TestFidelity:
    def test_clean_run_fully_faithful(self):
        run = debug_run(Stable, ring(), CaptureAllActiveConfig(), seed=1)
        report = verify_run_fidelity(run)
        assert report.ok
        assert report.total == run.capture_count
        assert "replay faithfully" in report.summary()

    def test_limit_caps_work(self):
        run = debug_run(Stable, ring(), CaptureAllActiveConfig(), seed=1)
        report = verify_run_fidelity(run, limit=3)
        assert report.total == 3

    def test_hidden_state_detected_as_unfaithful(self):
        # Each worker instance counts calls across vertices; a fresh replay
        # instance starts at zero, so most records diverge — exactly the
        # external-data limitation the paper discusses in Section 7.
        run = debug_run(Unstable, ring(), CaptureAllActiveConfig(), seed=1)
        report = verify_run_fidelity(run)
        assert not report.ok
        assert report.unfaithful
        assert "divergent" in report.summary()
        # The pre-flight lint pass saw this coming: GL001 (worker-local
        # state) predicts exactly this replay divergence.
        assert "GL001" in {f.rule_id for f in report.predicted_by}
        assert "predicted by static analysis" in report.summary()

    def test_alternate_factory_used(self):
        class Rewritten(Computation):
            def compute(self, ctx, messages):
                ctx.set_value("other")
                ctx.vote_to_halt()

        run = debug_run(Stable, ring(), CaptureAllActiveConfig(), seed=1)
        report = verify_run_fidelity(run, computation_factory=Rewritten)
        assert not report.ok
