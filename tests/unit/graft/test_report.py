"""Unit tests for the HTML report export."""

import os

from repro.graft import CaptureAllActiveConfig, DebugConfig, debug_run
from repro.graph import GraphBuilder
from repro.pregel import Computation


class Talker(Computation):
    def initial_value(self, vertex_id, input_value):
        return vertex_id

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(-1 if ctx.vertex_id == 0 else 1)
        ctx.vote_to_halt()


class NonNegMessages(DebugConfig):
    def capture_all_active(self):
        return True

    def message_value_constraint(self, message, source_id, target_id, superstep):
        return message >= 0


def make_run():
    graph = GraphBuilder(directed=False).cycle(0, 1, 2, 3).build()
    return debug_run(Talker, graph, NonNegMessages(), seed=1, num_workers=2)


class TestHtmlReport:
    def test_report_is_complete_html(self):
        report = make_run().html_report()
        assert report.startswith("<!DOCTYPE html>")
        assert report.endswith("</html>")

    def test_report_contains_run_summary_and_vertices(self):
        run = make_run()
        report = run.html_report()
        assert run.session.job_id in report
        assert "Superstep 0" in report
        assert "vertex 0" in report

    def test_violations_marked_red(self):
        report = make_run().html_report()
        assert "class='red'" in report
        assert "[M]" in report

    def test_master_table_present(self):
        report = make_run().html_report()
        assert "Master contexts" in report

    def test_values_escaped(self):
        class HtmlValue(Computation):
            def initial_value(self, vertex_id, input_value):
                return "<script>alert(1)</script>"

            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        graph = GraphBuilder(directed=False).edge(0, 1).build()
        run = debug_run(HtmlValue, graph, CaptureAllActiveConfig(), seed=1)
        report = run.html_report()
        assert "<script>alert" not in report
        assert "&lt;script&gt;" in report

    def test_export_to_file(self, tmp_path):
        run = make_run()
        path = run.export_html_report(str(tmp_path / "report.html"))
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as handle:
            assert "Graft report" in handle.read()

    def test_large_capture_sets_truncated(self):
        from repro.graft.report import render_html_report

        graph = GraphBuilder(directed=False).cycle(*range(12)).build()
        run = debug_run(Talker, graph, CaptureAllActiveConfig(), seed=1)
        report = render_html_report(run, max_vertices_per_superstep=5)
        assert "more</p>" in report


class TestTraceExport:
    def test_traces_exported_to_disk(self, tmp_path):
        run = make_run()
        run.export_traces(str(tmp_path))
        job_dir = tmp_path / "graft" / run.session.job_id
        assert job_dir.is_dir()
        assert any(p.suffix == ".trace" for p in job_dir.iterdir())
