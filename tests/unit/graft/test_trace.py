"""Unit tests for the trace store and reader."""

import pytest

from repro.common.errors import TraceError
from repro.graft.capture import MasterContextRecord, Violation
from repro.graft.trace import (
    TraceReader,
    TraceStore,
    iter_file_records,
    master_trace_path,
    worker_trace_path,
)
from tests.unit.graft.test_capture import sample_record


def store_with_records(fs, records, masters=(), job_id="jobX", num_workers=3):
    store = TraceStore(fs, job_id, num_workers)
    for record in records:
        store.write_vertex_record(record)
    for master in masters:
        store.write_master_record(master)
    store.close()
    return store


class TestTraceStore:
    def test_per_worker_files_created(self, fs):
        TraceStore(fs, "job1", num_workers=2)
        assert fs.is_file(worker_trace_path("job1", 0))
        assert fs.is_file(worker_trace_path("job1", 1))
        assert fs.is_file(master_trace_path("job1"))

    def test_records_land_in_worker_file(self, fs):
        store_with_records(fs, [sample_record(worker_id=1)])
        records = list(iter_file_records(fs, worker_trace_path("jobX", 1)))
        assert len(records) == 1
        assert not list(iter_file_records(fs, worker_trace_path("jobX", 0)))

    def test_total_bytes_counts_job_directory(self, fs):
        store = store_with_records(fs, [sample_record()])
        assert store.total_bytes() > 0
        assert store.total_bytes() == fs.total_bytes("/graft/jobX")

    def test_records_written_counter(self, fs):
        store = store_with_records(
            fs,
            [sample_record(), sample_record(vertex_id=1)],
            masters=[MasterContextRecord(0, {})],
        )
        assert store.records_written == 3


class TestTraceReader:
    def test_reads_across_worker_files(self, fs):
        records = [
            sample_record(vertex_id=1, worker_id=0),
            sample_record(vertex_id=2, worker_id=1),
            sample_record(vertex_id=3, worker_id=2),
        ]
        store_with_records(fs, records)
        reader = TraceReader(fs, "jobX")
        assert len(reader) == 3
        assert reader.captured_vertex_ids() == [1, 2, 3]

    def test_get_by_key(self, fs):
        store_with_records(fs, [sample_record(vertex_id=5, superstep=2)])
        reader = TraceReader(fs, "jobX")
        assert reader.get(5, 2).vertex_id == 5
        assert reader.has(5, 2)
        assert not reader.has(5, 3)

    def test_get_missing_raises(self, fs):
        store_with_records(fs, [])
        with pytest.raises(TraceError, match="not captured"):
            TraceReader(fs, "jobX").get(1, 1)

    def test_at_superstep_sorted_by_id(self, fs):
        records = [
            sample_record(vertex_id=9, superstep=1),
            sample_record(vertex_id=1, superstep=1),
            sample_record(vertex_id=5, superstep=2),
        ]
        store_with_records(fs, records)
        reader = TraceReader(fs, "jobX")
        assert [r.vertex_id for r in reader.at_superstep(1)] == [1, 9]

    def test_history_in_superstep_order(self, fs):
        records = [
            sample_record(vertex_id=1, superstep=3),
            sample_record(vertex_id=1, superstep=1),
            sample_record(vertex_id=2, superstep=2),
        ]
        store_with_records(fs, records)
        history = TraceReader(fs, "jobX").history(1)
        assert [r.superstep for r in history] == [1, 3]

    def test_supersteps_listing(self, fs):
        store_with_records(
            fs, [sample_record(superstep=4), sample_record(vertex_id=1, superstep=0)]
        )
        assert TraceReader(fs, "jobX").supersteps() == [0, 4]

    def test_violations_filtered_by_superstep(self, fs):
        violation = Violation("message", 1, 2, {"message": -1})
        records = [
            sample_record(vertex_id=1, superstep=2, violations=[violation]),
            sample_record(vertex_id=2, superstep=3),
        ]
        store_with_records(fs, records)
        reader = TraceReader(fs, "jobX")
        assert reader.violations() == [violation]
        assert reader.violations(superstep=2) == [violation]
        assert reader.violations(superstep=3) == []

    def test_exceptions_listing(self, fs):
        from repro.graft.capture import ExceptionRecord

        exception = ExceptionRecord("KeyError", "'x'", "trace")
        store_with_records(fs, [sample_record(exception=exception)])
        reader = TraceReader(fs, "jobX")
        pairs = reader.exceptions()
        assert len(pairs) == 1
        assert pairs[0][1] == exception

    def test_master_records(self, fs):
        masters = [
            MasterContextRecord(0, {"phase": "A"}),
            MasterContextRecord(1, {"phase": "B"}),
        ]
        store_with_records(fs, [], masters=masters)
        reader = TraceReader(fs, "jobX")
        assert reader.master_at(1).aggregators == {"phase": "B"}
        assert reader.master_at(99) is None
        assert len(reader.master_records) == 2

    def test_missing_job_rejected(self, fs):
        with pytest.raises(TraceError, match="no trace directory"):
            TraceReader(fs, "ghost-job")
