"""Unit tests for the ready-made constraint configs."""

from repro.algorithms import (
    BuggyGraphColoring,
    ConnectedComponents,
    GCMaster,
    GraphColoring,
    ShortestPaths,
)
from repro.datasets import load_dataset, premade_graph
from repro.graft import (
    BoundedValues,
    DistinctNeighborValues,
    MonotoneValues,
    NonNegativeMessages,
    NonNegativeValues,
    NoSelfMessages,
    debug_run,
)
from repro.graft.constraint_library import _numeric
from repro.graph import GraphBuilder
from repro.pregel import Computation, Short16


class TestNumericCoercion:
    def test_plain_numbers_pass_through(self):
        assert _numeric(3) == 3
        assert _numeric(-2.5) == -2.5

    def test_wrapped_numbers_unwrap(self):
        assert _numeric(Short16(7)) == 7

    def test_bools_are_flags_not_magnitudes(self):
        assert _numeric(True) is None
        assert _numeric(False) is None

    def test_wrapped_bools_are_flags_too(self):
        # Regression: a wrapper whose .value is a bool (a halted/active flag,
        # a visited marker) used to be range-checked as 0/1.
        class Flag:
            def __init__(self, value):
                self.value = value

        assert _numeric(Flag(True)) is None
        assert _numeric(Flag(False)) is None
        assert _numeric(Flag(4)) == 4

    def test_non_numeric_rejected(self):
        assert _numeric("text") is None
        assert _numeric(None) is None

    def test_bool_valued_wrapper_not_flagged_by_nonneg(self):
        class Flag:
            def __init__(self, value):
                self.value = value

        config = NonNegativeValues()
        assert config.vertex_value_constraint(Flag(False), "v", 0)
        monotone = MonotoneValues("decreasing")
        assert monotone.vertex_value_constraint(Flag(True), "v", 0)
        assert monotone.vertex_value_constraint(Flag(False), "v", 1)


class SendOwnValue(Computation):
    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(ctx.value)
        ctx.vote_to_halt()


class TestNonNegativeConfigs:
    def test_negative_message_flagged(self):
        g = GraphBuilder(directed=False).edge(0, 1).build()
        g.set_vertex_value(0, -3)
        g.set_vertex_value(1, 3)
        run = debug_run(SendOwnValue, g, NonNegativeMessages(), seed=1)
        assert [v.details["message"] for v in run.violations()] == [-3]

    def test_short16_messages_checked(self):
        g = GraphBuilder(directed=False).edge(0, 1).build()
        g.set_vertex_value(0, Short16(-1))
        g.set_vertex_value(1, Short16(1))
        run = debug_run(SendOwnValue, g, NonNegativeMessages(), seed=1)
        assert len(run.violations()) == 1

    def test_non_numeric_messages_ignored(self):
        g = GraphBuilder(directed=False).edge(0, 1).build()
        g.set_vertex_value(0, "text")
        g.set_vertex_value(1, ("a", 1))
        run = debug_run(SendOwnValue, g, NonNegativeMessages(), seed=1)
        assert run.violations() == []

    def test_negative_value_flagged(self):
        g = GraphBuilder(directed=False).edge(0, 1).build()
        g.set_vertex_value(0, -1)

        class Keep(Computation):
            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        run = debug_run(Keep, g, NonNegativeValues(), seed=1)
        assert {v.vertex_id for v in run.violations()} == {0}


class TestBoundedValues:
    def test_out_of_range_detected(self, petersen):
        from repro.algorithms import PageRank

        # Ranks hover near 1.0 on a regular graph; a tight band is clean,
        # an absurd one flags everything.
        clean = debug_run(
            lambda: PageRank(iterations=4), petersen, BoundedValues(0.0, 10.0),
            seed=1,
        )
        assert clean.violations() == []
        strict = debug_run(
            lambda: PageRank(iterations=4), petersen, BoundedValues(2.0, 3.0),
            seed=1,
        )
        assert strict.violations()

    def test_open_ended_bounds(self):
        config = BoundedValues(low=0)
        assert config.vertex_value_constraint(5, "v", 0)
        assert not config.vertex_value_constraint(-5, "v", 0)
        assert BoundedValues(high=10).vertex_value_constraint(-99, "v", 0)


class TestMonotoneValues:
    def test_decreasing_algorithms_clean(self, petersen):
        run = debug_run(
            ConnectedComponents, petersen, MonotoneValues("decreasing"), seed=1
        )
        assert run.violations() == []

    def test_sssp_distances_only_decrease(self):
        g = premade_graph("cycle6")
        run = debug_run(
            lambda: ShortestPaths(0), g, MonotoneValues("decreasing"), seed=1
        )
        assert run.violations() == []

    def test_regression_detected(self):
        class Bouncy(Computation):
            def initial_value(self, vertex_id, input_value):
                return 10

            def compute(self, ctx, messages):
                ctx.set_value(5 if ctx.superstep == 0 else 7)  # goes back up
                if ctx.superstep >= 1:
                    ctx.vote_to_halt()

        g = GraphBuilder(directed=False).edge(0, 1).build()
        run = debug_run(Bouncy, g, MonotoneValues("decreasing"), seed=1)
        assert run.violations()
        assert all(v.superstep == 1 for v in run.violations())

    def test_increasing_direction(self):
        import pytest

        with pytest.raises(ValueError):
            MonotoneValues("sideways")
        config = MonotoneValues("increasing")
        assert config.vertex_value_constraint(1, "v", 0)
        assert config.vertex_value_constraint(2, "v", 1)
        assert not config.vertex_value_constraint(1, "v", 2)


class TestMonotoneValuesDirect:
    def test_first_observation_always_passes(self):
        config = MonotoneValues("decreasing")
        assert config.vertex_value_constraint(99, "v", 0)

    def test_history_is_per_vertex(self):
        config = MonotoneValues("decreasing")
        assert config.vertex_value_constraint(5, "a", 0)
        assert config.vertex_value_constraint(9, "b", 0)  # b's first, not a's next
        assert not config.vertex_value_constraint(6, "a", 1)

    def test_equal_values_are_monotone(self):
        config = MonotoneValues("decreasing")
        assert config.vertex_value_constraint(5, "v", 0)
        assert config.vertex_value_constraint(5, "v", 1)

    def test_non_numeric_interlude_ignored(self):
        config = MonotoneValues("decreasing")
        assert config.vertex_value_constraint(5, "v", 0)
        assert config.vertex_value_constraint("resetting", "v", 1)
        assert not config.vertex_value_constraint(6, "v", 2)


class TestNoSelfMessages:
    def test_constraint_is_a_pure_endpoint_check(self):
        config = NoSelfMessages()
        assert config.message_value_constraint("hello", 0, 1, 0)
        assert not config.message_value_constraint("hello", 2, 2, 0)
        # Message payload and superstep are irrelevant to the check.
        assert not config.message_value_constraint(None, "x", "x", 7)

    def test_self_message_flagged(self):
        class Selfie(Computation):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.send_message(ctx.vertex_id, "hi me")
                ctx.vote_to_halt()

        g = GraphBuilder(directed=False).edge(0, 1).build()
        run = debug_run(Selfie, g, NoSelfMessages(), seed=1)
        assert len(run.violations()) == 2  # both vertices messaged themselves


class TestDistinctNeighborValuesDirect:
    def test_default_key_compares_raw_values(self):
        config = DistinctNeighborValues()
        assert not config.neighborhood_constraint(3, {"n1": 3}, "v", 0)
        assert config.neighborhood_constraint(3, {"n1": 4, "n2": 5}, "v", 0)

    def test_none_key_means_not_yet_assigned(self):
        config = DistinctNeighborValues()
        # An uncolored vertex cannot conflict, even with uncolored neighbors.
        assert config.neighborhood_constraint(None, {"n1": None}, "v", 0)

    def test_custom_key_extracts_the_compared_field(self):
        class Painted:
            def __init__(self, color):
                self.color = color

        config = DistinctNeighborValues(key=lambda value: value.color)
        assert not config.neighborhood_constraint(
            Painted("red"), {"n1": Painted("red")}, "v", 0
        )
        assert config.neighborhood_constraint(
            Painted("red"), {"n1": Painted("blue")}, "v", 0
        )

    def test_empty_neighborhood_is_clean(self):
        assert DistinctNeighborValues().neighborhood_constraint(1, {}, "v", 0)


class TestDistinctNeighborValues:
    def test_catches_the_coloring_bug(self, small_bipartite):
        config = DistinctNeighborValues(key=lambda value: value.color)
        run = debug_run(
            BuggyGraphColoring,
            small_bipartite,
            config,
            master=GCMaster(),
            seed=0,
            max_supersteps=400,
        )
        # The buggy MIS assigns adjacent vertices one color; the paper's
        # Section 7 example constraint flags it without any manual stepping.
        assert any(v.kind == "neighborhood" for v in run.violations())

    def test_correct_coloring_clean(self, small_bipartite):
        config = DistinctNeighborValues(key=lambda value: value.color)
        run = debug_run(
            GraphColoring,
            small_bipartite,
            config,
            master=GCMaster(),
            seed=0,
            max_supersteps=400,
        )
        assert run.violations() == []
