"""Unit tests for differential debugging (diff_runs)."""

from repro.graft import CaptureAllActiveConfig, debug_run, diff_runs
from repro.graph import GraphBuilder
from repro.pregel import Computation


class CountUp(Computation):
    def initial_value(self, vertex_id, input_value):
        return 0

    def compute(self, ctx, messages):
        ctx.set_value(ctx.value + 1)
        if ctx.superstep >= 2:
            ctx.vote_to_halt()
        else:
            ctx.send_message_to_all_neighbors("tick")


class CountUpWrongAfterOne(CountUp):
    """Behaves identically in superstep 0, diverges from superstep 1 on."""

    def compute(self, ctx, messages):
        if ctx.superstep >= 1:
            ctx.set_value(ctx.value + 100)
            if ctx.superstep >= 2:
                ctx.vote_to_halt()
            else:
                ctx.send_message_to_all_neighbors("tick")
            return
        super().compute(ctx, messages)


def ring():
    return GraphBuilder(directed=False).cycle(*range(5)).build()


def capture_everything(computation):
    return debug_run(computation, ring(), CaptureAllActiveConfig(), seed=3)


class TestDiffRuns:
    def test_identical_runs_have_no_divergence(self):
        report = diff_runs(capture_everything(CountUp), capture_everything(CountUp))
        assert report.identical
        assert report.compared_keys == 15  # 5 vertices x 3 supersteps
        assert "identical" in report.summary()

    def test_first_divergence_located(self):
        report = diff_runs(
            capture_everything(CountUp), capture_everything(CountUpWrongAfterOne)
        )
        assert not report.identical
        earliest = report.earliest()
        assert earliest.superstep == 1
        assert earliest.field_name == "value_after"
        # Every vertex diverges exactly once, at its first bad superstep.
        assert len(report.divergences) == 5
        assert all(d.superstep == 1 for d in report.divergences)

    def test_by_superstep_histogram(self):
        report = diff_runs(
            capture_everything(CountUp), capture_everything(CountUpWrongAfterOne)
        )
        assert report.by_superstep() == {1: 5}

    def test_message_divergence_detected(self):
        class LoudCountUp(CountUp):
            def compute(self, ctx, messages):
                ctx.set_value(ctx.value + 1)
                if ctx.superstep >= 2:
                    ctx.vote_to_halt()
                else:
                    ctx.send_message_to_all_neighbors("BOOM")

        report = diff_runs(
            capture_everything(CountUp), capture_everything(LoudCountUp)
        )
        earliest = report.earliest()
        assert earliest.superstep == 0
        assert earliest.field_name == "sent"

    def test_presence_divergence_for_missing_keys(self):
        # Same computation, but the right run is cut short: its shared
        # records match, so the only differences are missing keys.
        full = capture_everything(CountUp)
        truncated = debug_run(
            CountUp, ring(), CaptureAllActiveConfig(), seed=3, max_supersteps=2
        )
        report = diff_runs(full, truncated)
        assert not report.identical
        assert {d.field_name for d in report.divergences} == {"presence"}
        assert all(d.superstep == 2 for d in report.divergences)

    def test_early_halt_diverges_on_first_superstep_outcome(self):
        class HaltEarly(CountUp):
            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        report = diff_runs(
            capture_everything(CountUp), capture_everything(HaltEarly)
        )
        earliest = report.earliest()
        assert earliest.superstep == 0
        assert earliest.field_name in ("value_after", "sent", "halted")

    def test_buggy_vs_fixed_coloring_diverges_at_a_decide_step(self):
        from repro.algorithms import BuggyGraphColoring, GCMaster, GraphColoring
        from repro.datasets import load_dataset

        graph = load_dataset("bipartite-1M-3M", num_vertices=60, seed=5)

        def run(computation):
            return debug_run(
                computation,
                graph,
                CaptureAllActiveConfig(),
                master=GCMaster(),
                seed=5,
                max_supersteps=300,
            )

        report = diff_runs(run(GraphColoring), run(BuggyGraphColoring))
        assert not report.identical
        earliest = report.earliest()
        # The two variants first part ways when priorities differ (SELECT,
        # superstep 0 onward) — always at a well-defined first superstep.
        assert earliest.superstep >= 0
        assert "diverge" in report.summary()
