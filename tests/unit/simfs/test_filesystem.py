"""Unit tests for the simulated distributed file system."""

import pytest

from repro.common.errors import SimFsError, SimFsFileExists, SimFsFileNotFound
from repro.simfs import SimFileSystem
from repro.simfs.filesystem import normalize_path


class TestNormalizePath:
    def test_relative_becomes_absolute(self):
        assert normalize_path("a/b") == "/a/b"

    def test_redundant_segments_collapsed(self):
        assert normalize_path("/a//b/../c") == "/a/c"

    def test_root(self):
        assert normalize_path("/") == "/"
        assert normalize_path("") == "/"

    def test_parent_of_root_clamps_to_root(self):
        assert normalize_path("/../etc") == "/etc"
        assert normalize_path("/..") == "/"


class TestFiles:
    def test_write_read_roundtrip(self, fs):
        fs.write_text("/a/b.txt", "hello")
        assert fs.read_text("/a/b.txt") == "hello"

    def test_append_accumulates(self, fs):
        fs.append_text("/log", "one\n")
        fs.append_text("/log", "two\n")
        assert fs.read_text("/log") == "one\ntwo\n"

    def test_read_lines(self, fs):
        fs.write_text("/f", "a\nb\nc\n")
        assert list(fs.read_lines("/f")) == ["a", "b", "c"]

    def test_read_lines_empty_file(self, fs):
        fs.create("/empty")
        assert list(fs.read_lines("/empty")) == []

    def test_missing_file_raises(self, fs):
        with pytest.raises(SimFsFileNotFound):
            fs.read_text("/nope")

    def test_exclusive_create_conflicts(self, fs):
        fs.create("/f")
        with pytest.raises(SimFsFileExists):
            fs.create("/f")

    def test_overwrite_create_truncates(self, fs):
        fs.write_text("/f", "long content")
        fs.write_text("/f", "x")
        assert fs.read_text("/f") == "x"

    def test_binary_roundtrip(self, fs):
        fs.append_bytes("/bin", b"\x00\x01\xfe")
        assert fs.read_bytes("/bin") == b"\x00\x01\xfe"

    def test_unicode_roundtrip(self, fs):
        fs.write_text("/u", "héllo ∞")
        assert fs.read_text("/u") == "héllo ∞"


class TestNamespace:
    def test_implicit_directories(self, fs):
        fs.write_text("/a/b/c.txt", "x")
        assert fs.is_dir("/a")
        assert fs.is_dir("/a/b")
        assert not fs.is_dir("/a/b/c.txt")

    def test_mkdirs_explicit_empty_dir(self, fs):
        fs.mkdirs("/x/y")
        assert fs.is_dir("/x/y")
        assert fs.exists("/x")

    def test_mkdirs_over_file_rejected(self, fs):
        fs.write_text("/f", "x")
        with pytest.raises(SimFsFileExists):
            fs.mkdirs("/f")

    def test_list_dir_direct_children_only(self, fs):
        fs.write_text("/d/one.txt", "1")
        fs.write_text("/d/sub/two.txt", "2")
        assert fs.list_dir("/d") == ["/d/one.txt", "/d/sub"]

    def test_list_missing_dir_raises(self, fs):
        with pytest.raises(SimFsFileNotFound):
            fs.list_dir("/ghost")

    def test_glob_files_by_suffix(self, fs):
        fs.write_text("/t/w0.trace", "")
        fs.write_text("/t/w1.trace", "")
        fs.write_text("/t/notes.md", "")
        assert fs.glob_files("/t", suffix=".trace") == [
            "/t/w0.trace",
            "/t/w1.trace",
        ]

    def test_rename_moves_content(self, fs):
        fs.write_text("/src", "payload")
        fs.rename("/src", "/dst/deep")
        assert not fs.is_file("/src")
        assert fs.read_text("/dst/deep") == "payload"

    def test_rename_over_existing_rejected(self, fs):
        fs.write_text("/a", "1")
        fs.write_text("/b", "2")
        with pytest.raises(SimFsFileExists):
            fs.rename("/a", "/b")

    def test_delete_file(self, fs):
        fs.write_text("/f", "x")
        fs.delete("/f")
        assert not fs.exists("/f")

    def test_delete_dir_requires_recursive(self, fs):
        fs.write_text("/d/f", "x")
        with pytest.raises(SimFsError, match="recursive"):
            fs.delete("/d")
        fs.delete("/d", recursive=True)
        assert not fs.exists("/d/f")
        assert not fs.is_dir("/d")


class TestAccounting:
    def test_stat_size_and_blocks(self):
        fs = SimFileSystem(block_size=4)
        fs.write_text("/f", "123456789")
        stat = fs.stat("/f")
        assert stat.size == 9
        assert stat.blocks == 3

    def test_stat_empty_file_zero_blocks(self, fs):
        fs.create("/f")
        assert fs.stat("/f").blocks == 0

    def test_total_bytes_scoped(self, fs):
        fs.write_text("/a/x", "12345")
        fs.write_text("/b/y", "12")
        assert fs.total_bytes("/a") == 5
        assert fs.total_bytes() == 7

    def test_counters_track_writes(self, fs):
        fs.append_text("/f", "abc")
        fs.append_text("/f", "d")
        assert fs.bytes_written == 4
        assert fs.append_calls == 2
        assert fs.files_created >= 1

    def test_invalid_block_size_rejected(self):
        with pytest.raises(SimFsError):
            SimFileSystem(block_size=0)

    def test_export_to_directory(self, fs, tmp_path):
        fs.write_text("/out/data.txt", "exported")
        fs.export_to_directory(str(tmp_path))
        assert (tmp_path / "out" / "data.txt").read_text() == "exported"


class TestRangedReads:
    def test_read_range_slices(self, fs):
        fs.write_text("/f", "0123456789")
        assert fs.read_range("/f", 2, 4) == b"2345"
        assert fs.read_range("/f", 0, 10) == b"0123456789"

    def test_read_range_clamps_at_eof(self, fs):
        fs.write_text("/f", "abc")
        assert fs.read_range("/f", 1, 100) == b"bc"
        assert fs.read_range("/f", 3, 5) == b""
        assert fs.read_range("/f", 50, 5) == b""

    def test_read_range_rejects_negative(self, fs):
        fs.write_text("/f", "abc")
        with pytest.raises(SimFsError):
            fs.read_range("/f", -1, 2)
        with pytest.raises(SimFsError):
            fs.read_range("/f", 0, -2)

    def test_read_range_missing_file(self, fs):
        with pytest.raises(SimFsFileNotFound):
            fs.read_range("/nope", 0, 1)

    def test_iter_lines_streams_across_chunks(self):
        fs = SimFileSystem(block_size=8)  # tiny blocks force chunk seams
        lines = [f"line-{index}-padding" for index in range(20)]
        fs.write_text("/f", "\n".join(lines) + "\n")
        assert list(fs.iter_lines("/f")) == lines

    def test_iter_lines_handles_missing_trailing_newline(self, fs):
        fs.write_text("/f", "a\nb\nc")
        assert list(fs.iter_lines("/f")) == ["a", "b", "c"]

    def test_iter_lines_multibyte_on_chunk_boundary(self):
        fs = SimFileSystem(block_size=4)
        text = "héllo wörld ünïcode\nsecond\n"
        fs.write_text("/f", text)
        assert list(fs.iter_lines("/f")) == ["héllo wörld ünïcode", "second"]

    def test_read_lines_is_lazy(self, fs):
        fs.write_text("/f", "a\nb\n")
        result = fs.read_lines("/f")
        assert iter(result) is iter(result)  # a generator, not a list
        assert list(result) == ["a", "b"]

    def test_read_accounting(self, fs):
        fs.write_text("/f", "0123456789")
        before_bytes, before_calls = fs.bytes_read, fs.read_calls
        fs.read_range("/f", 0, 4)
        fs.read_bytes("/f")
        assert fs.bytes_read == before_bytes + 4 + 10
        assert fs.read_calls == before_calls + 2

    def test_import_from_directory_roundtrip(self, fs, tmp_path):
        fs.write_text("/graft/job/worker-0.trace", "text-data")
        fs.append_bytes("/graft/job/worker-0.trace.idx", b"\x00binary")
        fs.export_to_directory(str(tmp_path))
        loaded = SimFileSystem()
        loaded.import_from_directory(str(tmp_path))
        assert loaded.read_text("/graft/job/worker-0.trace") == "text-data"
        assert loaded.read_bytes("/graft/job/worker-0.trace.idx") == b"\x00binary"
