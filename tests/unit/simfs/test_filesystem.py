"""Unit tests for the simulated distributed file system."""

import pytest

from repro.common.errors import SimFsError, SimFsFileExists, SimFsFileNotFound
from repro.simfs import SimFileSystem
from repro.simfs.filesystem import normalize_path


class TestNormalizePath:
    def test_relative_becomes_absolute(self):
        assert normalize_path("a/b") == "/a/b"

    def test_redundant_segments_collapsed(self):
        assert normalize_path("/a//b/../c") == "/a/c"

    def test_root(self):
        assert normalize_path("/") == "/"
        assert normalize_path("") == "/"

    def test_parent_of_root_clamps_to_root(self):
        assert normalize_path("/../etc") == "/etc"
        assert normalize_path("/..") == "/"


class TestFiles:
    def test_write_read_roundtrip(self, fs):
        fs.write_text("/a/b.txt", "hello")
        assert fs.read_text("/a/b.txt") == "hello"

    def test_append_accumulates(self, fs):
        fs.append_text("/log", "one\n")
        fs.append_text("/log", "two\n")
        assert fs.read_text("/log") == "one\ntwo\n"

    def test_read_lines(self, fs):
        fs.write_text("/f", "a\nb\nc\n")
        assert list(fs.read_lines("/f")) == ["a", "b", "c"]

    def test_read_lines_empty_file(self, fs):
        fs.create("/empty")
        assert list(fs.read_lines("/empty")) == []

    def test_missing_file_raises(self, fs):
        with pytest.raises(SimFsFileNotFound):
            fs.read_text("/nope")

    def test_exclusive_create_conflicts(self, fs):
        fs.create("/f")
        with pytest.raises(SimFsFileExists):
            fs.create("/f")

    def test_overwrite_create_truncates(self, fs):
        fs.write_text("/f", "long content")
        fs.write_text("/f", "x")
        assert fs.read_text("/f") == "x"

    def test_binary_roundtrip(self, fs):
        fs.append_bytes("/bin", b"\x00\x01\xfe")
        assert fs.read_bytes("/bin") == b"\x00\x01\xfe"

    def test_unicode_roundtrip(self, fs):
        fs.write_text("/u", "héllo ∞")
        assert fs.read_text("/u") == "héllo ∞"


class TestNamespace:
    def test_implicit_directories(self, fs):
        fs.write_text("/a/b/c.txt", "x")
        assert fs.is_dir("/a")
        assert fs.is_dir("/a/b")
        assert not fs.is_dir("/a/b/c.txt")

    def test_mkdirs_explicit_empty_dir(self, fs):
        fs.mkdirs("/x/y")
        assert fs.is_dir("/x/y")
        assert fs.exists("/x")

    def test_mkdirs_over_file_rejected(self, fs):
        fs.write_text("/f", "x")
        with pytest.raises(SimFsFileExists):
            fs.mkdirs("/f")

    def test_list_dir_direct_children_only(self, fs):
        fs.write_text("/d/one.txt", "1")
        fs.write_text("/d/sub/two.txt", "2")
        assert fs.list_dir("/d") == ["/d/one.txt", "/d/sub"]

    def test_list_missing_dir_raises(self, fs):
        with pytest.raises(SimFsFileNotFound):
            fs.list_dir("/ghost")

    def test_glob_files_by_suffix(self, fs):
        fs.write_text("/t/w0.trace", "")
        fs.write_text("/t/w1.trace", "")
        fs.write_text("/t/notes.md", "")
        assert fs.glob_files("/t", suffix=".trace") == [
            "/t/w0.trace",
            "/t/w1.trace",
        ]

    def test_rename_moves_content(self, fs):
        fs.write_text("/src", "payload")
        fs.rename("/src", "/dst/deep")
        assert not fs.is_file("/src")
        assert fs.read_text("/dst/deep") == "payload"

    def test_rename_over_existing_rejected(self, fs):
        fs.write_text("/a", "1")
        fs.write_text("/b", "2")
        with pytest.raises(SimFsFileExists):
            fs.rename("/a", "/b")

    def test_delete_file(self, fs):
        fs.write_text("/f", "x")
        fs.delete("/f")
        assert not fs.exists("/f")

    def test_delete_dir_requires_recursive(self, fs):
        fs.write_text("/d/f", "x")
        with pytest.raises(SimFsError, match="recursive"):
            fs.delete("/d")
        fs.delete("/d", recursive=True)
        assert not fs.exists("/d/f")
        assert not fs.is_dir("/d")


class TestAccounting:
    def test_stat_size_and_blocks(self):
        fs = SimFileSystem(block_size=4)
        fs.write_text("/f", "123456789")
        stat = fs.stat("/f")
        assert stat.size == 9
        assert stat.blocks == 3

    def test_stat_empty_file_zero_blocks(self, fs):
        fs.create("/f")
        assert fs.stat("/f").blocks == 0

    def test_total_bytes_scoped(self, fs):
        fs.write_text("/a/x", "12345")
        fs.write_text("/b/y", "12")
        assert fs.total_bytes("/a") == 5
        assert fs.total_bytes() == 7

    def test_counters_track_writes(self, fs):
        fs.append_text("/f", "abc")
        fs.append_text("/f", "d")
        assert fs.bytes_written == 4
        assert fs.append_calls == 2
        assert fs.files_created >= 1

    def test_invalid_block_size_rejected(self):
        with pytest.raises(SimFsError):
            SimFileSystem(block_size=0)

    def test_export_to_directory(self, fs, tmp_path):
        fs.write_text("/out/data.txt", "exported")
        fs.export_to_directory(str(tmp_path))
        assert (tmp_path / "out" / "data.txt").read_text() == "exported"
