"""Unit tests for the disk-backed spool filesystem."""

import os

import pytest

from repro.common.errors import SimFsError
from repro.simfs import BlockWriter
from repro.simfs.spool import SpoolFileSystem


@pytest.fixture
def fs():
    spool = SpoolFileSystem()
    yield spool
    spool.close()


class TestSpoolBasics:
    def test_round_trip(self, fs):
        fs.append_bytes("/spill/a.bin", b"hello")
        fs.append_bytes("/spill/a.bin", b" world")
        assert fs.read_bytes("/spill/a.bin") == b"hello world"

    def test_bytes_live_on_disk_not_in_memory(self, fs):
        fs.append_bytes("/spill/big.bin", b"x" * 4096)
        backing = [
            name for name in os.listdir(fs.root)
        ]
        assert backing, "spool wrote no backing file"
        total = sum(
            os.path.getsize(os.path.join(fs.root, name)) for name in backing
        )
        assert total == 4096

    def test_read_range_is_positional(self, fs):
        fs.append_bytes("/spill/r.bin", bytes(range(100)))
        assert fs.read_range("/spill/r.bin", 10, 5) == bytes(range(10, 15))
        # Reads past EOF truncate like pread.
        assert fs.read_range("/spill/r.bin", 95, 50) == bytes(range(95, 100))

    def test_read_range_rejects_negative(self, fs):
        fs.append_bytes("/spill/r.bin", b"abc")
        with pytest.raises(SimFsError):
            fs.read_range("/spill/r.bin", -1, 2)

    def test_missing_file_raises(self, fs):
        with pytest.raises(SimFsError):
            fs.read_bytes("/nope")
        with pytest.raises(SimFsError):
            fs.stat("/nope")
        with pytest.raises(SimFsError):
            fs.delete("/nope")

    def test_create_without_overwrite_raises_on_existing(self, fs):
        fs.create("/f")
        with pytest.raises(SimFsError):
            fs.create("/f")
        fs.create("/f", overwrite=True)  # allowed

    def test_truncate(self, fs):
        fs.append_bytes("/t", b"0123456789")
        fs.truncate("/t", 4)
        assert fs.read_bytes("/t") == b"0123"
        assert fs.stat("/t").size == 4
        with pytest.raises(SimFsError):
            fs.truncate("/t", 99)

    def test_glob_and_recursive_delete(self, fs):
        fs.append_bytes("/spill/runs/s1/p0.run", b"a")
        fs.append_bytes("/spill/runs/s1/p1.run", b"b")
        fs.append_bytes("/spill/runs/s2/p0.run", b"c")
        assert fs.glob_files("/spill/runs/s1", ".run") == [
            "/spill/runs/s1/p0.run",
            "/spill/runs/s1/p1.run",
        ]
        fs.delete("/spill/runs/s1", recursive=True)
        assert fs.glob_files("/spill/runs/s1") == []
        assert fs.exists("/spill/runs/s2/p0.run")

    def test_accounting_counters(self, fs):
        fs.append_bytes("/a", b"1234")
        fs.read_bytes("/a")
        assert fs.bytes_written == 4
        assert fs.bytes_read == 4
        assert fs.append_calls == 1
        assert fs.read_calls == 1

    def test_total_bytes(self, fs):
        fs.append_bytes("/spill/a", b"12")
        fs.append_bytes("/spill/b", b"345")
        fs.append_bytes("/other/c", b"6789")
        assert fs.total_bytes("/spill") == 5

    def test_close_removes_directory(self):
        spool = SpoolFileSystem()
        root = spool.root
        spool.append_bytes("/x", b"data")
        spool.close()
        assert not os.path.exists(root)
        spool.close()  # idempotent


class TestSpoolWithBlockWriter:
    def test_block_writer_frames_round_trip(self, fs):
        writer = BlockWriter(fs, "/spill/pages/p0.page")
        payload = b"payload-" * 64
        offset, length, flags = writer.write_block(payload)
        writer.close()
        # The frame is `u32be stored_length | u8 flags | stored`.
        stored = fs.read_range("/spill/pages/p0.page", offset + 5, length - 5)
        if flags & 0x01:
            import zlib

            stored = zlib.decompress(stored)
        assert stored == payload
