"""Unit tests for the buffered line writers."""

import pytest

from repro.common.errors import SimFsError
from repro.simfs import LineWriter


class TestLineWriter:
    def test_lines_roundtrip(self, fs):
        with LineWriter(fs, "/t/w.trace") as writer:
            writer.write_line("one")
            writer.write_line("two")
        assert list(fs.read_lines("/t/w.trace")) == ["one", "two"]

    def test_buffering_defers_fs_writes(self, fs):
        writer = LineWriter(fs, "/t/w.trace", buffer_lines=10)
        for index in range(5):
            writer.write_line(str(index))
        assert fs.read_text("/t/w.trace") == ""
        writer.flush()
        assert len(list(fs.read_lines("/t/w.trace"))) == 5
        writer.close()

    def test_buffer_flushes_at_threshold(self, fs):
        writer = LineWriter(fs, "/w", buffer_lines=3)
        writer.write_line("a")
        writer.write_line("b")
        writer.write_line("c")
        assert len(list(fs.read_lines("/w"))) == 3
        writer.close()

    def test_creation_truncates_existing(self, fs):
        fs.write_text("/w", "stale\n")
        with LineWriter(fs, "/w") as writer:
            writer.write_line("fresh")
        assert list(fs.read_lines("/w")) == ["fresh"]

    def test_embedded_newline_rejected(self, fs):
        with LineWriter(fs, "/w") as writer:
            with pytest.raises(SimFsError, match="single line"):
                writer.write_line("two\nlines")

    def test_write_after_close_rejected(self, fs):
        writer = LineWriter(fs, "/w")
        writer.close()
        with pytest.raises(SimFsError, match="closed"):
            writer.write_line("late")

    def test_close_idempotent(self, fs):
        writer = LineWriter(fs, "/w")
        writer.write_line("x")
        writer.close()
        writer.close()
        assert writer.closed
        assert writer.lines_written == 1

    def test_invalid_buffer_size(self, fs):
        with pytest.raises(SimFsError):
            LineWriter(fs, "/w", buffer_lines=0)

    def test_counts_lines(self, fs):
        with LineWriter(fs, "/w") as writer:
            for index in range(7):
                writer.write_line(str(index))
        assert writer.lines_written == 7
