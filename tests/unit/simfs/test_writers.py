"""Unit tests for the buffered line writers."""

import pytest

from repro.common.errors import SimFsError
from repro.simfs import LineWriter


class TestLineWriter:
    def test_lines_roundtrip(self, fs):
        with LineWriter(fs, "/t/w.trace") as writer:
            writer.write_line("one")
            writer.write_line("two")
        assert list(fs.read_lines("/t/w.trace")) == ["one", "two"]

    def test_buffering_defers_fs_writes(self, fs):
        writer = LineWriter(fs, "/t/w.trace", buffer_lines=10)
        for index in range(5):
            writer.write_line(str(index))
        assert fs.read_text("/t/w.trace") == ""
        writer.flush()
        assert len(list(fs.read_lines("/t/w.trace"))) == 5
        writer.close()

    def test_buffer_flushes_at_threshold(self, fs):
        writer = LineWriter(fs, "/w", buffer_lines=3)
        writer.write_line("a")
        writer.write_line("b")
        writer.write_line("c")
        assert len(list(fs.read_lines("/w"))) == 3
        writer.close()

    def test_creation_truncates_existing(self, fs):
        fs.write_text("/w", "stale\n")
        with LineWriter(fs, "/w") as writer:
            writer.write_line("fresh")
        assert list(fs.read_lines("/w")) == ["fresh"]

    def test_embedded_newline_rejected(self, fs):
        with LineWriter(fs, "/w") as writer:
            with pytest.raises(SimFsError, match="single line"):
                writer.write_line("two\nlines")

    def test_write_after_close_rejected(self, fs):
        writer = LineWriter(fs, "/w")
        writer.close()
        with pytest.raises(SimFsError, match="closed"):
            writer.write_line("late")

    def test_close_idempotent(self, fs):
        writer = LineWriter(fs, "/w")
        writer.write_line("x")
        writer.close()
        writer.close()
        assert writer.closed
        assert writer.lines_written == 1

    def test_invalid_buffer_size(self, fs):
        with pytest.raises(SimFsError):
            LineWriter(fs, "/w", buffer_lines=0)
        with pytest.raises(SimFsError):
            LineWriter(fs, "/w2", buffer_bytes=0)

    def test_byte_threshold_flushes_before_line_threshold(self, fs):
        writer = LineWriter(fs, "/w", buffer_lines=1000, buffer_bytes=64)
        writer.write_line("x" * 100)
        assert writer.pending_lines == 0
        assert len(list(fs.read_lines("/w"))) == 1
        writer.close()

    def test_write_lines_bulk(self, fs):
        writer = LineWriter(fs, "/w", buffer_lines=10)
        writer.write_lines([str(index) for index in range(4)])
        assert writer.pending_lines == 4
        assert writer.lines_written == 4
        writer.write_lines([str(index) for index in range(4, 12)])
        # Crossing the line threshold inside the batch flushes once at the end.
        assert writer.pending_lines == 0
        assert list(fs.read_lines("/w")) == [str(index) for index in range(12)]
        writer.close()

    def test_write_lines_rejects_newlines_and_closed(self, fs):
        writer = LineWriter(fs, "/w")
        with pytest.raises(SimFsError, match="single line"):
            writer.write_lines(["ok", "bad\nline"])
        writer.close()
        with pytest.raises(SimFsError, match="closed"):
            writer.write_lines(["late"])

    def test_buffered_lines_survive_exception_in_with_block(self, fs):
        with pytest.raises(RuntimeError, match="job died"):
            with LineWriter(fs, "/t/w.trace", buffer_lines=100) as writer:
                writer.write_line("captured-before-crash")
                raise RuntimeError("job died")
        # __exit__ flushed the buffer before letting the exception propagate.
        assert list(fs.read_lines("/t/w.trace")) == ["captured-before-crash"]
        assert writer.closed

    def test_counts_lines(self, fs):
        with LineWriter(fs, "/w") as writer:
            for index in range(7):
                writer.write_line(str(index))
        assert writer.lines_written == 7
