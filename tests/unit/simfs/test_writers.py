"""Unit tests for the buffered line writers."""

import random
import zlib

import pytest

from repro.common.errors import SimFsError
from repro.simfs import BlockWriter, LineWriter
from repro.simfs.writers import BLOCK_FLAG_ZLIB


class TestLineWriter:
    def test_lines_roundtrip(self, fs):
        with LineWriter(fs, "/t/w.trace") as writer:
            writer.write_line("one")
            writer.write_line("two")
        assert list(fs.read_lines("/t/w.trace")) == ["one", "two"]

    def test_buffering_defers_fs_writes(self, fs):
        writer = LineWriter(fs, "/t/w.trace", buffer_lines=10)
        for index in range(5):
            writer.write_line(str(index))
        assert fs.read_text("/t/w.trace") == ""
        writer.flush()
        assert len(list(fs.read_lines("/t/w.trace"))) == 5
        writer.close()

    def test_buffer_flushes_at_threshold(self, fs):
        writer = LineWriter(fs, "/w", buffer_lines=3)
        writer.write_line("a")
        writer.write_line("b")
        writer.write_line("c")
        assert len(list(fs.read_lines("/w"))) == 3
        writer.close()

    def test_creation_truncates_existing(self, fs):
        fs.write_text("/w", "stale\n")
        with LineWriter(fs, "/w") as writer:
            writer.write_line("fresh")
        assert list(fs.read_lines("/w")) == ["fresh"]

    def test_embedded_newline_rejected(self, fs):
        with LineWriter(fs, "/w") as writer:
            with pytest.raises(SimFsError, match="single line"):
                writer.write_line("two\nlines")

    def test_write_after_close_rejected(self, fs):
        writer = LineWriter(fs, "/w")
        writer.close()
        with pytest.raises(SimFsError, match="closed"):
            writer.write_line("late")

    def test_close_idempotent(self, fs):
        writer = LineWriter(fs, "/w")
        writer.write_line("x")
        writer.close()
        writer.close()
        assert writer.closed
        assert writer.lines_written == 1

    def test_invalid_buffer_size(self, fs):
        with pytest.raises(SimFsError):
            LineWriter(fs, "/w", buffer_lines=0)
        with pytest.raises(SimFsError):
            LineWriter(fs, "/w2", buffer_bytes=0)

    def test_byte_threshold_flushes_before_line_threshold(self, fs):
        writer = LineWriter(fs, "/w", buffer_lines=1000, buffer_bytes=64)
        writer.write_line("x" * 100)
        assert writer.pending_lines == 0
        assert len(list(fs.read_lines("/w"))) == 1
        writer.close()

    def test_write_lines_bulk(self, fs):
        writer = LineWriter(fs, "/w", buffer_lines=10)
        writer.write_lines([str(index) for index in range(4)])
        assert writer.pending_lines == 4
        assert writer.lines_written == 4
        writer.write_lines([str(index) for index in range(4, 12)])
        # Crossing the line threshold inside the batch flushes once at the end.
        assert writer.pending_lines == 0
        assert list(fs.read_lines("/w")) == [str(index) for index in range(12)]
        writer.close()

    def test_write_lines_rejects_newlines_and_closed(self, fs):
        writer = LineWriter(fs, "/w")
        with pytest.raises(SimFsError, match="single line"):
            writer.write_lines(["ok", "bad\nline"])
        writer.close()
        with pytest.raises(SimFsError, match="closed"):
            writer.write_lines(["late"])

    def test_buffered_lines_survive_exception_in_with_block(self, fs):
        with pytest.raises(RuntimeError, match="job died"):
            with LineWriter(fs, "/t/w.trace", buffer_lines=100) as writer:
                writer.write_line("captured-before-crash")
                raise RuntimeError("job died")
        # __exit__ flushed the buffer before letting the exception propagate.
        assert list(fs.read_lines("/t/w.trace")) == ["captured-before-crash"]
        assert writer.closed

    def test_counts_lines(self, fs):
        with LineWriter(fs, "/w") as writer:
            for index in range(7):
                writer.write_line(str(index))
        assert writer.lines_written == 7


class TestBlockWriter:
    def test_frame_roundtrip_uncompressed(self, fs):
        writer = BlockWriter(fs, "/b", compression=False)
        payload = b"0123456789"
        offset, length, flags = writer.write_block(payload)
        assert (offset, flags) == (0, 0)
        assert length == 5 + len(payload)
        frame = fs.read_range("/b", offset, length)
        assert int.from_bytes(frame[:4], "big") == len(payload)
        assert frame[4] == 0
        assert frame[5:] == payload

    def test_large_payload_compresses(self, fs):
        writer = BlockWriter(fs, "/b")
        payload = b"abcdefgh" * 200
        offset, length, flags = writer.write_block(payload)
        assert flags & BLOCK_FLAG_ZLIB
        assert length < len(payload)
        frame = fs.read_range("/b", offset, length)
        assert zlib.decompress(frame[5:]) == payload

    def test_small_payload_stays_raw(self, fs):
        writer = BlockWriter(fs, "/b")
        _offset, _length, flags = writer.write_block(b"tiny")
        assert flags == 0

    def test_incompressible_payload_stays_raw(self, fs):
        writer = BlockWriter(fs, "/b")
        payload = random.Random(5).randbytes(512)
        _offset, _length, flags = writer.write_block(payload)
        assert flags == 0  # zlib would not shrink it

    def test_prelude_precedes_blocks(self, fs):
        writer = BlockWriter(fs, "/b", compression=False)
        writer.write_prelude(b"#MAGIC\n")
        offset, _length, _flags = writer.write_block(b"payload-data")
        assert offset == len(b"#MAGIC\n")
        assert fs.read_range("/b", 0, 7) == b"#MAGIC\n"
        writer.write_block(b"second-block")
        with pytest.raises(SimFsError, match="before any block"):
            writer.write_prelude(b"late")

    def test_counters_and_offsets_chain(self, fs):
        writer = BlockWriter(fs, "/b", compression=False)
        first = writer.write_block(b"a" * 10)
        second = writer.write_block(b"b" * 20)
        assert second[0] == first[0] + first[1]
        assert writer.blocks_written == 2
        assert writer.raw_payload_bytes == 30
        assert writer.offset == fs.stat("/b").size

    def test_write_after_close_rejected(self, fs):
        writer = BlockWriter(fs, "/b")
        writer.close()
        assert writer.closed
        with pytest.raises(SimFsError, match="closed"):
            writer.write_block(b"late")
