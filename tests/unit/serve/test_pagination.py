"""Cursor pagination: roundtrips, clamping, full-coverage walks."""

import pytest

from repro.serve.pagination import (
    DEFAULT_LIMIT,
    MAX_LIMIT,
    PaginationError,
    clamp_limit,
    decode_cursor,
    encode_cursor,
    paginate,
)


def test_cursor_roundtrip():
    payload = {"after": "repr-of-id", "n": 3}
    assert decode_cursor(encode_cursor(payload)) == payload


def test_cursor_is_urlsafe():
    token = encode_cursor({"after": "x" * 100})
    assert all(c.isalnum() or c in "-_=" for c in token)


@pytest.mark.parametrize("bad", ["", "not-base64!", "aGVsbG8", encode_cursor([1, 2])[:-1] + "!"])
def test_malformed_cursors_raise(bad):
    with pytest.raises(PaginationError):
        decode_cursor(bad)


def test_non_object_cursor_raises():
    with pytest.raises(PaginationError):
        decode_cursor(encode_cursor([1, 2, 3]))


def test_clamp_limit_defaults_and_bounds():
    assert clamp_limit(None) == DEFAULT_LIMIT
    assert clamp_limit("") == DEFAULT_LIMIT
    assert clamp_limit("7") == 7
    assert clamp_limit(10 ** 9) == MAX_LIMIT
    with pytest.raises(PaginationError):
        clamp_limit("three")
    with pytest.raises(PaginationError):
        clamp_limit(0)


def _walk(items, limit, key=None):
    """Collect every page; return (all items seen, number of pages)."""
    seen = []
    cursor = None
    pages = 0
    while True:
        page, cursor = paginate(items, cursor=cursor, limit=limit, key=key)
        seen.extend(page)
        pages += 1
        if cursor is None:
            return seen, pages


def test_offset_walk_covers_everything_once():
    items = list(range(25))
    seen, pages = _walk(items, limit=10)
    assert seen == items
    assert pages == 3


def test_keyset_walk_covers_everything_once():
    items = sorted(range(25), key=repr)
    seen, pages = _walk(items, limit=7, key=repr)
    assert seen == items
    assert pages == 4


def test_keyset_cursor_survives_item_removal_before_cursor():
    # Keyset pagination resumes *after a key*, not at an index, so pages
    # stay coherent even if earlier items vanish between requests.
    items = sorted(range(20), key=repr)
    page, cursor = paginate(items, limit=5, key=repr)
    shrunk = [i for i in items if i not in page[:3]]
    next_page, _ = paginate(shrunk, cursor=cursor, limit=5, key=repr)
    assert next_page == items[5:10]


def test_single_page_has_no_cursor():
    page, cursor = paginate([1, 2, 3], limit=10)
    assert page == [1, 2, 3]
    assert cursor is None


def test_empty_items():
    page, cursor = paginate([], limit=10)
    assert page == [] and cursor is None
    page, cursor = paginate([], limit=10, key=repr)
    assert page == [] and cursor is None


def test_offset_cursor_without_offset_raises():
    with pytest.raises(PaginationError):
        paginate([1, 2], cursor=encode_cursor({"nope": 1}), limit=1)


def test_keyset_cursor_without_key_raises():
    with pytest.raises(PaginationError):
        paginate([1, 2], cursor=encode_cursor({"after": 3}), limit=1, key=repr)
