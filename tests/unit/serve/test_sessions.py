"""ReaderPool discovery, shared caches, and the job_summary serializer."""

import pytest

from repro.common.errors import TraceError
from repro.graft.trace import TraceReader, canonical_trace_digest
from repro.serve.sessions import ReaderPool, job_summary
from repro.simfs import SimFileSystem

from tests.unit.serve.conftest import NUM_SUPERSTEPS, NUM_VERTICES


def test_job_discovery_is_sorted_and_filtered(served_fs):
    pool = ReaderPool(served_fs)
    assert pool.job_ids() == ["job-a", "job-b"]


def test_job_discovery_ignores_non_trace_dirs(served_fs):
    fs = SimFileSystem()
    fs.import_from_filesystem = None  # guard against accidental API drift
    pool = ReaderPool(fs, root="/nowhere")
    assert pool.job_ids() == []


def test_unknown_job_raises_trace_error(served_fs):
    pool = ReaderPool(served_fs)
    with pytest.raises(TraceError):
        pool.session("job-missing")


def test_sessions_are_singletons_with_shared_caches(served_fs):
    pool = ReaderPool(served_fs)
    assert pool.session("job-a") is pool.session("job-a")
    reader_a = pool.reader("job-a")
    reader_b = pool.reader("job-b")
    assert reader_a is pool.reader("job-a")
    # Both jobs draw on the same process-wide LRUs.
    assert reader_a._record_cache is pool.record_cache
    assert reader_b._record_cache is pool.record_cache
    assert reader_a._block_cache is pool.block_cache
    reader_a.get(3, 1)
    reader_b.get(4, 2)
    assert pool.record_cache.misses >= 2


def test_etag_is_the_canonical_digest_and_cached(served_fs):
    pool = ReaderPool(served_fs)
    assert pool.cached_etag("job-a") is None  # nothing computed yet
    etag = pool.etag("job-a")
    assert etag == canonical_trace_digest(served_fs, "job-a")
    assert pool.cached_etag("job-a") == etag


def test_job_summary_shape(served_fs):
    summary = job_summary(served_fs, "job-a")
    assert summary["job_id"] == "job-a"
    assert summary["digest"] == canonical_trace_digest(served_fs, "job-a")
    assert summary["totals"]["records"] > 0
    assert summary["violations"] == 1
    assert summary["exceptions"] == 1
    assert summary["metrics"]["num_supersteps"] == NUM_SUPERSTEPS
    assert summary["metrics"]["total_compute_calls"] == (
        NUM_VERTICES * NUM_SUPERSTEPS
    )
    assert "supersteps" not in summary  # only the pool adds the reader view


def test_job_summary_without_metrics(served_fs):
    summary = job_summary(served_fs, "job-b")
    assert summary["metrics"] is None
    assert summary["metrics_summary_line"] is None
    assert summary["violations"] == 0


def test_pool_summary_matches_bare_job_summary(served_fs):
    # The pool serves cached pieces, the bare call recomputes everything;
    # the documents must agree (modulo the supersteps list only the pool
    # adds) or the CLI and the server would drift.
    pool = ReaderPool(served_fs)
    pooled = pool.session("job-a").summary()
    assert pooled.pop("supersteps") == list(range(NUM_SUPERSTEPS))
    assert pooled == job_summary(served_fs, "job-a")


def test_job_summary_digest_opt_out(served_fs):
    summary = job_summary(served_fs, "job-a", digest=None)
    assert summary["digest"] is None


def test_cache_stats_counters_move(served_fs):
    pool = ReaderPool(served_fs)
    before = pool.cache_stats()
    assert before["record_cache"]["hits"] == 0
    pool.reader("job-a").get(1, 0)
    pool.reader("job-a").get(1, 0)
    after = pool.cache_stats()
    assert after["record_cache"]["misses"] >= 1
    assert after["record_cache"]["hits"] >= 1
    assert after["block_cache"]["entries"] >= 1


def test_pool_reader_answers_match_private_reader(served_fs):
    pool = ReaderPool(served_fs)
    private = TraceReader(served_fs, "job-a", mode="eager")
    shared = pool.reader("job-a")
    for vid in (0, 7, 11, NUM_VERTICES - 1):
        for step in range(NUM_SUPERSTEPS):
            a = shared.get(vid, step)
            b = private.get(vid, step)
            assert (a.value_after, a.sent, a.halted) == (
                b.value_after, b.sent, b.halted
            )
