"""Shared fixtures: a filesystem with two small served jobs.

``job-a`` is the full-featured one — violations, an exception, per-worker
metrics rows. ``job-b`` is minimal: no violations, no metrics.json (so
profiler endpoints must 404 on it).
"""

import pytest

from repro.graft.capture import (
    ExceptionRecord,
    MasterContextRecord,
    VertexContextRecord,
    Violation,
)
from repro.graft.trace import TraceStore, write_job_metrics
from repro.pregel.metrics import RunMetrics, SuperstepMetrics
from repro.simfs import SimFileSystem

NUM_VERTICES = 30
NUM_SUPERSTEPS = 4
NUM_WORKERS = 2


def build_job(fs, job_id, with_flags=True):
    store = TraceStore(fs, job_id, NUM_WORKERS, format="v2")
    for superstep in range(NUM_SUPERSTEPS):
        records = []
        for vertex_id in range(NUM_VERTICES):
            violations = []
            exception = None
            if with_flags and vertex_id == 7 and superstep == 2:
                violations = [
                    Violation(
                        "message", vertex_id, superstep, {"value": -1.5}
                    )
                ]
            if with_flags and vertex_id == 11 and superstep == 3:
                exception = ExceptionRecord(
                    "ValueError", "overflow", "Traceback: boom"
                )
            records.append(
                VertexContextRecord(
                    vertex_id=vertex_id,
                    superstep=superstep,
                    worker_id=vertex_id % NUM_WORKERS,
                    value_before=float(vertex_id),
                    edges_before={(vertex_id + 1) % NUM_VERTICES: None},
                    incoming=[((vertex_id - 1) % NUM_VERTICES, 0.25)],
                    aggregators={"total": superstep * 1.0},
                    num_vertices=NUM_VERTICES,
                    num_edges=NUM_VERTICES,
                    run_seed=0,
                    value_after=float(vertex_id + superstep),
                    edges_after={(vertex_id + 1) % NUM_VERTICES: None},
                    sent=[((vertex_id + 1) % NUM_VERTICES, 1.0)],
                    reasons=["all_active"],
                    violations=violations,
                    exception=exception,
                )
            )
        store.write_vertex_records(records)
        store.write_master_record(
            MasterContextRecord(
                superstep=superstep, aggregators={"total": superstep * 1.0}
            )
        )
        store.flush()
    store.close()


def build_metrics(fs, job_id):
    metrics = RunMetrics()
    for superstep in range(NUM_SUPERSTEPS):
        row = SuperstepMetrics(
            superstep=superstep,
            active_vertices=NUM_VERTICES,
            compute_calls=NUM_VERTICES,
            messages_sent=NUM_VERTICES * (superstep + 1),
            bytes_sent=NUM_VERTICES * 24,
            compute_seconds=0.004,
            wall_seconds=0.002,
        )
        # Worker 1 is the deliberate straggler: 3x the compute time.
        row.add_worker_row(0, 0.001, NUM_VERTICES // 2,
                           NUM_VERTICES * (superstep + 1) - 5,
                           NUM_VERTICES * 12)
        row.add_worker_row(1, 0.003, NUM_VERTICES // 2, 5, NUM_VERTICES * 12)
        metrics.add_superstep(row)
    metrics.total_seconds = 0.016
    write_job_metrics(fs, job_id, metrics)


@pytest.fixture(scope="module")
def served_fs():
    fs = SimFileSystem()
    build_job(fs, "job-a", with_flags=True)
    build_metrics(fs, "job-a")
    build_job(fs, "job-b", with_flags=False)
    return fs
