"""Router endpoints by direct call — no sockets anywhere."""

import json

import pytest

from repro.graft.views import NodeLinkView, TabularView, ViolationsView
from repro.serve.pagination import encode_cursor
from repro.serve.router import Router
from repro.serve.sessions import ReaderPool

from tests.unit.serve.conftest import NUM_SUPERSTEPS, NUM_VERTICES


@pytest.fixture(scope="module")
def router(served_fs):
    return Router(ReaderPool(served_fs))


def _json(response):
    assert response.content_type.startswith("application/json")
    return json.loads(response.body.decode("utf-8"))


def test_healthz_and_api(router):
    assert _json(router.handle("GET", "/healthz")) == {"ok": True}
    endpoints = _json(router.handle("GET", "/api"))["endpoints"]
    assert "/jobs/<job>/profile/heatmap" in endpoints


def test_unknown_paths_404(router):
    assert router.handle("GET", "/nope").status == 404
    assert router.handle("GET", "/jobs/job-a/bogus").status == 404
    assert router.handle("GET", "/jobs/job-a/views/spiral").status == 404
    assert router.handle("GET", "/jobs/no-such-job").status == 404


def test_post_is_rejected(router):
    assert router.handle("POST", "/jobs").status == 405


def test_jobs_listing(router):
    jobs = _json(router.handle("GET", "/jobs"))["jobs"]
    assert [j["job_id"] for j in jobs] == ["job-a", "job-b"]
    assert all(j["digest"] for j in jobs)


def test_job_summary_carries_etag(router):
    response = router.handle("GET", "/jobs/job-a")
    assert response.status == 200
    assert response.etag == router.pool.etag("job-a")
    assert _json(response)["supersteps"] == list(range(NUM_SUPERSTEPS))


@pytest.mark.parametrize("name,view_factory", [
    ("nodelink", lambda reader: NodeLinkView(reader, None)),
    ("tabular", lambda reader: TabularView(reader)),
    ("violations", lambda reader: ViolationsView(reader)),
])
def test_render_endpoints_are_byte_identical_to_views(router, name,
                                                      view_factory):
    response = router.handle("GET", f"/jobs/job-a/views/{name}/render")
    assert response.status == 200
    expected = view_factory(router.pool.reader("job-a")).render()
    assert response.body == expected.encode("utf-8")


def test_render_respects_superstep_param(router):
    response = router.handle(
        "GET", "/jobs/job-a/views/tabular/render?superstep=2"
    )
    expected = TabularView(router.pool.reader("job-a"), superstep=2).render()
    assert response.body == expected.encode("utf-8")


def test_nodelink_json_pagination_walks_all_nodes(router):
    seen = []
    cursor = ""
    while True:
        suffix = f"&cursor={cursor}" if cursor else ""
        payload = _json(router.handle(
            "GET", f"/jobs/job-a/views/nodelink?limit=12{suffix}"
        ))
        seen.extend(node["vertex_id"] for node in payload["nodes"])
        assert payload["total_nodes"] == NUM_VERTICES
        cursor = payload["next_cursor"]
        if cursor is None:
            break
    assert seen == sorted(range(NUM_VERTICES), key=repr)


def test_nodelink_json_superstep_and_boxes(router):
    payload = _json(router.handle(
        "GET", "/jobs/job-a/views/nodelink?superstep=2&limit=5"
    ))
    assert payload["superstep"] == 2
    assert payload["status_boxes"]["M"] == "red"  # the planted violation
    assert payload["status_boxes"]["E"] == "green"
    assert payload["aggregators"] == {"total": 2.0}
    assert len(payload["edges"]) == 5  # one out-edge per served node


def test_tabular_search(router):
    payload = _json(router.handle("GET", "/jobs/job-a/views/tabular?q=7"))
    matched = {row["vertex_id"] for row in payload["rows"]}
    assert 7 in matched
    assert payload["total_rows"] < NUM_VERTICES
    assert payload["query"] == "7"
    assert len(payload["summaries"]) == len(payload["rows"])


def test_violations_json(router):
    payload = _json(router.handle("GET", "/jobs/job-a/views/violations"))
    assert payload["total_violations"] == 1
    violation = payload["violations"][0]
    assert violation["vertex_id"] == 7
    assert violation["superstep"] == 2
    assert violation["kind"] == "message"
    assert payload["supersteps_with_violations"] == [2]
    assert payload["exceptions"][0]["vertex_id"] == 11
    assert "ValueError" in payload["exceptions"][0]["summary"]


def test_vertex_point_query(router):
    payload = _json(router.handle("GET", "/jobs/job-a/vertex/3?superstep=1"))
    assert payload["vertex_id"] == 3
    assert payload["superstep"] == 1
    assert payload["value_after"] == 4.0
    assert payload["exception"] is None


def test_vertex_query_requires_superstep(router):
    assert router.handle("GET", "/jobs/job-a/vertex/3").status == 400


def test_vertex_query_missing_vertex_404(router):
    response = router.handle("GET", "/jobs/job-a/vertex/999?superstep=0")
    assert response.status == 404


def test_vertex_history(router):
    payload = _json(router.handle("GET", "/jobs/job-a/vertex/5/history"))
    assert payload["total_records"] == NUM_SUPERSTEPS
    assert [r["superstep"] for r in payload["records"]] == (
        list(range(NUM_SUPERSTEPS))
    )


def test_vertex_history_of_unknown_vertex_404(router):
    assert router.handle("GET", "/jobs/job-a/vertex/999/history").status == 404


def test_reproduce_without_computation_returns_context(router):
    payload = _json(router.handle("GET", "/jobs/job-a/reproduce/7/2"))
    assert payload["record"]["vertex_id"] == 7
    assert payload["record"]["violations"][0]["kind"] == "message"
    assert "computation" in payload["note"]


def test_reproduce_with_computation_generates_pytest(router):
    response = router.handle(
        "GET", "/jobs/job-a/reproduce/3/1?computation=ConnectedComponents"
    )
    assert response.status == 200
    assert response.content_type.startswith("text/x-python")
    code = response.body.decode("utf-8")
    assert "def test_reproduce_vertex_3_superstep_1" in code
    assert "ReplayHarness" in code


def test_reproduce_with_unknown_computation_400(router):
    response = router.handle(
        "GET", "/jobs/job-a/reproduce/3/1?computation=EvilClass"
    )
    assert response.status == 400
    assert "available" in _json(response)["error"]


def test_profile_heatmap(router):
    payload = _json(router.handle("GET", "/jobs/job-a/profile/heatmap"))
    assert payload["job_id"] == "job-a"
    assert payload["workers"] == [0, 1]
    assert len(payload["cells"]) == NUM_SUPERSTEPS


def test_profile_skew(router):
    payload = _json(router.handle("GET", "/jobs/job-a/profile/skew"))
    assert payload["timeline"][0]["slowest_worker"] == 1
    assert payload["max_skew"] > 1.0


def test_profile_without_metrics_404(router):
    response = router.handle("GET", "/jobs/job-b/profile/heatmap")
    assert response.status == 404
    assert "metrics.json" in _json(response)["error"]


def test_metrics_endpoint(router):
    payload = _json(router.handle("GET", "/jobs/job-a/metrics"))
    assert len(payload["rows"]) == NUM_SUPERSTEPS
    assert payload["summary"]["num_supersteps"] == NUM_SUPERSTEPS
    assert router.handle("GET", "/jobs/job-b/metrics").status == 404


def test_malformed_cursor_400(router):
    response = router.handle(
        "GET", "/jobs/job-a/views/tabular?cursor=garbage!!"
    )
    assert response.status == 400


def test_malformed_limit_400(router):
    response = router.handle("GET", "/jobs/job-a/views/tabular?limit=lots")
    assert response.status == 400


def test_malformed_superstep_400(router):
    response = router.handle(
        "GET", "/jobs/job-a/views/tabular?superstep=second"
    )
    assert response.status == 400


def test_string_cursor_keys_are_honored(router):
    cursor = encode_cursor({"after": repr(12)})
    payload = _json(router.handle(
        "GET", f"/jobs/job-a/views/tabular?limit=5&cursor={cursor}"
    ))
    first = payload["rows"][0]["vertex_id"]
    assert repr(first) > repr(12)


def test_index_page_lists_jobs(router):
    response = router.handle("GET", "/")
    assert response.status == 200
    assert response.content_type.startswith("text/html")
    html = response.body.decode("utf-8")
    assert "job-a" in html and "job-b" in html


def test_stats_endpoint(router):
    payload = _json(router.handle("GET", "/stats"))
    assert set(payload) == {"record_cache", "block_cache"}
