"""Profiler computations over persisted metrics documents."""

from repro.pregel.metrics import (
    RunMetrics,
    SuperstepMetrics,
    run_metrics_to_dict,
)
from repro.serve.profile import message_heatmap, worker_skew


def _document():
    metrics = RunMetrics()
    for superstep in range(3):
        row = SuperstepMetrics(
            superstep=superstep,
            messages_sent=100 * (superstep + 1),
            bytes_sent=1000,
            messages_combined=5,
            wall_seconds=0.01,
            compute_seconds=0.02,
        )
        row.add_worker_row(0, 0.001, 10, 60 * (superstep + 1), 600)
        row.add_worker_row(1, 0.003 * (superstep + 1), 10,
                           40 * (superstep + 1), 400)
        metrics.add_superstep(row)
    return run_metrics_to_dict(metrics)


def test_heatmap_axes_and_cells():
    heatmap = message_heatmap(_document())
    assert heatmap["workers"] == [0, 1]
    assert len(heatmap["cells"]) == 3
    first = heatmap["cells"][0]
    assert first["superstep"] == 0
    assert first["messages"] == [60, 40]
    assert first["total_messages"] == 100
    assert heatmap["max_messages"] == 180
    assert heatmap["total_messages"] == 600


def test_heatmap_handles_missing_worker_rows():
    metrics = RunMetrics()
    metrics.add_superstep(SuperstepMetrics(superstep=0, messages_sent=7))
    heatmap = message_heatmap(run_metrics_to_dict(metrics))
    assert heatmap["workers"] == []
    assert heatmap["cells"][0]["messages"] == []
    assert heatmap["cells"][0]["total_messages"] == 7


def test_heatmap_of_no_metrics():
    assert message_heatmap(None) == {
        "workers": [],
        "cells": [],
        "max_messages": 0,
        "total_messages": 0,
        "total_bytes": 0,
    }


def test_skew_timeline_names_the_straggler():
    skew = worker_skew(_document())
    assert len(skew["timeline"]) == 3
    # worker 1's time grows with the superstep; the last one is the worst.
    assert skew["worst_superstep"] == 2
    last = skew["timeline"][2]
    assert last["slowest_worker"] == 1
    assert last["skew"] > 1.5
    assert last["workers"] == 2
    assert skew["max_skew"] == last["skew"]


def test_skew_of_untimed_rows_is_none():
    metrics = RunMetrics()
    row = SuperstepMetrics(superstep=0)
    row.add_worker_row(0, 0.0, 1, 1, 1)
    metrics.add_superstep(row)
    skew = worker_skew(run_metrics_to_dict(metrics))
    assert skew["timeline"][0]["skew"] is None
    assert skew["max_skew"] is None
    assert skew["worst_superstep"] is None


def test_compute_skew_property_matches_endpoint_math():
    row = SuperstepMetrics(superstep=0)
    row.add_worker_row(0, 0.001, 1, 1, 1)
    row.add_worker_row(1, 0.003, 1, 1, 1)
    document = run_metrics_to_dict(RunMetrics(supersteps=[row]))
    endpoint = worker_skew(document)["timeline"][0]["skew"]
    assert abs(endpoint - row.compute_skew) < 1e-12
