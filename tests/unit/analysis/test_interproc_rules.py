"""Per-rule cases for the interprocedural pack (GL021-GL025), the
helper-refactored regressions for the older dataflow rules (GL009,
GL013, GL014 must keep firing when the buggy code moves into a helper),
and the report-cache invalidation regression for helper edits."""

import importlib.util
import linecache
import os
import sys

import pytest

from repro.analysis import (
    ERROR,
    PROVEN,
    WARNING,
    analyze_computation,
    analyze_module_source,
)
from repro.analysis import engine as engine_module

PRELUDE = (
    "from repro.pregel import Computation\n"
    "from repro.pregel.value_types import Short16\n"
)


def lint(source, class_name=None):
    reports = analyze_module_source(PRELUDE + source, "t.py")
    if class_name is None:
        assert len(reports) == 1, [r.class_name for r in reports]
        return reports[0]
    return next(r for r in reports if r.class_name == class_name)


def findings_of(source, rule_id, class_name=None):
    return lint(source, class_name).by_rule(rule_id)


class TestGL021HelperUseBeforeDef:
    def test_proven_unbound_in_module_helper(self):
        (finding,) = findings_of(
            "def fold(messages):\n"
            "    total = acc + 1\n"
            "    acc = 0\n"
            "    return total\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(fold(messages))\n"
            "        ctx.vote_to_halt()\n",
            "GL021",
        )
        assert finding.severity == ERROR
        assert finding.confidence == PROVEN
        assert finding.predicts == "exception"
        assert finding.method == "fold"
        assert "UnboundLocalError" in finding.message

    def test_loop_bound_accumulator_is_likely(self):
        findings = findings_of(
            "def fold(messages):\n"
            "    for m in messages:\n"
            "        acc = acc + m\n"
            "    return acc\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(fold(messages))\n"
            "        ctx.vote_to_halt()\n",
            "GL021",
        )
        assert findings
        assert all(f.severity == WARNING for f in findings)
        assert all(f.confidence != PROVEN for f in findings)

    def test_unreachable_helper_is_silent(self):
        assert findings_of(
            "def fold(messages):\n"
            "    return acc\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.vote_to_halt()\n",
            "GL021",
        ) == []

    def test_clean_helper_is_silent(self):
        assert findings_of(
            "def fold(messages):\n"
            "    acc = 0\n"
            "    for m in messages:\n"
            "        acc = acc + m\n"
            "    return acc\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(fold(messages))\n"
            "        ctx.vote_to_halt()\n",
            "GL021",
        ) == []


class TestGL021ReturnTypeConflict:
    def test_tuple_returning_helper_in_arithmetic_is_proven(self):
        (finding,) = findings_of(
            "def pair():\n"
            "    return (1, 2)\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(pair() + 1.0)\n"
            "        ctx.vote_to_halt()\n",
            "GL021",
        )
        assert finding.confidence == PROVEN
        assert finding.predicts == "exception"
        assert "TypeError" in finding.message

    def test_side_effect_helper_returning_none_in_arithmetic(self):
        findings = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(self._bump(ctx) + 1.0)\n"
            "        ctx.vote_to_halt()\n"
            "    def _bump(self, ctx):\n"
            "        ctx.send_message_to_all_neighbors(1.0)\n",
            "GL021",
        )
        assert findings
        assert "None" in findings[0].message

    def test_mixed_numeric_and_fall_off_returns_stay_silent(self):
        # One path returns a number, the other falls off: the summary
        # kind widens to unknown, and unknown must not be flagged.
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(self._maybe(ctx) + 1.0)\n"
            "        ctx.vote_to_halt()\n"
            "    def _maybe(self, ctx):\n"
            "        if ctx.superstep > 3:\n"
            "            return 1.0\n",
            "GL021",
        ) == []

    def test_numeric_helper_in_arithmetic_is_silent(self):
        assert findings_of(
            "def weight():\n"
            "    return 2.5\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(weight() + 1.0)\n"
            "        ctx.vote_to_halt()\n",
            "GL021",
        ) == []


class TestGL022ProtocolMismatch:
    MISMATCH = (
        "class C(Computation):\n"
        "    def compute(self, ctx, messages):\n"
        "        if ctx.superstep == 0:\n"
        "            ctx.send_message_to_all_neighbors((1.0, ctx.vertex_id))\n"
        "        else:\n"
        "            ctx.set_value(sum(messages))\n"
        "            ctx.vote_to_halt()\n"
    )

    def test_tuple_into_sum_is_a_proven_error(self):
        (finding,) = findings_of(self.MISMATCH, "GL022")
        assert finding.severity == ERROR
        assert finding.confidence == PROVEN
        assert finding.predicts == "exception"
        assert "TypeError" in finding.message

    def test_finding_anchors_at_the_receive_line(self):
        (finding,) = findings_of(self.MISMATCH, "GL022")
        # PRELUDE is 2 lines; sum(messages) sits on source line 6 + 2.
        assert finding.line == 8

    def test_send_through_helper_still_conflicts(self):
        findings = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            self._seed(ctx)\n"
            "        else:\n"
            "            ctx.set_value(sum(messages))\n"
            "            ctx.vote_to_halt()\n"
            "    def _seed(self, ctx):\n"
            "        ctx.send_message_to_all_neighbors((1.0, ctx.vertex_id))\n",
            "GL022",
        )
        assert findings and findings[0].confidence == PROVEN

    def test_matching_protocol_is_silent(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.send_message_to_all_neighbors(1.0)\n"
            "        else:\n"
            "            ctx.set_value(sum(messages))\n"
            "            ctx.vote_to_halt()\n",
            "GL022",
        ) == []

    def test_disjoint_phases_are_silent(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.send_message_to_all_neighbors((1.0, 2.0))\n"
            "        elif ctx.superstep == 1:\n"
            "            pairs = [a + b for a, b in messages]\n"
            "            ctx.send_message_to_all_neighbors(float(len(pairs)))\n"
            "        else:\n"
            "            ctx.set_value(sum(messages))\n"
            "            ctx.vote_to_halt()\n",
            "GL022",
        ) == []


class TestGL023PhaseGap:
    GAP = (
        "class C(Computation):\n"
        "    def compute(self, ctx, messages):\n"
        "        if ctx.superstep == 0:\n"
        "            ctx.send_message_to_all_neighbors(1.0)\n"
        "        elif ctx.superstep == 1:\n"
        "            best = max(messages, default=0.0)\n"
        "            ctx.send_message_to_all_neighbors(best + 1.0)\n"
        "        elif ctx.superstep == 3:\n"
        "            ctx.set_value(min(messages, default=-1.0))\n"
        "            ctx.vote_to_halt()\n"
        "        else:\n"
        "            ctx.vote_to_halt()\n"
    )

    def test_relay_into_silent_phase_is_proven(self):
        (finding,) = findings_of(self.GAP, "GL023")
        assert finding.severity == ERROR
        assert finding.confidence == PROVEN
        assert finding.predicts == "vertex_value"

    def test_finding_anchors_at_the_send_line(self):
        (finding,) = findings_of(self.GAP, "GL023")
        # The phase-1 relay send sits on source line 7 + 2-line PRELUDE.
        assert finding.line == 9

    def test_contiguous_phases_are_silent(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.send_message_to_all_neighbors(1.0)\n"
            "        else:\n"
            "            ctx.set_value(sum(messages))\n"
            "            ctx.vote_to_halt()\n",
            "GL023",
        ) == []


class TestGL024AggregatorLifecycle:
    def test_read_always_before_first_visible_write(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.set_value(ctx.aggregated_value('total') or 0.0)\n"
            "        else:\n"
            "            ctx.aggregate('total', 1.0)\n"
            "            ctx.vote_to_halt()\n",
            "GL024",
        )
        assert finding.severity == WARNING
        assert finding.confidence == PROVEN
        assert "total" in finding.message

    def test_gl024_supersedes_gl006_at_the_read_line(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.set_value(ctx.aggregated_value('total') or 0.0)\n"
            "        else:\n"
            "            ctx.aggregate('total', 1.0)\n"
            "            ctx.vote_to_halt()\n"
        )
        assert report.by_rule("GL024")
        assert report.by_rule("GL006") == []

    def test_write_then_later_read_is_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.aggregate('total', 1.0)\n"
            "        else:\n"
            "            ctx.set_value(ctx.aggregated_value('total'))\n"
            "            ctx.vote_to_halt()\n",
            "GL024",
        ) == []


class TestGL025Recursion:
    def test_unconditional_self_recursion_is_a_proven_error(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._spin(ctx)\n"
            "        ctx.vote_to_halt()\n"
            "    def _spin(self, ctx):\n"
            "        self._spin(ctx)\n",
            "GL025",
        )
        assert finding.severity == ERROR
        assert finding.confidence == PROVEN
        assert finding.predicts == "exception"
        assert "RecursionError" in finding.message

    def test_guarded_recursion_is_a_likely_warning(self):
        findings = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._walk(ctx, 3)\n"
            "        ctx.vote_to_halt()\n"
            "    def _walk(self, ctx, n):\n"
            "        if n > 0:\n"
            "            self._walk(ctx, n - 1)\n",
            "GL025",
        )
        assert findings
        assert all(f.severity == WARNING for f in findings)

    def test_mutual_recursion_names_the_cycle(self):
        findings = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._ping(ctx)\n"
            "        ctx.vote_to_halt()\n"
            "    def _ping(self, ctx):\n"
            "        self._pong(ctx)\n"
            "    def _pong(self, ctx):\n"
            "        self._ping(ctx)\n",
            "GL025",
        )
        assert findings
        assert any("mutually recursive" in f.message for f in findings)

    def test_iterative_helpers_are_silent(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._relax(ctx)\n"
            "        ctx.vote_to_halt()\n"
            "    def _relax(self, ctx):\n"
            "        for _ in range(3):\n"
            "            ctx.send_message_to_all_neighbors(1.0)\n",
            "GL025",
        ) == []


class TestGL025HaltStarvation:
    STARVED = (
        "class C(Computation):\n"
        "    def compute(self, ctx, messages):\n"
        "        if ctx.superstep == 3:\n"
        "            ctx.vote_to_halt()\n"
        "        else:\n"
        "            ctx.send_message_to_all_neighbors(1.0)\n"
        "        ctx.set_value(float(len(list(messages))))\n"
    )

    def test_sends_past_the_halt_window_predict_nontermination(self):
        (finding,) = findings_of(self.STARVED, "GL025")
        assert finding.severity == WARNING
        assert finding.predicts == "nontermination"
        assert finding.method == "compute"

    def test_unbounded_halt_window_is_silent(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep >= 3:\n"
            "            ctx.vote_to_halt()\n"
            "        else:\n"
            "            ctx.send_message_to_all_neighbors(1.0)\n",
            "GL025",
        ) == []

    def test_an_aggregator_disables_the_check(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 3:\n"
            "            ctx.vote_to_halt()\n"
            "        else:\n"
            "            ctx.send_message_to_all_neighbors(1.0)\n"
            "        ctx.aggregate('alive', 1)\n",
            "GL025",
        ) == []


class TestHelperRefactoredRegressions:
    """Bugs the pre-interprocedural pack proved in-line must stay proven
    when the buggy expression moves into a helper."""

    def test_gl013_overflow_through_a_helper_payload(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.send_message_to_all_neighbors("
            "Short16(self._payload()))\n"
            "        else:\n"
            "            ctx.set_value(sum(m.value for m in messages))\n"
            "            ctx.vote_to_halt()\n"
            "    def _payload(self):\n"
            "        return 40000\n",
            "GL013",
        )
        assert finding.confidence == PROVEN
        assert finding.predicts == "message"

    def test_gl013_overflow_through_a_module_helper(self):
        (finding,) = findings_of(
            "def payload():\n"
            "    return 40000\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.send_message_to_all_neighbors("
            "Short16(payload()))\n"
            "        else:\n"
            "            ctx.set_value(sum(m.value for m in messages))\n"
            "            ctx.vote_to_halt()\n",
            "GL013",
        )
        assert finding.confidence == PROVEN

    def test_gl014_halt_only_in_a_never_called_method(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(ctx.vertex_id, ctx.superstep)\n"
            "    def _finish(self, ctx):\n"
            "        ctx.vote_to_halt()\n",
            "GL014",
        )
        assert finding.confidence == PROVEN
        assert finding.predicts == "nontermination"

    def test_gl014_halt_in_a_called_helper_is_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._finish(ctx)\n"
            "    def _finish(self, ctx):\n"
            "        ctx.vote_to_halt()\n",
            "GL014",
        ) == []


class TestHelperEditInvalidatesCache:
    """Regression: the report-cache key folds helper sources, so editing
    only a module-level helper (class body untouched) must produce a
    fresh report, not the stale cached one."""

    MODULE = (
        "from repro.pregel import Computation\n"
        "from repro.pregel.value_types import Short16\n"
        "def payload():\n"
        "    return 3\n"
        "class P(Computation):\n"
        "    def compute(self, ctx, messages):\n"
        "        if ctx.superstep == 0:\n"
        "            ctx.send_message_to_all_neighbors(Short16(payload()))\n"
        "        else:\n"
        "            ctx.set_value(sum(m.value for m in messages))\n"
        "            ctx.vote_to_halt()\n"
    )

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        engine_module._REPORT_CACHE.clear()
        yield
        engine_module._REPORT_CACHE.clear()

    def test_helper_rewrite_changes_the_report(self, tmp_path):
        mod_path = tmp_path / "cache_probe_mod.py"
        mod_path.write_text(self.MODULE, encoding="utf-8")
        spec = importlib.util.spec_from_file_location(
            "cache_probe_mod", str(mod_path)
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules["cache_probe_mod"] = module
        try:
            spec.loader.exec_module(module)
            first = analyze_computation(module.P)
            assert first.by_rule("GL013") == []
            assert analyze_computation(module.P) is first   # cache hit

            # Edit ONLY the helper; the class body keeps its old digest.
            rewritten = self.MODULE.replace("return 3", "return 40000")
            mod_path.write_text(rewritten, encoding="utf-8")
            stat = os.stat(str(mod_path))
            os.utime(
                str(mod_path),
                ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000),
            )
            linecache.checkcache(str(mod_path))

            second = analyze_computation(module.P)
            assert second is not first
            (finding,) = second.by_rule("GL013")
            assert finding.confidence == PROVEN
        finally:
            sys.modules.pop("cache_probe_mod", None)
