"""Per-rule positive and negative cases for the GL001-GL008 rule pack."""

from repro.analysis import ERROR, WARNING, analyze_module_source

PRELUDE = "from repro.pregel import Computation\n"


def lint(source, filename="prog.py"):
    reports = analyze_module_source(PRELUDE + source, filename)
    assert len(reports) == 1, [r.class_name for r in reports]
    return reports[0]


def rule_ids(source):
    return lint(source).rule_ids()


class TestGL001WorkerLocalState:
    def test_instance_attribute_round_trip_flagged(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self.total = sum(messages)\n"
            "        ctx.set_value(self.total)\n"
            "        ctx.vote_to_halt()\n"
        )
        assert "GL001" in report.rule_ids()
        assert all(f.severity == ERROR for f in report.by_rule("GL001"))

    def test_augassign_counts_as_read_and_write(self):
        assert "GL001" in rule_ids(
            "class C(Computation):\n"
            "    def __init__(self):\n"
            "        self.seen = 0\n"
            "    def compute(self, ctx, messages):\n"
            "        self.seen += 1\n"
            "        ctx.vote_to_halt()\n"
        )

    def test_write_across_helper_read_in_compute(self):
        assert "GL001" in rule_ids(
            "class C(Computation):\n"
            "    def pre_superstep(self, ctx):\n"
            "        self.cache = {}\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(len(self.cache))\n"
            "        ctx.vote_to_halt()\n"
        )

    def test_init_only_constants_allowed(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def __init__(self, damping=0.85):\n"
            "        self.damping = damping\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(self.damping * sum(messages))\n"
            "        ctx.vote_to_halt()\n"
        ) == []


class TestGL002InPlaceMutation:
    def test_subscript_store_into_value_flagged(self):
        assert "GL002" in rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.value['count'] = 1\n"
            "        ctx.vote_to_halt()\n"
        )

    def test_mutator_call_through_alias_flagged(self):
        assert "GL002" in rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        path = ctx.value\n"
            "        path.append(ctx.vertex_id)\n"
            "        ctx.vote_to_halt()\n"
        )

    def test_mutating_a_message_flagged(self):
        assert "GL002" in rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        for m in messages:\n"
            "            m.sort()\n"
            "        ctx.vote_to_halt()\n"
        )

    def test_copy_then_set_value_is_clean(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        path = list(ctx.value)\n"
            "        path.append(ctx.vertex_id)\n"
            "        ctx.set_value(path)\n"
            "        ctx.vote_to_halt()\n"
        ) == []


class TestGL003UnseededRandomness:
    def test_global_random_flagged(self):
        report = lint(
            "import random\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(random.random())\n"
            "        ctx.vote_to_halt()\n"
        )
        assert report.rule_ids() == ["GL003"]
        assert report.has_errors

    def test_time_and_uuid_flagged(self):
        report = lint(
            "import time, uuid\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value((time.time(), uuid.uuid4()))\n"
            "        ctx.vote_to_halt()\n"
        )
        assert len(report.by_rule("GL003")) == 2

    def test_ctx_random_is_the_blessed_path(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(ctx.random())\n"
            "        ctx.vote_to_halt()\n"
        ) == []


class TestGL004SendAfterHalt:
    def test_send_after_halt_flagged(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.vote_to_halt()\n"
            "        ctx.send_message(0, 1)\n"
        )
        assert report.rule_ids() == ["GL004"]
        assert all(f.severity == WARNING for f in report.findings)

    def test_halt_then_return_then_send_is_clean(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep > 3:\n"
            "            ctx.vote_to_halt()\n"
            "            return\n"
            "        ctx.send_message(0, 1)\n"
        ) == []

    def test_halt_inside_branch_does_not_taint_after(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if not messages:\n"
            "            ctx.vote_to_halt()\n"
            "        else:\n"
            "            ctx.send_message(0, 1)\n"
        ) == []


class TestGL005NoHaltPath:
    def test_never_halting_flagged(self):
        # With the dataflow pack on, the CFG proof upgrades GL005 to GL014.
        assert rule_ids(
            "class Forever(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(ctx.vertex_id, 1)\n"
        ) == ["GL014"]

    def test_never_halting_flagged_without_dataflow(self):
        reports = analyze_module_source(
            PRELUDE
            + "class Forever(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(ctx.vertex_id, 1)\n",
            "prog.py",
            dataflow=False,
        )
        assert reports[0].rule_ids() == ["GL005"]

    def test_superstep_bound_exempts(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep < 30:\n"
            "            ctx.send_message(ctx.vertex_id, 1)\n"
        ) == []

    def test_aggregator_driven_halt_exempts(self):
        # TolerancePageRank-style: the master halts the job off an
        # aggregate; the vertex never calls vote_to_halt itself.
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.aggregate('delta', abs(sum(messages)))\n"
            "        ctx.send_message(ctx.vertex_id, 1)\n"
        ) == []


class TestGL006AggregatorReadWrite:
    def test_read_and_write_same_superstep_flagged(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        seen = ctx.aggregated_value('count')\n"
            "        ctx.aggregate('count', 1)\n"
            "        ctx.vote_to_halt()\n"
        ) == ["GL006"]

    def test_disjoint_aggregators_clean(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        phase = ctx.aggregated_value('phase')\n"
            "        ctx.aggregate('count', 1)\n"
            "        ctx.vote_to_halt()\n"
        ) == []


class TestGL007FixedWidthOverflow:
    def test_short16_constructor_flagged(self):
        report = lint(
            "from repro.pregel.value_types import Short16\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(0, Short16(sum(messages)))\n"
            "        ctx.vote_to_halt()\n"
        )
        assert report.rule_ids() == ["GL007"]
        (finding,) = report.findings
        assert "Short16" in finding.message
        assert finding.severity == WARNING

    def test_plain_ints_clean(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(0, sum(messages))\n"
            "    def post_superstep(self, ctx):\n"
            "        ctx.vote_to_halt()\n"
        ) == []


class TestGL008NonStrictTiebreak:
    def test_lte_against_min_flagged(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.value <= min(messages):\n"
            "            ctx.vote_to_halt()\n"
        ) == ["GL008"]

    def test_strict_lt_against_min_clean(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.value < min(messages):\n"
            "            ctx.vote_to_halt()\n"
        ) == []

    def test_lte_against_constant_clean(self):
        assert rule_ids(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.value <= 0.001:\n"
            "            ctx.vote_to_halt()\n"
        ) == []
