"""Per-rule positive/negative cases for the dataflow pack (GL009-GL015),
plus the source-hashed LRU report cache and nested/decorated class
discovery regressions."""

import pytest

from repro.analysis import (
    ERROR,
    LIKELY,
    PROVEN,
    WARNING,
    analyze_combiner,
    analyze_computation,
    analyze_module_source,
)
from repro.analysis import engine as engine_module
from repro.pregel import Computation

PRELUDE = "from repro.pregel import Computation\n"
TYPES = "from repro.pregel.value_types import Byte8, Short16, Int32, Long64\n"
COMBINER = "from repro.pregel.combiners import MessageCombiner\n"


def lint(source, class_name=None):
    reports = analyze_module_source(PRELUDE + TYPES + COMBINER + source, "t.py")
    if class_name is None:
        assert len(reports) == 1, [r.class_name for r in reports]
        return reports[0]
    return next(r for r in reports if r.class_name == class_name)


def findings_of(source, rule_id, class_name=None):
    return lint(source, class_name).by_rule(rule_id)


class TestGL009UseBeforeDef:
    def test_proven_unbound_is_error(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(total)\n"
            "        total = 1\n"
            "        ctx.vote_to_halt()\n",
            "GL009",
        )
        assert finding.severity == ERROR
        assert finding.confidence == PROVEN
        assert finding.predicts == "exception"

    def test_maybe_unbound_is_likely_warning(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if messages:\n"
            "            total = sum(messages)\n"
            "        ctx.set_value(total)\n"
            "        ctx.vote_to_halt()\n",
            "GL009",
        )
        assert finding.severity == WARNING
        assert finding.confidence == LIKELY

    def test_defined_on_all_paths_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if messages:\n"
            "            total = sum(messages)\n"
            "        else:\n"
            "            total = 0\n"
            "        ctx.set_value(total)\n"
            "        ctx.vote_to_halt()\n",
            "GL009",
        ) == []

    def test_loop_binding_counts(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        for m in messages:\n"
            "            ctx.send_message(0, m)\n"
            "        ctx.vote_to_halt()\n",
            "GL009",
        ) == []

    def test_augassign_of_unbound_flagged(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        total += 1\n"
            "        ctx.vote_to_halt()\n",
            "GL009",
        )
        assert finding.confidence == PROVEN


class TestGL010DeadSend:
    SOURCE = (
        "class C(Computation):\n"
        "    def compute(self, ctx, messages):\n"
        "        if ctx.superstep == 0:\n"
        "            ctx.send_message(ctx.vertex_id, 1)\n"
        "            return\n"
        "        if ctx.superstep >= 5:\n"
        "            ctx.send_message(ctx.vertex_id, sum(messages))\n"
        "        ctx.vote_to_halt()\n"
    )

    def test_send_delivered_outside_read_window_flagged(self):
        # Reads happen at superstep >= 5... wait, `messages` is read at
        # superstep >= 5, sends at 0 deliver at 1 and at >=5 deliver at
        # >=6 — the superstep-0 send lands in [1,1], never read.
        source = (
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.send_message(ctx.vertex_id, 1)\n"
            "        if ctx.superstep >= 5:\n"
            "            ctx.set_value(sum(messages))\n"
            "        ctx.vote_to_halt()\n"
        )
        findings = findings_of(source, "GL010")
        assert len(findings) == 1
        assert findings[0].confidence == PROVEN

    def test_send_inside_read_window_clean(self):
        source = (
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.send_message(ctx.vertex_id, 1)\n"
            "        else:\n"
            "            ctx.set_value(sum(messages))\n"
            "            ctx.vote_to_halt()\n"
        )
        assert findings_of(source, "GL010") == []

    def test_activation_only_sends_exempt(self):
        # Never reading messages is the activation idiom: the send exists
        # to keep targets active, not to carry data.
        source = (
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep < 3:\n"
            "            ctx.send_message(ctx.vertex_id, 1)\n"
            "        ctx.vote_to_halt()\n"
        )
        assert findings_of(source, "GL010") == []


class TestGL011MessagePayloadTypes:
    def test_conflicting_payload_kinds_flagged(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.send_message(0, 'seed')\n"
            "        else:\n"
            "            ctx.send_message(0, sum(messages))\n"
            "        ctx.vote_to_halt()\n",
            "GL011",
        )
        assert finding.severity == WARNING
        assert finding.confidence == LIKELY
        assert finding.predicts == "exception"

    def test_uniform_payloads_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(0, 1)\n"
            "        ctx.send_message_to_all_neighbors(sum(messages) + 1)\n"
            "        ctx.vote_to_halt()\n",
            "GL011",
        ) == []

    def test_unknown_kinds_do_not_count(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(0, self.make())\n"
            "        ctx.send_message(0, 1)\n"
            "        ctx.vote_to_halt()\n",
            "GL011",
        ) == []


class TestGL012AggregatorTypes:
    def test_conflicting_contributions_flagged(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if messages:\n"
            "            ctx.aggregate('tag', 1)\n"
            "        else:\n"
            "            ctx.aggregate('tag', 'none')\n"
            "        ctx.vote_to_halt()\n",
            "GL012",
        )
        assert "tag" in finding.message
        assert finding.confidence == LIKELY

    def test_distinct_aggregators_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.aggregate('count', 1)\n"
            "        ctx.aggregate('phase', 'go')\n"
            "        ctx.vote_to_halt()\n",
            "GL012",
        ) == []


class TestGL013IntervalOverflow:
    def test_proven_overflow_supersedes_gl007(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(0, Short16(40000))\n"
            "        ctx.vote_to_halt()\n"
        )
        (finding,) = report.by_rule("GL013")
        assert finding.severity == ERROR
        assert finding.confidence == PROVEN
        assert finding.predicts == "message"
        assert report.by_rule("GL007") == []   # superseded on that line

    def test_vertex_value_prediction_without_sends(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(Byte8(1000))\n"
            "        ctx.vote_to_halt()\n",
            "GL013",
        )
        assert finding.predicts == "vertex_value"

    def test_partial_overlap_is_likely_and_keeps_gl007(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        for i in range(40000):\n"
            "            ctx.send_message(0, Short16(i))\n"
            "        ctx.vote_to_halt()\n"
        )
        (finding,) = report.by_rule("GL013")
        assert finding.severity == WARNING
        assert finding.confidence == LIKELY
        assert finding.predicts == ""

    def test_in_range_construction_only_gl007(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(0, Short16(7))\n"
            "        ctx.vote_to_halt()\n"
        )
        assert report.by_rule("GL013") == []
        assert len(report.by_rule("GL007")) == 1

    def test_unbounded_argument_only_gl007(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(0, Short16(sum(messages)))\n"
            "        ctx.vote_to_halt()\n"
        )
        assert report.by_rule("GL013") == []
        assert len(report.by_rule("GL007")) == 1


class TestGL014ProvenNoHalt:
    def test_upgrade_with_prediction(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(ctx.vertex_id, 1)\n"
        )
        (finding,) = report.by_rule("GL014")
        assert finding.confidence == PROVEN
        assert finding.predicts == "nontermination"
        assert report.by_rule("GL005") == []

    def test_statically_dead_halt_sites_flagged(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep < 0:\n"
            "            ctx.vote_to_halt()\n"
            "        ctx.send_message(ctx.vertex_id, 1)\n"
        )
        assert len(report.by_rule("GL014")) == 1

    def test_reachable_halt_clean(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if not messages:\n"
            "            ctx.vote_to_halt()\n"
            "        ctx.send_message(ctx.vertex_id, 1)\n"
        )
        assert report.by_rule("GL014") == []
        assert report.by_rule("GL005") == []

    def test_superstep_bound_exempts(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep < 30:\n"
            "            ctx.send_message(ctx.vertex_id, 1)\n"
        )
        assert report.by_rule("GL014") == []

    def test_aggregator_exempts(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.aggregate('delta', abs(sum(messages)))\n"
            "        ctx.send_message(ctx.vertex_id, 1)\n"
        )
        assert report.by_rule("GL014") == []


class TestGL015NoncommutativeCombiner:
    def test_subtraction_proven(self):
        (finding,) = findings_of(
            "class Diff(MessageCombiner):\n"
            "    def combine(self, first, second):\n"
            "        return first - second\n",
            "GL015",
            class_name="Diff",
        )
        assert finding.severity == ERROR
        assert finding.confidence == PROVEN
        assert finding.predicts == "replay_divergence"

    def test_projection_likely(self):
        (finding,) = findings_of(
            "class KeepFirst(MessageCombiner):\n"
            "    def combine(self, first, second):\n"
            "        return first\n",
            "GL015",
            class_name="KeepFirst",
        )
        assert finding.severity == WARNING
        assert finding.confidence == LIKELY

    def test_ignored_parameter_likely(self):
        (finding,) = findings_of(
            "class HalfBlind(MessageCombiner):\n"
            "    def combine(self, first, second):\n"
            "        return first * 2 + 1\n",
            "GL015",
            class_name="HalfBlind",
        )
        assert finding.confidence == LIKELY

    def test_commutative_fold_clean(self):
        assert findings_of(
            "class Sum(MessageCombiner):\n"
            "    def combine(self, first, second):\n"
            "        return first + second\n",
            "GL015",
            class_name="Sum",
        ) == []

    def test_min_fold_clean(self):
        assert findings_of(
            "class Min(MessageCombiner):\n"
            "    def combine(self, first, second):\n"
            "        return min(first, second)\n",
            "GL015",
            class_name="Min",
        ) == []

    def test_analyze_combiner_on_live_class(self):
        from repro.pregel.combiners import MessageCombiner

        class OrderDependent(MessageCombiner):
            def combine(self, first, second):
                return first - second

        report = analyze_combiner(OrderDependent)
        assert report.rule_ids() == ["GL015"]

    def test_combiner_rules_not_applied_to_computations(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.vote_to_halt()\n"
            "    def combine(self, first, second):\n"
            "        return first - second\n"
        )
        assert report.by_rule("GL015") == []


class _ProbeA(Computation):
    def compute(self, ctx, messages):
        ctx.vote_to_halt()


class _ProbeB(Computation):
    def compute(self, ctx, messages):
        ctx.set_value(1)
        ctx.vote_to_halt()


class _ProbeC(Computation):
    def compute(self, ctx, messages):
        ctx.set_value(2)
        ctx.vote_to_halt()


class TestReportCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        engine_module._REPORT_CACHE.clear()
        yield
        engine_module._REPORT_CACHE.clear()

    def test_same_class_hits_the_cache(self):
        first = analyze_computation(_ProbeA)
        second = analyze_computation(_ProbeA)
        assert first is second

    def test_key_carries_a_source_digest(self):
        analyze_computation(_ProbeA)
        ((kind, module, qualname, digest, flow),) = list(
            engine_module._REPORT_CACHE
        )
        assert kind == "computation"
        assert qualname.endswith("_ProbeA")
        assert len(digest) == 40 and int(digest, 16) >= 0   # sha1 hex
        assert flow is True

    def test_dataflow_toggle_is_part_of_the_key(self):
        with_flow = analyze_computation(_ProbeA, dataflow=True)
        without = analyze_computation(_ProbeA, dataflow=False)
        assert with_flow is not without
        assert len(engine_module._REPORT_CACHE) == 2

    def test_cache_evicts_least_recently_used(self, monkeypatch):
        monkeypatch.setattr(engine_module, "_REPORT_CACHE_MAX", 2)
        analyze_computation(_ProbeA)
        analyze_computation(_ProbeB)
        analyze_computation(_ProbeA)   # touch A: B is now the oldest
        analyze_computation(_ProbeC)
        qualnames = {key[2] for key in engine_module._REPORT_CACHE}
        assert len(engine_module._REPORT_CACHE) == 2
        assert any(q.endswith("_ProbeA") for q in qualnames)
        assert not any(q.endswith("_ProbeB") for q in qualnames)

    def test_explicit_rules_bypass_the_cache(self):
        from repro.analysis.rules import all_rules

        analyze_computation(_ProbeA, rules=all_rules())
        assert len(engine_module._REPORT_CACHE) == 0


class TestNestedAndDecoratedClasses:
    def test_nested_class_discovered(self):
        report = lint(
            "def make():\n"
            "    class Inner(Computation):\n"
            "        def compute(self, ctx, messages):\n"
            "            ctx.set_value(total)\n"
            "            total = 1\n"
            "            ctx.vote_to_halt()\n"
            "    return Inner\n",
            class_name="Inner",
        )
        assert "GL009" in report.rule_ids()

    def test_class_inside_if_discovered(self):
        report = lint(
            "if True:\n"
            "    class Guarded(Computation):\n"
            "        def compute(self, ctx, messages):\n"
            "            ctx.vote_to_halt()\n",
            class_name="Guarded",
        )
        assert report.ok

    def test_decorated_class_discovered(self):
        report = lint(
            "def register(cls):\n"
            "    return cls\n"
            "@register\n"
            "class Tagged(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.vote_to_halt()\n",
            class_name="Tagged",
        )
        assert report.analyzed

    def test_top_level_wins_name_collisions(self):
        reports = analyze_module_source(
            PRELUDE
            + "class Dup(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.vote_to_halt()\n"
            "def shadow():\n"
            "    class Dup(Computation):\n"
            "        def compute(self, ctx, messages):\n"
            "            ctx.send_message(0, 1)\n"
            "    return Dup\n",
            "t.py",
        )
        dup = [r for r in reports if r.class_name == "Dup"]
        assert len(dup) == 1
        assert dup[0].ok   # the clean top-level definition was analyzed


class TestFindingRendering:
    def test_proven_finding_renders_confidence_and_prediction(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(0, Short16(40000))\n"
            "        ctx.vote_to_halt()\n"
        )
        text = report.render_text()
        assert "(proven)" in text
        assert "predicts:" in text

    def test_proven_findings_property(self):
        report = lint(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.send_message(0, Short16(40000))\n"
            "        ctx.vote_to_halt()\n"
        )
        proven = report.proven_findings
        assert [f.rule_id for f in proven] == ["GL013"]
