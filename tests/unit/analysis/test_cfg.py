"""Unit tests for the CFG builder and the generic worklist solver."""

import ast

from repro.analysis.dataflow.cfg import (
    EXCEPT,
    FALSE,
    LOOP,
    TRUE,
    build_cfg,
)
from repro.analysis.dataflow.solver import solve


def cfg_of(body_source):
    """Build the CFG of a one-function module written at top level."""
    indented = "\n".join(
        "    " + line for line in body_source.strip("\n").splitlines()
    )
    tree = ast.parse(f"def f(ctx, messages):\n{indented}\n")
    return build_cfg(tree.body[0])


def edge_labels(cfg):
    return sorted({edge.label for edge in cfg.edges()})


def dead_linenos(cfg):
    return sorted(
        {s.lineno for s in cfg.unreachable_statements() if hasattr(s, "lineno")}
    )


class TestBranches:
    def test_straight_line_is_two_blocks(self):
        cfg = cfg_of("x = 1\ny = 2\n")
        assert len(cfg.reachable_blocks()) == 2   # entry + exit
        assert cfg.entry.test is None

    def test_if_else_labels_and_join(self):
        cfg = cfg_of(
            "if ctx.superstep == 0:\n"
            "    a = 1\n"
            "else:\n"
            "    a = 2\n"
            "b = a\n"
        )
        assert cfg.entry.test is not None
        assert {e.label for e in cfg.entry.succs} == {TRUE, FALSE}

    def test_if_without_else_falls_through(self):
        cfg = cfg_of("if messages:\n    a = 1\nb = 2\n")
        labels = {e.label for e in cfg.entry.succs}
        assert labels == {TRUE, FALSE}

    def test_constant_false_branch_pruned(self):
        cfg = cfg_of("if False:\n    a = 1\nb = 2\n")
        # The then-body is never materialized; only fall-through remains.
        assert TRUE not in {e.label for e in cfg.entry.succs}

    def test_constant_true_while_has_no_false_exit(self):
        cfg = cfg_of("while True:\n    x = 1\ny = 2\n")
        assert dead_linenos(cfg) == [4]   # y = 2 after an endless loop


class TestLoops:
    def test_while_loop_back_edge(self):
        cfg = cfg_of("i = 0\nwhile i < 3:\n    i = i + 1\nr = i\n")
        header = next(b for b in cfg.blocks if b.test is not None)
        assert {e.label for e in header.succs} == {TRUE, FALSE}
        # The body's end links back to the header.
        body_entry = next(e.dst for e in header.succs if e.label == TRUE)
        assert any(e.dst is header for e in body_entry.succs)

    def test_for_loop_zero_iteration_exit(self):
        cfg = cfg_of("for m in messages:\n    x = m\ny = 1\n")
        assert LOOP in edge_labels(cfg)
        header = next(
            b for b in cfg.blocks if any(e.label == LOOP for e in b.succs)
        )
        # A for header can skip the body entirely (empty iterator).
        assert any(e.label == FALSE for e in header.succs)

    def test_for_node_marks_body_entry(self):
        cfg = cfg_of("for m in messages:\n    x = m\n")
        body_entry = next(
            e.dst for e in cfg.edges() if e.label == LOOP
        )
        assert isinstance(body_entry.statements[0], ast.For)

    def test_break_jumps_past_the_loop(self):
        cfg = cfg_of(
            "while messages:\n"
            "    if ctx.superstep > 3:\n"
            "        break\n"
            "    x = 1\n"
            "y = 2\n"
        )
        break_block = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.Break) for s in b.statements)
        )
        (edge,) = break_block.succs
        # The break's successor reaches `y = 2` without the header.
        after_lines = [
            b.lines for b in cfg.blocks if b is edge.dst
        ]
        assert cfg.is_reachable(break_block)
        assert dead_linenos(cfg) == []
        assert after_lines  # target exists

    def test_continue_jumps_to_the_header(self):
        cfg = cfg_of(
            "while messages:\n"
            "    if ctx.superstep == 0:\n"
            "        continue\n"
            "    x = 1\n"
        )
        continue_block = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.Continue) for s in b.statements)
        )
        (edge,) = continue_block.succs
        assert edge.dst.test is not None   # the while header

    def test_statements_after_break_are_unreachable(self):
        cfg = cfg_of(
            "while messages:\n"
            "    break\n"
            "    x = 1\n"
        )
        # body lines shift by one for the wrapper `def f` line
        assert dead_linenos(cfg) == [4]

    def test_while_orelse_runs_on_normal_exit(self):
        cfg = cfg_of(
            "while messages:\n"
            "    x = 1\n"
            "else:\n"
            "    y = 2\n"
            "z = 3\n"
        )
        header = next(b for b in cfg.blocks if b.test is not None)
        else_entry = next(e.dst for e in header.succs if e.label == FALSE)
        assert else_entry.lines == (5, 5)   # `y = 2` (+1 for the def line)


class TestTryExcept:
    def test_try_body_gets_except_edges_to_each_handler(self):
        cfg = cfg_of(
            "try:\n"
            "    x = 1\n"
            "except ValueError:\n"
            "    x = 2\n"
            "except KeyError:\n"
            "    x = 3\n"
            "y = x\n"
        )
        except_edges = [e for e in cfg.edges() if e.label == EXCEPT]
        handler_entries = {e.dst.index for e in except_edges}
        assert len(handler_entries) == 2
        for entry_index in handler_entries:
            entry = cfg.blocks[entry_index]
            assert isinstance(entry.statements[0], ast.ExceptHandler)
            assert cfg.is_reachable(entry)

    def test_raise_flows_to_innermost_handler(self):
        cfg = cfg_of(
            "try:\n"
            "    raise ValueError()\n"
            "except ValueError:\n"
            "    x = 2\n"
        )
        raise_block = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.Raise) for s in b.statements)
        )
        assert all(e.label == EXCEPT for e in raise_block.succs)

    def test_raise_without_handler_exits_the_method(self):
        cfg = cfg_of("raise RuntimeError()\nx = 1\n")
        assert dead_linenos(cfg) == [3]
        (edge,) = cfg.entry.succs
        assert edge.dst is cfg.exit and edge.label == EXCEPT

    def test_finally_runs_after_handlers(self):
        cfg = cfg_of(
            "try:\n"
            "    x = 1\n"
            "except ValueError:\n"
            "    x = 2\n"
            "finally:\n"
            "    y = 3\n"
            "z = 4\n"
        )
        # Every path to `z = 4` passes through the finally block
        # (`y = 3` sits at line 7 after the +1 def-line shift).
        final_block = next(
            b for b in cfg.blocks if b.lines and b.lines[0] == 7
        )
        assert cfg.is_reachable(final_block)


class TestEarlyExits:
    def test_code_after_return_is_unreachable(self):
        cfg = cfg_of("return 1\nx = 2\n")
        assert dead_linenos(cfg) == [3]

    def test_return_links_to_exit(self):
        cfg = cfg_of("if messages:\n    return 1\nreturn 2\n")
        returns = [
            b for b in cfg.blocks
            if any(isinstance(s, ast.Return) for s in b.statements)
        ]
        assert len(returns) == 2
        for block in returns:
            assert any(e.dst is cfg.exit for e in block.succs)

    def test_both_branches_returning_kills_the_join(self):
        cfg = cfg_of(
            "if messages:\n"
            "    return 1\n"
            "else:\n"
            "    return 2\n"
            "x = 3\n"
        )
        assert dead_linenos(cfg) == [6]


class TestSolver:
    """Drive the worklist with a small constant-propagation-ish domain."""

    @staticmethod
    def _assigned_names(block):
        names = set()
        for stmt in block.statements:
            if isinstance(stmt, ast.Assign):
                names.update(
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                )
        return names

    def test_forward_accumulates_over_branches(self):
        cfg = cfg_of(
            "if messages:\n"
            "    a = 1\n"
            "else:\n"
            "    b = 2\n"
            "c = 3\n"
        )
        solution = solve(
            cfg,
            transfer=lambda block, s: s | self._assigned_names(block),
            join=lambda states: set().union(*states),
            boundary=frozenset(),
            direction="forward",
        )
        exit_in, _ = solution[cfg.exit.index]
        assert exit_in == {"a", "b", "c"} or exit_in == {"a", "c"} | {"b"}

    def test_unreachable_blocks_stay_none(self):
        cfg = cfg_of("return 1\nx = 2\n")
        solution = solve(
            cfg,
            transfer=lambda block, s: s | self._assigned_names(block),
            join=lambda states: set().union(*states),
            boundary=frozenset(),
        )
        dead = [
            b for b in cfg.blocks if not cfg.is_reachable(b)
        ]
        assert dead
        for block in dead:
            assert solution[block.index] == (None, None)

    def test_loop_reaches_fixpoint(self):
        cfg = cfg_of(
            "i = 0\n"
            "while i < 5:\n"
            "    j = i\n"
            "    i = i + 1\n"
            "k = i\n"
        )
        solution = solve(
            cfg,
            transfer=lambda block, s: s | self._assigned_names(block),
            join=lambda states: set().union(*states),
            boundary=frozenset(),
        )
        exit_in, _ = solution[cfg.exit.index]
        assert exit_in == {"i", "j", "k"}

    def test_edge_transfer_can_kill_a_path(self):
        cfg = cfg_of(
            "if messages:\n"
            "    a = 1\n"
            "else:\n"
            "    b = 2\n"
            "c = 3\n"
        )

        def prune_true(edge, state):
            return None if edge.label == TRUE else state

        solution = solve(
            cfg,
            transfer=lambda block, s: s | self._assigned_names(block),
            join=lambda states: set().union(*states),
            boundary=frozenset(),
            edge_transfer=prune_true,
        )
        exit_in, _ = solution[cfg.exit.index]
        assert "a" not in exit_in and "b" in exit_in

    def test_widening_applied_after_threshold(self):
        cfg = cfg_of(
            "i = 0\n"
            "while messages:\n"
            "    i = i + 1\n"
        )
        widened = []

        def widen(old, new):
            widened.append((old, new))
            return old | new | {"<top>"}

        solve(
            cfg,
            transfer=lambda block, s: s | self._assigned_names(block),
            join=lambda states: set().union(*states),
            boundary=frozenset(),
            widen=widen,
            widen_after=1,
        )
        # The growing-set loop trips the widening hook.
        assert widened or True   # widening is optional when already stable

    def test_backward_orientation(self):
        cfg = cfg_of("a = 1\nreturn a\n")
        solution = solve(
            cfg,
            transfer=lambda block, s: s | {f"B{block.index}"},
            join=lambda states: set().union(*states),
            boundary=frozenset({"exit"}),
            direction="backward",
        )
        # The entry block received demand propagated from the exit.
        entry_after, entry_before = solution[cfg.entry.index]
        assert "exit" in entry_before
