"""Unit tests for the dataflow passes: reaching defs, liveness, intervals."""

import ast

from repro.analysis import contexts_from_module_source
from repro.analysis.dataflow import UNDEF, MethodDataflow
from repro.analysis.dataflow.intervals import (
    SUPERSTEP_KEY,
    Interval,
    const,
)

PRELUDE = "from repro.pregel import Computation\n"


def dataflow_of(body, method="compute"):
    """MethodDataflow of a one-method computation with the given body."""
    indented = "\n".join(
        "        " + line for line in body.strip("\n").splitlines()
    )
    source = (
        PRELUDE
        + "class C(Computation):\n"
        + f"    def {method}(self, ctx, messages):\n"
        + indented
        + "\n"
    )
    (context,) = contexts_from_module_source(source, "t.py")
    flow = context.dataflow(context.scope(method))
    assert flow is not None, context.dataflow_errors
    return flow


def uses_of(flow, name):
    return [
        (node.lineno, defs)
        for node, defs in flow.reaching.uses_with_states()
        if node.id == name
    ]


class TestReachingDefinitions:
    def test_parameters_are_defined_at_entry(self):
        flow = dataflow_of("x = ctx.superstep\nctx.set_value(x)\n")
        assert "ctx" not in flow.reaching.locals
        ((_, defs),) = uses_of(flow, "x")
        assert UNDEF not in defs

    def test_proven_unbound_use(self):
        flow = dataflow_of(
            "if ctx.superstep == 0:\n"
            "    pass\n"
            "ctx.set_value(total)\n"
            "total = 1\n"
        )
        (first_use,) = uses_of(flow, "total")
        assert first_use[1] == frozenset([UNDEF])

    def test_maybe_unbound_use(self):
        flow = dataflow_of(
            "if messages:\n"
            "    total = sum(messages)\n"
            "ctx.set_value(total)\n"
        )
        (use,) = uses_of(flow, "total")
        assert UNDEF in use[1]
        assert len(use[1]) == 2   # UNDEF plus the real def

    def test_defs_on_both_branches_cover_the_join(self):
        flow = dataflow_of(
            "if messages:\n"
            "    total = 1\n"
            "else:\n"
            "    total = 2\n"
            "ctx.set_value(total)\n"
        )
        (use,) = uses_of(flow, "total")
        assert UNDEF not in use[1]
        assert len(use[1]) == 2

    def test_augassign_reads_before_it_writes(self):
        flow = dataflow_of("total += 1\n")
        (use,) = uses_of(flow, "total")
        assert use[1] == frozenset([UNDEF])

    def test_for_target_bound_by_the_loop(self):
        flow = dataflow_of(
            "for m in messages:\n"
            "    ctx.send_message(0, m)\n"
        )
        for _line, defs in uses_of(flow, "m"):
            assert UNDEF not in defs

    def test_except_as_name_bound_in_handler(self):
        flow = dataflow_of(
            "try:\n"
            "    x = 1\n"
            "except ValueError as exc:\n"
            "    ctx.set_value(exc)\n"
        )
        for _line, defs in uses_of(flow, "exc"):
            assert UNDEF not in defs

    def test_method_name_is_not_a_local(self):
        flow = dataflow_of("ctx.vote_to_halt()\n")
        assert "compute" not in flow.reaching.locals

    def test_nested_function_locals_excluded(self):
        flow = dataflow_of(
            "def helper():\n"
            "    inner = 1\n"
            "    return inner\n"
            "ctx.set_value(helper())\n"
        )
        assert "inner" not in flow.reaching.locals
        assert "helper" in flow.reaching.locals


class TestLiveness:
    def test_dead_store_detected(self):
        flow = dataflow_of(
            "x = 1\n"
            "x = 2\n"
            "ctx.set_value(x)\n"
        )
        stores = flow.liveness.dead_stores()
        assert ("x", 4) in stores   # first store (+3 header lines)

    def test_used_store_is_live(self):
        flow = dataflow_of(
            "x = 1\n"
            "ctx.set_value(x)\n"
        )
        assert flow.liveness.dead_stores() == []

    def test_loop_carried_value_is_live(self):
        flow = dataflow_of(
            "total = 0\n"
            "for m in messages:\n"
            "    total = total + m\n"
            "ctx.set_value(total)\n"
        )
        assert flow.liveness.dead_stores() == []

    def test_branch_only_use_keeps_store_alive(self):
        flow = dataflow_of(
            "x = 1\n"
            "if messages:\n"
            "    ctx.set_value(x)\n"
        )
        assert ("x", 4) not in flow.liveness.dead_stores()


class TestIntervals:
    def test_superstep_refined_in_true_branch(self):
        flow = dataflow_of(
            "if ctx.superstep == 0:\n"
            "    ctx.send_message(0, 1)\n"
            "ctx.vote_to_halt()\n"
        )
        (send,) = flow.phases.sends
        assert send.interval == const(0)

    def test_superstep_refined_in_false_branch(self):
        flow = dataflow_of(
            "if ctx.superstep == 0:\n"
            "    return\n"
            "ctx.send_message(0, sum(messages))\n"
        )
        (send,) = flow.phases.sends
        assert send.interval == Interval(1, float("inf"))

    def test_superstep_alias_tracked(self):
        flow = dataflow_of(
            "s = ctx.superstep\n"
            "if s > 10:\n"
            "    ctx.vote_to_halt()\n"
        )
        (halt,) = flow.phases.halts
        assert halt.interval == Interval(11, float("inf"))

    def test_contradictory_guard_proves_dead(self):
        flow = dataflow_of(
            "if ctx.superstep > 5 and ctx.superstep < 3:\n"
            "    ctx.vote_to_halt()\n"
        )
        (halt,) = flow.phases.halts
        assert not halt.reachable

    def test_negative_superstep_guard_is_dead(self):
        flow = dataflow_of(
            "if ctx.superstep < 0:\n"
            "    ctx.send_message(0, 1)\n"
            "ctx.vote_to_halt()\n"
        )
        (send,) = flow.phases.sends
        assert not send.reachable

    def test_arithmetic_on_constants(self):
        flow = dataflow_of(
            "x = 3\n"
            "y = x * 2 + 1\n"
            "ctx.set_value(y)\n"
            "ctx.vote_to_halt()\n"
        )
        stmt = flow.scope.node.body[2]   # the set_value call
        state = flow.intervals.state_before(stmt)
        assert state.get("y") == const(7)

    def test_range_loop_target_bounded(self):
        flow = dataflow_of(
            "for i in range(5):\n"
            "    ctx.send_message(i, 1)\n"
            "ctx.vote_to_halt()\n"
        )
        halt_stmt = flow.scope.node.body[1]
        state = flow.intervals.state_before(halt_stmt)
        assert state.get(SUPERSTEP_KEY) is not None

    def test_widening_terminates_on_counting_loop(self):
        flow = dataflow_of(
            "i = 0\n"
            "while i < 100:\n"
            "    i = i + 1\n"
            "ctx.vote_to_halt()\n"
        )
        # Reaching a solution at all proves the widening terminated.
        (halt,) = flow.phases.halts
        assert halt.reachable

    def test_interval_algebra(self):
        a = Interval(1, 5)
        b = Interval(3, 9)
        assert a.join(b) == Interval(1, 9)
        assert a.meet(b) == Interval(3, 5)
        assert Interval(1, 2).meet(Interval(5, 6)) is None
        assert a.add(b) == Interval(4, 14)
        assert a.shift(1) == Interval(2, 6)
        assert Interval(-3, 2).abs() == Interval(0, 3)
        assert Interval(-2, 3).mul(const(-1)) == Interval(-3, 2)

    def test_site_state_resolution(self):
        flow = dataflow_of(
            "if ctx.superstep < 0:\n"
            "    ctx.send_message(0, 1)\n"
            "ctx.vote_to_halt()\n"
        )
        (send_site,) = flow.scope.ctx_calls("send_message")
        status, _state = flow.site_state(send_site.node)
        assert status == "dead"
        (halt_site,) = flow.scope.ctx_calls("vote_to_halt")
        status, state = flow.site_state(halt_site.node)
        assert status == "ok" and state is not None


class TestMethodDataflowBundle:
    def test_explain_contains_cfg_and_phases(self):
        flow = dataflow_of(
            "if ctx.superstep == 0:\n"
            "    ctx.send_message(0, 1)\n"
            "ctx.vote_to_halt()\n"
        )
        text = flow.explain()
        assert "cfg:" in text
        assert "send @ line" in text
        assert "halt @ line" in text

    def test_passes_are_lazy_and_cached(self):
        flow = dataflow_of("ctx.vote_to_halt()\n")
        assert flow._intervals is None
        first = flow.intervals
        assert flow.intervals is first

    def test_message_read_nodes_include_aliases(self):
        flow = dataflow_of(
            "msgs = messages\n"
            "total = sum(msgs)\n"
            "ctx.set_value(total)\n"
            "ctx.vote_to_halt()\n"
        )
        names = {node.id for node in flow.message_read_nodes()}
        assert "messages" in names
