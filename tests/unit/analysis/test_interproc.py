"""Unit tests for the per-class call graph and callee summaries.

Covers edge construction (calls, bare references, module helpers, the
dynamic-dispatch valve), reachability from lifecycle entries, cycle
tolerance (mutual recursion, diamonds), recursion-site proof obligations,
and the content of bottom-up CalleeSummary effects.
"""

from repro.analysis import contexts_from_module_source
from repro.analysis.dataflow.intervals import Interval

PRELUDE = (
    "from repro.pregel import Computation\n"
    "from repro.pregel.value_types import Short16\n"
)


def context_of(source, class_name=None):
    contexts = contexts_from_module_source(PRELUDE + source, "t.py")
    if class_name is None:
        assert len(contexts) == 1, [c.class_name for c in contexts]
        return contexts[0]
    return next(c for c in contexts if c.class_name == class_name)


def interproc_of(source, class_name=None):
    context = context_of(source, class_name)
    interproc = context.interproc
    assert interproc is not None, context.dataflow_errors
    return interproc


class TestCallGraphEdges:
    def test_self_method_call_is_an_edge(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._relax(ctx)\n"
            "    def _relax(self, ctx):\n"
            "        ctx.vote_to_halt()\n"
        )
        callees = ip.edges()[("method", "compute")]
        assert [(key, call is not None) for key, call in callees] == [
            (("method", "_relax"), True)
        ]

    def test_module_helper_call_is_an_edge(self):
        ip = interproc_of(
            "def fold(messages):\n"
            "    return sum(messages)\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(fold(messages))\n"
            "        ctx.vote_to_halt()\n"
        )
        keys = [key for key, _ in ip.edges()[("method", "compute")]]
        assert ("helper", "fold") in keys

    def test_bare_reference_is_an_edge_without_a_call_site(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        picker = self._pick\n"
            "        ctx.set_value(picker(messages))\n"
            "        ctx.vote_to_halt()\n"
            "    def _pick(self, messages):\n"
            "        return min(messages, default=0)\n"
        )
        callees = ip.edges()[("method", "compute")]
        assert (("method", "_pick"), None) in [
            (key, call) for key, call in callees
        ]
        assert ("method", "_pick") in ip.reachable()

    def test_unknown_targets_resolve_to_none(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.vote_to_halt()\n"
            "        other.thing()\n"
        )
        assert ip.edges()[("method", "compute")] == []


class TestReachability:
    SOURCE = (
        "class C(Computation):\n"
        "    def compute(self, ctx, messages):\n"
        "        self._used(ctx)\n"
        "    def _used(self, ctx):\n"
        "        ctx.vote_to_halt()\n"
        "    def _dead(self, ctx):\n"
        "        ctx.send_message(0, 1)\n"
    )

    def test_called_methods_are_reachable_dead_ones_are_not(self):
        ip = interproc_of(self.SOURCE)
        assert ip.reachable_scope_names() >= {"compute", "_used"}
        assert "_dead" not in ip.reachable_scope_names()

    def test_dynamic_dispatch_makes_everything_reachable(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        getattr(self, 'phase_' + str(ctx.superstep % 2))(ctx)\n"
            "    def phase_0(self, ctx):\n"
            "        ctx.send_message_to_all_neighbors(1.0)\n"
            "    def phase_1(self, ctx):\n"
            "        ctx.vote_to_halt()\n"
        )
        assert ip.reachable_scope_names() >= {"compute", "phase_0", "phase_1"}

    def test_transitive_helper_chain_is_reachable(self):
        ip = interproc_of(
            "def inner(x):\n"
            "    return x + 1\n"
            "def outer(x):\n"
            "    return inner(x) * 2\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(outer(ctx.superstep))\n"
            "        ctx.vote_to_halt()\n"
        )
        assert ip.reachable_helper_names() == {"inner", "outer"}


class TestSummaries:
    def test_send_effect_carries_callee_frame_interval(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            self._seed(ctx)\n"
            "        ctx.vote_to_halt()\n"
            "    def _seed(self, ctx):\n"
            "        ctx.send_message_to_all_neighbors(0.0)\n"
        )
        summary = ip.summary(("method", "_seed"))
        assert summary is not None and summary.complete
        sends = [e for e in summary.effects if e.kind == "send"]
        assert len(sends) == 1
        # The callee's own frame knows nothing beyond superstep >= 0;
        # the caller meets this with the [0, 0] call-site interval.
        assert sends[0].interval is None or sends[0].interval.contains(0)

    def test_halt_effect_is_summarized(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._finish(ctx)\n"
            "    def _finish(self, ctx):\n"
            "        ctx.vote_to_halt()\n"
        )
        summary = ip.summary(("method", "_finish"))
        assert any(e.kind == "halt" for e in summary.effects)

    def test_return_kind_and_interval_of_constant_helper(self):
        ip = interproc_of(
            "def forty():\n"
            "    return 40000\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(forty())\n"
            "        ctx.vote_to_halt()\n"
        )
        summary = ip.summary(("helper", "forty"))
        assert summary.return_kind == "number"
        assert summary.return_interval == Interval(40000, 40000)

    def test_tuple_returning_helper_has_tuple_kind(self):
        ip = interproc_of(
            "def pair(a, b):\n"
            "    return (a, b)\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(pair(1, 2))\n"
            "        ctx.vote_to_halt()\n"
        )
        assert ip.summary(("helper", "pair")).return_kind == "tuple"

    def test_fall_off_the_end_widens_the_return_kind(self):
        ip = interproc_of(
            "def maybe(x):\n"
            "    if x:\n"
            "        return 1\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(maybe(ctx.superstep))\n"
            "        ctx.vote_to_halt()\n"
        )
        # One branch returns a number, the other falls off and returns
        # None — the kind must not claim "number" for every call.
        assert ip.summary(("helper", "maybe")).return_kind != "number"

    def test_reads_messages_flag(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(self._fold(messages))\n"
            "        ctx.vote_to_halt()\n"
            "    def _fold(self, messages):\n"
            "        return sum(messages)\n"
        )
        assert ip.summary(("method", "_fold")).reads_messages

    def test_effects_are_transitive_through_nested_helpers(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._outer(ctx)\n"
            "    def _outer(self, ctx):\n"
            "        self._inner(ctx)\n"
            "    def _inner(self, ctx):\n"
            "        ctx.send_message_to_all_neighbors(1.0)\n"
            "        ctx.vote_to_halt()\n"
        )
        kinds = {e.kind for e in ip.summary(("method", "_outer")).effects}
        assert "send" in kinds and "halt" in kinds


class TestCyclesAndDiamonds:
    def test_mutual_recursion_does_not_hang_or_raise(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._even(ctx, 4)\n"
            "        ctx.vote_to_halt()\n"
            "    def _even(self, ctx, n):\n"
            "        if n:\n"
            "            self._odd(ctx, n - 1)\n"
            "    def _odd(self, ctx, n):\n"
            "        if n:\n"
            "            self._even(ctx, n - 1)\n"
        )
        for key in ip.edges():
            ip.summary(key)   # must terminate
        summary = ip.summary(("method", "_even"))
        assert summary is not None

    def test_summary_returns_none_mid_cycle_only(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.vote_to_halt()\n"
            "    def _leaf(self, ctx):\n"
            "        ctx.send_message(0, 1)\n"
        )
        assert ip.summary(("method", "_leaf")) is not None
        assert ip.summary(("method", "missing")) is None

    def test_diamond_call_graph_summarizes_each_node_once(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._left(ctx)\n"
            "        self._right(ctx)\n"
            "        ctx.vote_to_halt()\n"
            "    def _left(self, ctx):\n"
            "        self._base(ctx)\n"
            "    def _right(self, ctx):\n"
            "        self._base(ctx)\n"
            "    def _base(self, ctx):\n"
            "        ctx.send_message_to_all_neighbors(1.0)\n"
        )
        left = ip.summary(("method", "_left"))
        right = ip.summary(("method", "_right"))
        base = ip.summary(("method", "_base"))
        assert base.complete
        # Both arms see the shared base's send effect.
        assert any(e.kind == "send" for e in left.effects)
        assert any(e.kind == "send" for e in right.effects)
        # Memoized: asking again returns the identical object.
        assert ip.summary(("method", "_base")) is base


class TestRecursionSites:
    def test_unconditional_self_recursion_is_proven(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._spin(ctx)\n"
            "        ctx.vote_to_halt()\n"
            "    def _spin(self, ctx):\n"
            "        self._spin(ctx)\n"
        )
        sites = ip.recursion_sites()
        assert any(
            caller == callee == ("method", "_spin") and proven
            for caller, callee, _call, proven in sites
        )

    def test_guarded_self_recursion_stays_likely(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._walk(ctx, 3)\n"
            "        ctx.vote_to_halt()\n"
            "    def _walk(self, ctx, n):\n"
            "        if n > 0:\n"
            "            self._walk(ctx, n - 1)\n"
        )
        sites = ip.recursion_sites()
        assert sites and all(not proven for *_rest, proven in sites)

    def test_mutual_recursion_is_reported_unproven(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._ping(ctx)\n"
            "        ctx.vote_to_halt()\n"
            "    def _ping(self, ctx):\n"
            "        self._pong(ctx)\n"
            "    def _pong(self, ctx):\n"
            "        self._ping(ctx)\n"
        )
        sites = ip.recursion_sites()
        assert sites
        assert all(not proven for *_rest, proven in sites)

    def test_unreachable_recursion_is_ignored(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.vote_to_halt()\n"
            "    def _dead_spin(self, ctx):\n"
            "        self._dead_spin(ctx)\n"
        )
        assert ip.recursion_sites() == []

    def test_straight_line_code_has_no_recursion_sites(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._relax(ctx)\n"
            "        ctx.vote_to_halt()\n"
            "    def _relax(self, ctx):\n"
            "        ctx.send_message_to_all_neighbors(1.0)\n"
        )
        assert ip.recursion_sites() == []


class TestExplain:
    def test_explain_names_edges_and_summaries(self):
        ip = interproc_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        self._relax(ctx)\n"
            "        ctx.vote_to_halt()\n"
            "    def _relax(self, ctx):\n"
            "        ctx.send_message_to_all_neighbors(1.0)\n"
        )
        text = ip.explain()
        assert "_relax" in text
        assert "compute" in text

    def test_helper_source_text_is_stable_and_covers_helpers(self):
        context = context_of(
            "def fold(messages):\n"
            "    return sum(messages)\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(fold(messages))\n"
            "        ctx.vote_to_halt()\n"
        )
        text = context.helper_source_text()
        assert "fold" in text
        assert text == context.helper_source_text()
