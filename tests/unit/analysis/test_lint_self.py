"""Self-check: graft-lint over everything this repo ships.

Clean algorithms must produce zero findings (no false positives); the
paper-scenario buggy variants are positive fixtures — each must be flagged
with the rule that matches its planted bug. The examples are linted from
source (never imported: they run jobs at import time).
"""

import glob
import os

import pytest

import repro.algorithms as algorithms
from repro.analysis import analyze_computation, analyze_path
from repro.pregel import Computation

pytestmark = pytest.mark.lint_self

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..", "..")

BUGGY = {
    "BuggyRandomWalk": "GL007",       # Short16 wrap-around (Scenario 4.2)
    "BuggyGraphColoring": "GL008",    # non-strict <= vs min() (Scenario 4.1)
    "BuggyLabelPropagation": "GL016", # last-wins tie-break (determinism race)
    "BuggyPhasedShortestPaths": "GL022",  # tuple payload into sum() phase
    "BuggyPhaseGapBroadcast": "GL023",    # delivery into a silent phase
}


def shipped_computations():
    classes = []
    for name in sorted(dir(algorithms)):
        obj = getattr(algorithms, name)
        if (
            isinstance(obj, type)
            and issubclass(obj, Computation)
            and obj is not Computation
        ):
            classes.append(obj)
    return classes


@pytest.mark.parametrize(
    "cls",
    [c for c in shipped_computations() if c.__name__ not in BUGGY],
    ids=lambda c: c.__name__,
)
def test_clean_shipped_algorithms_have_zero_findings(cls):
    report = analyze_computation(cls)
    assert report.analyzed
    assert report.ok, report.render_text()


@pytest.mark.parametrize("name,expected_rule", sorted(BUGGY.items()))
def test_buggy_variants_are_flagged_with_their_rule(name, expected_rule):
    report = analyze_computation(getattr(algorithms, name))
    assert expected_rule in report.rule_ids(), report.render_text()


def test_at_least_the_papers_two_buggy_scenarios_are_covered():
    assert len(shipped_computations()) >= 10


@pytest.mark.parametrize(
    "path",
    sorted(glob.glob(os.path.join(REPO_ROOT, "examples", "*.py"))),
    ids=os.path.basename,
)
def test_examples_lint_without_errors(path):
    for report in analyze_path(path):
        assert not report.has_errors, report.render_text()
