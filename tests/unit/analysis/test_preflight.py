"""The pre-flight lint hook in debug_run: warn by default, refuse on strict."""

import warnings

import pytest

from repro.analysis import GraftLintWarning
from repro.common.errors import StaticAnalysisError
from repro.graft import DebugConfig, debug_run
from repro.graph import GraphBuilder
from repro.pregel import Computation


class Clean(Computation):
    def compute(self, ctx, messages):
        if ctx.superstep >= 1:
            ctx.vote_to_halt()
            return
        ctx.send_message_to_all_neighbors(1)


class Hoarder(Computation):
    """Keeps worker-local state (GL001) — the Section 7 replay hazard."""

    def compute(self, ctx, messages):
        self.best = max([ctx.value] + list(messages))
        ctx.set_value(self.best)
        ctx.vote_to_halt()


class CaptureZero(DebugConfig):
    def vertices_to_capture(self):
        return (0,)


def triangle():
    builder = GraphBuilder(directed=False)
    builder.cycle(0, 1, 2)
    return builder.build()


class TestStrictMode:
    def test_strict_refuses_before_any_superstep(self):
        with pytest.raises(StaticAnalysisError) as excinfo:
            debug_run(Hoarder, triangle(), CaptureZero(), strict=True)
        assert excinfo.value.class_name == "Hoarder"
        assert any(f.rule_id == "GL001" for f in excinfo.value.findings)
        assert "strict=False" in str(excinfo.value)

    def test_strict_passes_clean_programs(self):
        run = debug_run(Clean, triangle(), CaptureZero(), strict=True, seed=1)
        assert run.lint_report is not None
        assert run.lint_report.ok


class TestWarnByDefault:
    def test_hazardous_program_warns_but_runs(self):
        with pytest.warns(GraftLintWarning, match="GL001"):
            run = debug_run(Hoarder, triangle(), CaptureZero(), seed=1)
        assert run.lint_report.has_errors
        assert "GL001" in run.lint_report.rule_ids()

    def test_clean_program_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", GraftLintWarning)
            run = debug_run(Clean, triangle(), CaptureZero(), seed=1)
        assert run.lint_report.ok

    def test_lint_false_skips_the_pass_entirely(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", GraftLintWarning)
            run = debug_run(Hoarder, triangle(), CaptureZero(), lint=False, seed=1)
        assert run.lint_report is None


class TestCrosslinks:
    def test_explain_violation_maps_kind_to_rules(self):
        from repro.graft.capture import Violation

        with pytest.warns(GraftLintWarning):
            run = debug_run(Hoarder, triangle(), CaptureZero(), seed=1)
        # GL001 predicts replay divergence, not message-level violations.
        divergence = Violation("replay_divergence", 0, 0, {})
        message = Violation("message", 0, 0, {})
        assert [f.rule_id for f in run.explain_violation(divergence)] == ["GL001"]
        assert run.explain_violation(message) == ()

    def test_fidelity_report_carries_prediction(self):
        from repro.graft import verify_run_fidelity

        with pytest.warns(GraftLintWarning):
            run = debug_run(Hoarder, triangle(), CaptureZero(), seed=1)
        report = verify_run_fidelity(run)
        if not report.faithful:
            assert "GL001" in {f.rule_id for f in report.predicted_by}
            assert "predicted by static analysis" in report.summary()
