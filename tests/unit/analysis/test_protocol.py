"""Unit tests for the cross-superstep message-protocol table.

Covers send-site shapes and delivery intervals, receive-pattern
classification, the payload/consumption conflict matrix, phase-gap
detection, aggregator write->read lifecycle hazards, and the rendered
table used by ``--explain-cfg``.
"""

from repro.analysis import contexts_from_module_source
from repro.analysis.dataflow.intervals import Interval

PRELUDE = (
    "from repro.pregel import Computation\n"
    "from repro.pregel.value_types import Short16\n"
)


def protocol_of(source, class_name=None):
    contexts = contexts_from_module_source(PRELUDE + source, "t.py")
    if class_name is None:
        assert len(contexts) == 1, [c.class_name for c in contexts]
        context = contexts[0]
    else:
        context = next(c for c in contexts if c.class_name == class_name)
    protocol = context.protocol
    assert protocol is not None, context.dataflow_errors
    return protocol


PHASED = (
    "class C(Computation):\n"
    "    def compute(self, ctx, messages):\n"
    "        if ctx.superstep == 0:\n"
    "            ctx.send_message_to_all_neighbors((1.0, ctx.vertex_id))\n"
    "        else:\n"
    "            ctx.set_value(sum(messages))\n"
    "            ctx.vote_to_halt()\n"
)


class TestSendSites:
    def test_payload_kind_arity_and_delivery(self):
        protocol = protocol_of(PHASED)
        (send,) = protocol.sends
        assert send.kind == "tuple"
        assert send.arity == 2
        assert send.interval == Interval(0, 0)
        assert send.delivery == Interval(1, 1)

    def test_send_through_helper_carries_via_tag(self):
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            self._seed(ctx)\n"
            "        ctx.vote_to_halt()\n"
            "    def _seed(self, ctx):\n"
            "        ctx.send_message_to_all_neighbors(0.0)\n"
        )
        (send,) = protocol.sends
        assert send.via and "_seed" in send.via
        assert send.kind == "number"
        assert send.delivery == Interval(1, 1)

    def test_no_messages_means_empty_table(self):
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.vote_to_halt()\n"
        )
        assert protocol.sends == []
        assert "no sends" in protocol.render()


class TestReceiveClassification:
    def cases(self):
        return [
            ("ctx.set_value(sum(messages))", "fold-arith"),
            ("ctx.set_value(min(messages, default=0))", "fold-compare"),
            ("ctx.set_value(len(list(messages)))", "collect"),
            ("[a + b for a, b in messages]", "iter-unpack"),
            ("[m[0] for m in messages]", "iter-subscript"),
            ("[m + 1 for m in messages]", "iter-arith"),
            ("ctx.set_value(1 if messages else 0)", "presence"),
        ]

    def test_patterns(self):
        for consume, expected in self.cases():
            protocol = protocol_of(
                "class C(Computation):\n"
                "    def compute(self, ctx, messages):\n"
                f"        {consume}\n"
                "        ctx.vote_to_halt()\n"
            )
            patterns = {r.pattern for r in protocol.receives}
            assert expected in patterns, (consume, patterns)

    def test_iter_unpack_records_arity(self):
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        for a, b, c in messages:\n"
            "            ctx.set_value(a + b + c)\n"
            "        ctx.vote_to_halt()\n"
        )
        (receive,) = [
            r for r in protocol.receives if r.pattern == "iter-unpack"
        ]
        assert receive.arity == 3

    def test_helper_receive_inherits_call_site_interval(self):
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep >= 1:\n"
            "            self._fold(ctx, messages)\n"
            "        ctx.vote_to_halt()\n"
            "    def _fold(self, ctx, messages):\n"
            "        ctx.set_value(sum(messages))\n"
        )
        (receive,) = [
            r for r in protocol.receives if r.pattern == "fold-arith"
        ]
        assert receive.reachable
        assert receive.interval.lo >= 1


class TestConflictMatrix:
    def conflict_for(self, payload, consume):
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            f"            ctx.send_message_to_all_neighbors({payload})\n"
            "        else:\n"
            f"            {consume}\n"
            "            ctx.vote_to_halt()\n"
        )
        return protocol.conflicts()

    def test_tuple_into_sum_is_a_proven_type_error(self):
        (conflict,) = self.conflict_for(
            "(1.0, ctx.vertex_id)", "ctx.set_value(sum(messages))"
        )
        assert conflict.proven
        assert conflict.exception == "TypeError"

    def test_number_into_unpack_is_proven(self):
        conflicts = self.conflict_for(
            "1.0", "total = [a + b for a, b in messages]"
        )
        assert any(
            c.proven and c.exception == "TypeError" for c in conflicts
        )

    def test_tuple_arity_mismatch_is_a_value_error(self):
        conflicts = self.conflict_for(
            "(1.0, 2.0, 3.0)", "total = [a + b for a, b in messages]"
        )
        assert any(c.exception == "ValueError" and c.proven for c in conflicts)

    def test_number_into_subscript_is_proven(self):
        conflicts = self.conflict_for("1.0", "vals = [m[0] for m in messages]")
        assert any(c.proven for c in conflicts)

    def test_tuple_index_out_of_range_is_an_index_error(self):
        conflicts = self.conflict_for(
            "(1.0, 2.0)", "vals = [m[5] for m in messages]"
        )
        assert any(c.exception == "IndexError" and c.proven for c in conflicts)

    def test_matching_protocol_has_no_conflicts(self):
        assert self.conflict_for("1.0", "ctx.set_value(sum(messages))") == []
        assert self.conflict_for(
            "(1.0, 2.0)", "total = [a + b for a, b in messages]"
        ) == []

    def test_disjoint_phases_do_not_conflict(self):
        # The tuple is delivered in superstep 1 but the sum only runs in
        # superstep 3+ and a numeric send covers the sum's window.
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.send_message_to_all_neighbors((1.0, 2.0))\n"
            "        elif ctx.superstep == 1:\n"
            "            pairs = [a + b for a, b in messages]\n"
            "            ctx.send_message_to_all_neighbors(float(len(pairs)))\n"
            "        else:\n"
            "            ctx.set_value(sum(messages))\n"
            "            ctx.vote_to_halt()\n"
        )
        assert protocol.conflicts() == []


class TestPhaseGaps:
    GAP = (
        "class C(Computation):\n"
        "    def compute(self, ctx, messages):\n"
        "        if ctx.superstep == 0:\n"
        "            ctx.send_message_to_all_neighbors(1.0)\n"
        "        elif ctx.superstep == 1:\n"
        "            best = max(messages, default=0.0)\n"
        "            ctx.send_message_to_all_neighbors(best + 1.0)\n"
        "        elif ctx.superstep == 3:\n"
        "            ctx.set_value(min(messages, default=-1.0))\n"
        "            ctx.vote_to_halt()\n"
        "        else:\n"
        "            ctx.vote_to_halt()\n"
    )

    def test_relay_into_silent_phase_is_a_gap(self):
        protocol = protocol_of(self.GAP)
        gaps = protocol.phase_gaps()
        assert len(gaps) == 1
        (gap,) = gaps
        # The phase-1 relay is delivered in superstep 2; reads happen
        # only in supersteps 1 and 3.
        assert gap.send.delivery == Interval(2, 2)
        assert gap.proven

    def test_contiguous_phases_have_no_gap(self):
        protocol = protocol_of(PHASED)
        assert protocol.phase_gaps() == []

    def test_delivery_outside_the_hull_is_not_a_gap(self):
        # Sends after the last read are GL010's territory, not a gap.
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.set_value(sum(messages))\n"
            "        if ctx.superstep >= 5:\n"
            "            ctx.send_message_to_all_neighbors(1.0)\n"
            "        ctx.vote_to_halt()\n"
        )
        assert protocol.phase_gaps() == []


class TestAggregatorHazards:
    def test_read_always_before_first_visible_write(self):
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            total = ctx.aggregated_value('total')\n"
            "            ctx.set_value(total or 0.0)\n"
            "        else:\n"
            "            ctx.aggregate('total', 1.0)\n"
            "            ctx.vote_to_halt()\n"
        )
        (hazard,) = protocol.aggregator_hazards()
        assert hazard.name == "total"
        assert hazard.reads_hull == Interval(0, 0)
        assert hazard.writes_hull.lo >= 1

    def test_write_then_read_next_superstep_is_clean(self):
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.aggregate('total', 1.0)\n"
            "        else:\n"
            "            ctx.set_value(ctx.aggregated_value('total'))\n"
            "            ctx.vote_to_halt()\n"
        )
        assert protocol.aggregator_hazards() == []

    def test_dynamic_aggregator_name_disables_the_check(self):
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        name = 'a' if ctx.superstep % 2 else 'b'\n"
            "        ctx.set_value(ctx.aggregated_value(name) or 0.0)\n"
            "        if ctx.superstep > 2:\n"
            "            ctx.aggregate(name, 1.0)\n"
            "        ctx.vote_to_halt()\n"
        )
        assert protocol.aggregator_hazards() == []

    def test_write_only_and_read_only_names_are_gl006_territory(self):
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.aggregate('w', 1.0)\n"
            "        ctx.set_value(ctx.aggregated_value('r') or 0.0)\n"
            "        ctx.vote_to_halt()\n"
        )
        assert protocol.aggregator_hazards() == []


class TestRender:
    def test_render_lists_sends_receives_and_aggregators(self):
        protocol = protocol_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.superstep == 0:\n"
            "            ctx.send_message_to_all_neighbors(1.0)\n"
            "            ctx.aggregate('seen', 1)\n"
            "        else:\n"
            "            ctx.set_value(sum(messages))\n"
            "            ctx.vote_to_halt()\n"
        )
        text = protocol.render()
        assert "sends:" in text
        assert "receives:" in text
        assert "aggregators:" in text
        assert "number payload" in text
        assert "sums the whole inbox" in text
