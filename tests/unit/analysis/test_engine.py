"""Unit tests for the graft-lint engine (scopes, MRO handling, reports)."""

from repro.analysis import analyze_computation, analyze_module_source
from repro.analysis.engine import ClassContext
from repro.pregel import Computation


class Quiet(Computation):
    """A minimal clean program used throughout."""

    def compute(self, ctx, messages):
        ctx.vote_to_halt()


class TestAnalyzeComputation:
    def test_clean_class_reports_clean(self):
        report = analyze_computation(Quiet)
        assert report.analyzed
        assert report.ok
        assert report.findings == []
        assert "clean" in report.summary()

    def test_filename_and_class_name_recorded(self):
        report = analyze_computation(Quiet)
        assert report.class_name == "Quiet"
        assert report.filename.endswith("test_engine.py")

    def test_inherited_methods_analyzed(self):
        import random

        class Base(Computation):
            def compute(self, ctx, messages):
                ctx.set_value(self._draw(ctx))
                ctx.vote_to_halt()

            def _draw(self, ctx):
                return ctx.random()

        class Derived(Base):
            def _draw(self, ctx):
                return random.random()   # the override introduces the bug

        assert analyze_computation(Base).ok
        derived = analyze_computation(Derived)
        assert derived.rule_ids() == ["GL003"]

    def test_source_unavailable_is_skipped_not_failed(self):
        namespace = {}
        exec(
            "from repro.pregel import Computation\n"
            "class Ghost(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.vote_to_halt()\n",
            namespace,
        )
        report = analyze_computation(namespace["Ghost"])
        assert not report.analyzed
        assert report.ok
        assert "not analyzed" in report.summary()

    def test_reports_are_cached_per_class(self):
        assert analyze_computation(Quiet) is analyze_computation(Quiet)


class TestAnalyzeModuleSource:
    SOURCE = """
from repro.pregel import Computation

LIMIT = 3

class Local(Computation):
    def compute(self, ctx, messages):
        ctx.vote_to_halt()

class Child(Local):
    def compute(self, ctx, messages):
        self.count = ctx.superstep     # run-time instance state
        ctx.set_value(self.count)
        ctx.vote_to_halt()

class NotAProgram:
    def compute(self, ctx, messages):
        pass
"""

    def test_detects_computation_classes_only(self):
        reports = analyze_module_source(self.SOURCE, "snippet.py")
        assert sorted(r.class_name for r in reports) == ["Child", "Local"]

    def test_inheritance_within_module_followed(self):
        reports = {
            r.class_name: r
            for r in analyze_module_source(self.SOURCE, "snippet.py")
        }
        assert reports["Local"].ok
        assert "GL001" in reports["Child"].rule_ids()

    def test_findings_carry_the_given_filename(self):
        reports = analyze_module_source(self.SOURCE, "snippet.py")
        for report in reports:
            assert report.filename == "snippet.py"
            for finding in report.findings:
                assert finding.filename == "snippet.py"
                assert finding.location().startswith("snippet.py:")

    def test_shipped_algorithm_bases_recognized(self):
        source = (
            "from repro.algorithms import RandomWalk\n"
            "from repro.pregel.value_types import Short16\n"
            "class MyWalk(RandomWalk):\n"
            "    def _make_counter(self, count):\n"
            "        return Short16(count)\n"
        )
        reports = analyze_module_source(source, "walk.py")
        assert [r.class_name for r in reports] == ["MyWalk"]
        assert reports[0].rule_ids() == ["GL007"]


class TestReportRendering:
    def test_json_round_trips(self):
        import json

        source = (
            "from repro.pregel import Computation\n"
            "import random\n"
            "class R(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(random.random())\n"
            "        ctx.vote_to_halt()\n"
        )
        (report,) = analyze_module_source(source, "r.py")
        payload = json.loads(report.render_json())
        assert payload["class_name"] == "R"
        assert payload["ok"] is False
        assert payload["findings"][0]["rule_id"] == "GL003"
        assert payload["findings"][0]["severity"] == "error"

    def test_text_rendering_lists_location_and_hint(self):
        source = (
            "from repro.pregel import Computation\n"
            "import random\n"
            "class R(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(random.random())\n"
            "        ctx.vote_to_halt()\n"
        )
        (report,) = analyze_module_source(source, "r.py")
        text = report.render_text()
        assert "[GL003]" in text
        assert "r.py:5" in text
        assert "hint:" in text

    def test_findings_sorted_errors_first(self):
        source = (
            "from repro.pregel import Computation\n"
            "import random\n"
            "class R(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.vote_to_halt()\n"
            "        ctx.send_message(0, 1)\n"       # GL004 warning, line 6
            "        ctx.set_value(random.random())\n"  # GL003 error, line 7
        )
        (report,) = analyze_module_source(source, "r.py")
        severities = [f.severity for f in report.findings]
        assert severities == sorted(
            severities, key=lambda s: {"error": 0, "warning": 1}[s]
        )


class TestConstantResolution:
    def test_module_constant_resolved_for_aggregators(self):
        source = (
            "from repro.pregel import Computation\n"
            "PHASE = 'phase'\n"
            "class P(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if ctx.aggregated_value(PHASE) == 'go':\n"
            "            ctx.aggregate(PHASE, 1)\n"
            "        ctx.vote_to_halt()\n"
        )
        (report,) = analyze_module_source(source, "p.py")
        (finding,) = report.by_rule("GL006")
        assert "'phase'" in finding.message

    def test_context_helpers(self):
        context = ClassContext("X", "<x>", {}, {"NAME": "n"})
        import ast

        assert context.resolve_constant(ast.parse("NAME", mode="eval").body) == "n"
        assert context.resolve_constant(ast.parse("'lit'", mode="eval").body) == "lit"
        assert context.resolve_constant(ast.parse("f()", mode="eval").body) is None
