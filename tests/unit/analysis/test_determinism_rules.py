"""The determinism pack: fold classification facts and rules GL016-GL020.

The commutativity classifier is exercised over the full fold-idiom table
(``+``, ``*``, ``min``, ``max``, ``-``, ``/``, string concat, last-wins),
then each rule gets positive/negative cases in the style of the GL009-015
suite.
"""

import ast

import pytest

from repro.analysis import (
    ERROR,
    LIKELY,
    PROVEN,
    WARNING,
    analyze_computation,
    analyze_module_source,
    classify_fold_op,
    message_fold_sites,
    messages_order_uses,
    shared_state_writes,
)
from repro.analysis.scopes import build_method_scope

PRELUDE = "from repro.pregel import Computation\n"


def lint(source, class_name=None):
    reports = analyze_module_source(PRELUDE + source, "t.py")
    if class_name is None:
        assert len(reports) == 1, [r.class_name for r in reports]
        return reports[0]
    return next(r for r in reports if r.class_name == class_name)


def findings_of(source, rule_id, class_name=None):
    return lint(source, class_name).by_rule(rule_id)


def compute_scope(body):
    """Build a MethodScope for a compute() whose body is ``body``."""
    source = (
        "class C:\n"
        "    def compute(self, ctx, messages):\n"
        + "".join(f"        {line}\n" for line in body)
    )
    tree = ast.parse(source)
    func = tree.body[0].body[0]
    return build_method_scope(func, "C", "t.py", {"compute"})


# -- the fold-idiom table ------------------------------------------------------


class TestClassifyFoldOp:
    @pytest.mark.parametrize("op", [ast.Add, ast.Mult, ast.BitOr,
                                    ast.BitAnd, ast.BitXor])
    def test_commutative_ops(self, op):
        assert classify_fold_op(op) == "commutative"
        assert classify_fold_op(op()) == "commutative"

    @pytest.mark.parametrize("op", [ast.Sub, ast.Div, ast.FloorDiv, ast.Mod,
                                    ast.Pow, ast.LShift, ast.RShift])
    def test_noncommutative_ops(self, op):
        assert classify_fold_op(op) == "noncommutative"

    def test_unknown_op(self):
        assert classify_fold_op(ast.MatMult) == "unknown"


class TestFoldIdiomTable:
    """One row per idiom: what the fact extractor sees in the loop body."""

    def sites(self, *body_lines):
        body = list(body_lines) + ["ctx.set_value(acc)"]
        return message_fold_sites(compute_scope(body))

    def test_plus_fold_is_commutative_augassign(self):
        (site,) = self.sites("acc = 0", "for m in messages:", "    acc += m")
        assert site.kind == "augassign"
        assert site.op == "+"
        assert site.order_class == "commutative"
        assert site.escapes

    def test_star_fold_is_commutative(self):
        (site,) = self.sites("acc = 1", "for m in messages:", "    acc *= m")
        assert site.op == "*"
        assert site.order_class == "commutative"

    def test_min_idiom_is_strictly_guarded_last_wins(self):
        (site,) = self.sites(
            "acc = 10**9",
            "for m in messages:",
            "    if m < acc:",
            "        acc = m",
        )
        assert site.kind == "last_wins"
        assert site.guard == "strict"

    def test_max_idiom_is_strictly_guarded_last_wins(self):
        (site,) = self.sites(
            "acc = 0",
            "for m in messages:",
            "    if m > acc:",
            "        acc = m",
        )
        assert site.kind == "last_wins"
        assert site.guard == "strict"

    def test_minus_fold_is_noncommutative(self):
        (site,) = self.sites("acc = 0", "for m in messages:", "    acc -= m")
        assert site.op == "-"
        assert site.order_class == "noncommutative"

    def test_div_fold_is_noncommutative_binop(self):
        (site,) = self.sites(
            "acc = 1.0", "for m in messages:", "    acc = acc / m"
        )
        assert site.kind == "binop"
        assert site.op == "/"
        assert site.order_class == "noncommutative"

    def test_concat_fold_is_commutative_op_with_string_evidence(self):
        (site,) = self.sites(
            "acc = ''", "for m in messages:", "    acc += str(m)"
        )
        assert site.op == "+"
        assert site.string_evidence

    def test_unconditional_last_wins(self):
        (site,) = self.sites("acc = None", "for m in messages:", "    acc = m")
        assert site.kind == "last_wins"
        assert site.guard is None

    def test_nonstrict_guard_detected(self):
        (site,) = self.sites(
            "acc = 0",
            "best = 0",
            "for m in messages:",
            "    if m >= best:",
            "        acc = m",
        )
        assert site.kind == "last_wins"
        assert site.guard == "nonstrict"

    def test_float_evidence_from_literal_init(self):
        (site,) = self.sites(
            "acc = 0.0", "for m in messages:", "    acc += m"
        )
        assert site.float_evidence

    def test_non_escaping_fold_is_marked(self):
        scope = compute_scope(
            ["acc = 0", "for m in messages:", "    acc += m",
             "ctx.vote_to_halt()"]
        )
        (site,) = message_fold_sites(scope)
        assert not site.escapes


class TestOrderUseFacts:
    def test_subscript_and_enumerate_and_set(self):
        scope = compute_scope([
            "first = messages[0]",
            "for i, m in enumerate(messages):",
            "    pass",
            "for x in set(messages):",
            "    pass",
        ])
        kinds = sorted(u.kind for u in messages_order_uses(scope))
        assert kinds == ["enumerate", "set-iteration", "subscript"]


class TestSharedWriteFacts:
    def test_global_and_class_attr(self):
        scope = compute_scope([
            "global seen",
            "seen = ctx.vertex_id",
            "C.cache = 1",
        ])
        kinds = sorted(w.kind for w in shared_state_writes(scope, "C"))
        assert kinds == ["class-attr", "global"]


# -- GL016: non-commutative fold over the message bag --------------------------


class TestGL016NoncommutativeFold:
    def test_subtraction_fold_is_proven_error(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        acc = 0\n"
            "        for m in messages:\n"
            "            acc -= m\n"
            "        ctx.set_value(acc)\n"
            "        ctx.vote_to_halt()\n",
            "GL016",
        )
        assert finding.severity == ERROR
        assert finding.confidence == PROVEN
        assert finding.predicts == "order_divergence"

    def test_unconditional_last_wins_is_proven(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        acc = ctx.value\n"
            "        for m in messages:\n"
            "            acc = m\n"
            "        ctx.set_value(acc)\n"
            "        ctx.vote_to_halt()\n",
            "GL016",
        )
        assert finding.confidence == PROVEN

    def test_tie_admitting_guard_is_likely_warning(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        best = 0\n"
            "        for m in messages:\n"
            "            if m >= best:\n"
            "                best = m\n"
            "        ctx.set_value(best)\n"
            "        ctx.vote_to_halt()\n",
            "GL016",
        )
        assert finding.severity == WARNING
        assert finding.confidence == LIKELY

    def test_strict_min_idiom_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        best = ctx.value\n"
            "        for m in messages:\n"
            "            if m < best:\n"
            "                best = m\n"
            "        ctx.set_value(best)\n"
            "        ctx.vote_to_halt()\n",
            "GL016",
        ) == []

    def test_commutative_sum_fold_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        total = 0\n"
            "        for m in messages:\n"
            "            total += m\n"
            "        ctx.set_value(total)\n"
            "        ctx.vote_to_halt()\n",
            "GL016",
        ) == []

    def test_string_concat_is_likely(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        path = ''\n"
            "        for m in messages:\n"
            "            path += str(m)\n"
            "        ctx.set_value(path)\n"
            "        ctx.vote_to_halt()\n",
            "GL016",
        )
        assert finding.confidence == LIKELY

    def test_non_escaping_fold_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        acc = 0\n"
            "        for m in messages:\n"
            "            acc -= m\n"
            "        ctx.vote_to_halt()\n",
            "GL016",
        ) == []


# -- GL017: explicit reliance on delivery order --------------------------------


class TestGL017IterationOrder:
    def test_positional_subscript_is_likely(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        if messages:\n"
            "            ctx.set_value(messages[0])\n"
            "        ctx.vote_to_halt()\n",
            "GL017",
        )
        assert finding.severity == WARNING
        assert finding.confidence == LIKELY
        assert finding.predicts == "order_divergence"

    def test_enumerate_is_flagged(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        for i, m in enumerate(messages):\n"
            "            if i == 0:\n"
            "                ctx.set_value(m)\n"
            "        ctx.vote_to_halt()\n",
            "GL017",
        )
        assert finding.confidence == LIKELY

    def test_set_iteration_is_flagged(self):
        findings = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        for m in set(messages):\n"
            "            ctx.set_value(m)\n"
            "        ctx.vote_to_halt()\n",
            "GL017",
        )
        assert len(findings) == 1

    def test_plain_message_loop_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        total = 0\n"
            "        for m in messages:\n"
            "            total += m\n"
            "        ctx.set_value(total)\n"
            "        ctx.vote_to_halt()\n",
            "GL017",
        ) == []

    def test_dict_iteration_not_flagged(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        counts = {}\n"
            "        for m in messages:\n"
            "            counts[m] = counts.get(m, 0) + 1\n"
            "        best = 0\n"
            "        for label, count in counts.items():\n"
            "            best = max(best, count)\n"
            "        ctx.set_value(best)\n"
            "        ctx.vote_to_halt()\n",
            "GL017",
        ) == []


# -- GL018: float accumulation order sensitivity -------------------------------


class TestGL018FloatAccumulation:
    def test_float_loop_fold_is_likely_warning(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        total = 0.0\n"
            "        for m in messages:\n"
            "            total += m\n"
            "        ctx.set_value(total)\n"
            "        ctx.vote_to_halt()\n",
            "GL018",
        )
        assert finding.severity == WARNING
        assert finding.confidence == LIKELY
        assert finding.predicts == "order_divergence"

    def test_float_sum_call_is_flagged(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(0.15 + 0.85 * sum(messages))\n"
            "        ctx.vote_to_halt()\n",
            "GL018",
        )
        assert finding.confidence == LIKELY

    def test_sorted_sum_is_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(0.15 + 0.85 * sum(sorted(messages)))\n"
            "        ctx.vote_to_halt()\n",
            "GL018",
        ) == []

    def test_integer_fold_is_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        total = 0\n"
            "        for m in messages:\n"
            "            total += m\n"
            "        ctx.set_value(total)\n"
            "        ctx.vote_to_halt()\n",
            "GL018",
        ) == []


# -- GL019: cross-vertex shared mutable state ----------------------------------


class TestGL019SharedMutableState:
    def test_global_write_is_proven_error(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        global seen\n"
            "        seen = ctx.vertex_id\n"
            "        ctx.vote_to_halt()\n",
            "GL019",
        )
        assert finding.severity == ERROR
        assert finding.confidence == PROVEN
        assert finding.predicts == "replay_divergence"

    def test_class_attribute_write_is_proven(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    cache = {}\n"
            "    def compute(self, ctx, messages):\n"
            "        C.cache[ctx.vertex_id] = ctx.value\n"
            "        ctx.vote_to_halt()\n",
            "GL019",
        )
        assert finding.confidence == PROVEN

    def test_closure_mutation_is_likely(self):
        (finding,) = findings_of(
            "shared = []\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        shared.append(ctx.vertex_id)\n"
            "        ctx.vote_to_halt()\n",
            "GL019",
        )
        assert finding.severity == WARNING
        assert finding.confidence == LIKELY

    def test_local_and_instance_state_clean(self):
        assert findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        local = []\n"
            "        local.append(ctx.value)\n"
            "        self.scratch = local\n"
            "        ctx.set_value(len(local))\n"
            "        ctx.vote_to_halt()\n",
            "GL019",
        ) == []


# -- GL020: unseeded nondeterminism sources ------------------------------------


class TestGL020UnseededSources:
    def test_wall_clock_is_proven_error(self):
        (finding,) = findings_of(
            "import datetime\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(datetime.datetime.now())\n"
            "        ctx.vote_to_halt()\n",
            "GL020",
        )
        assert finding.severity == ERROR
        assert finding.confidence == PROVEN
        assert finding.predicts == "replay_divergence"

    def test_id_is_likely(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(id(ctx) % 7)\n"
            "        ctx.vote_to_halt()\n",
            "GL020",
        )
        assert finding.confidence == LIKELY

    def test_hash_of_nonliteral_is_likely(self):
        (finding,) = findings_of(
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        ctx.set_value(hash(str(ctx.vertex_id)))\n"
            "        ctx.vote_to_halt()\n",
            "GL020",
        )
        assert finding.confidence == LIKELY

    def test_seeded_derive_rng_clean(self):
        assert findings_of(
            "from repro.common.rng import derive_rng\n"
            "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        rng = derive_rng(7, ctx.vertex_id, ctx.superstep)\n"
            "        ctx.set_value(rng.random())\n"
            "        ctx.vote_to_halt()\n",
            "GL020",
        ) == []


# -- pack-level integration ----------------------------------------------------


class TestDeterminismPackIntegration:
    def test_buggy_label_propagation_is_flagged(self):
        from repro.algorithms import BuggyLabelPropagation

        report = analyze_computation(BuggyLabelPropagation)
        assert any(f.rule_id == "GL016" for f in report.findings)

    def test_shipped_deterministic_algorithms_have_no_proven_findings(self):
        from repro.algorithms import (
            ConnectedComponents,
            LabelPropagation,
            PageRank,
            ShortestPaths,
        )

        pack = {"GL016", "GL017", "GL018", "GL019", "GL020"}
        for cls in (PageRank, LabelPropagation, ConnectedComponents,
                    ShortestPaths):
            report = analyze_computation(cls)
            proven = [
                f for f in report.findings
                if f.rule_id in pack and f.confidence == PROVEN
            ]
            assert proven == [], (cls.__name__, proven)

    def test_explain_includes_determinism_facts(self):
        from repro.analysis import contexts_from_module_source

        (context,) = contexts_from_module_source(
            PRELUDE
            + "class C(Computation):\n"
            "    def compute(self, ctx, messages):\n"
            "        acc = 0\n"
            "        for m in messages:\n"
            "            acc -= m\n"
            "        ctx.set_value(acc)\n"
            "        ctx.vote_to_halt()\n",
            "t.py",
        )
        (scope,) = list(context.iter_scopes())
        text = context.dataflow(scope).explain()
        assert "determinism facts" in text
        assert "fold" in text
