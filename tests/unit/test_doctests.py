"""Run the library's docstring examples as tests.

Keeps every ``>>>`` example in the public docstrings executable and true.
"""

import doctest

import pytest

import repro.common.hashing
import repro.common.rng
import repro.common.serialization
import repro.common.timing
import repro.algorithms.components
import repro.algorithms.kcore
import repro.algorithms.label_propagation
import repro.algorithms.matching
import repro.algorithms.random_walk
import repro.algorithms.triangles
import repro.bench.render
import repro.datasets.premade
import repro.datasets.registry
import repro.graft.config
import repro.graft.offline
import repro.graph.builder
import repro.graph.graph
import repro.graph.io
import repro.graph.stats
import repro.pregel.engine
import repro.pregel.job
import repro.pregel.partition
import repro.pregel.value_types
import repro.simfs.filesystem
import repro.simfs.writers

MODULES = [
    repro.common.hashing,
    repro.common.rng,
    repro.common.serialization,
    repro.common.timing,
    repro.algorithms.components,
    repro.algorithms.kcore,
    repro.algorithms.label_propagation,
    repro.algorithms.matching,
    repro.algorithms.random_walk,
    repro.algorithms.triangles,
    repro.bench.render,
    repro.datasets.premade,
    repro.datasets.registry,
    repro.graft.config,
    repro.graft.offline,
    repro.graph.builder,
    repro.graph.graph,
    repro.graph.io,
    repro.graph.stats,
    repro.pregel.engine,
    repro.pregel.job,
    repro.pregel.partition,
    repro.pregel.value_types,
    repro.simfs.filesystem,
    repro.simfs.writers,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module}"


def test_doctests_actually_exist():
    total = sum(
        doctest.DocTestFinder().find(module) is not None
        and sum(len(t.examples) for t in doctest.DocTestFinder().find(module))
        for module in MODULES
    )
    assert total >= 15  # the docs carry real, executable examples