"""Unit tests for the premade graphs menu (GUI offline mode)."""

import pytest

from repro.common.errors import GraphError
from repro.datasets import premade_graph, premade_menu
from repro.graph import compute_stats, validate_graph


class TestMenu:
    def test_menu_is_sorted_and_nonempty(self):
        menu = premade_menu()
        assert menu == sorted(menu)
        assert len(menu) >= 8

    def test_every_menu_item_builds(self):
        for name in premade_menu():
            graph = premade_graph(name)
            assert graph.num_vertices > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(GraphError, match="menu"):
            premade_graph("dodecahedron")


class TestShapes:
    def test_triangle(self):
        g = premade_graph("triangle")
        assert g.num_vertices == 3
        assert g.num_edges == 6

    def test_path5(self):
        g = premade_graph("path5")
        stats = compute_stats(g)
        assert stats.num_vertices == 5
        assert stats.num_undirected_edges == 4

    def test_star6_center_degree(self):
        g = premade_graph("star6")
        assert g.out_degree(0) == 5

    def test_petersen_is_3_regular(self):
        g = premade_graph("petersen")
        assert g.num_vertices == 10
        assert all(g.out_degree(v) == 3 for v in g.vertex_ids())

    def test_two_triangles_disconnected(self):
        g = premade_graph("two-triangles")
        assert not g.has_edge(0, 3)
        assert g.num_vertices == 6

    def test_binary_tree(self):
        g = premade_graph("binary-tree3")
        assert g.num_vertices == 15

    def test_weighted_square_symmetric(self):
        g = premade_graph("weighted-square")
        assert validate_graph(g).ok
        assert g.edge_value(2, 3) == 5.0

    def test_all_undirected_and_valid(self):
        for name in premade_menu():
            graph = premade_graph(name)
            assert not graph.directed
            assert validate_graph(graph).ok, name
