"""Unit tests for the synthetic dataset generators."""

import pytest

from repro.common.errors import GraphError
from repro.datasets import (
    bipartite_regular,
    corrupt_asymmetric_weights,
    erdos_renyi,
    follower_network,
    power_law_graph,
    random_symmetric_weights,
    trust_network,
)
from repro.graph import compute_stats, find_asymmetric_edges


class TestPowerLaw:
    def test_deterministic_given_seed(self):
        a = power_law_graph(200, mean_out_degree=5, seed=4)
        b = power_law_graph(200, mean_out_degree=5, seed=4)
        assert a == b

    def test_different_seed_different_graph(self):
        a = power_law_graph(200, mean_out_degree=5, seed=4)
        b = power_law_graph(200, mean_out_degree=5, seed=5)
        assert a != b

    def test_mean_degree_approximate(self):
        g = power_law_graph(1000, mean_out_degree=8, seed=1)
        stats = compute_stats(g)
        assert 5 <= stats.mean_out_degree <= 11

    def test_heavy_tail_in_degrees(self):
        g = power_law_graph(1000, mean_out_degree=8, seed=1)
        in_degrees = {}
        for _source, target, _v in g.edges():
            in_degrees[target] = in_degrees.get(target, 0) + 1
        assert max(in_degrees.values()) > 8 * compute_stats(g).mean_out_degree / 2

    def test_no_self_loops(self):
        g = power_law_graph(100, mean_out_degree=6, seed=2)
        assert all(s != t for s, t, _v in g.edges())

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            power_law_graph(1, mean_out_degree=2)

    def test_undirected_variant_symmetric(self):
        g = power_law_graph(60, mean_out_degree=4, seed=1, directed=False)
        for source, target, _v in g.edges():
            assert g.has_edge(target, source)


class TestBipartiteRegular:
    def test_exact_regularity(self):
        g = bipartite_regular(50, degree=3, seed=1)
        assert all(g.out_degree(v) == 3 for v in g.vertex_ids())

    def test_bipartiteness(self):
        side = 40
        g = bipartite_regular(side, degree=3, seed=2)
        for source, target, _v in g.edges():
            assert (source < side) != (target < side)

    def test_vertex_and_edge_counts(self):
        g = bipartite_regular(30, degree=3, seed=0)
        assert g.num_vertices == 60
        assert g.num_edges == 30 * 3 * 2  # symmetric directed pairs

    def test_deterministic(self):
        assert bipartite_regular(25, seed=9) == bipartite_regular(25, seed=9)

    def test_degree_must_fit(self):
        with pytest.raises(GraphError):
            bipartite_regular(3, degree=3)


class TestSocialNetworks:
    def test_trust_network_has_reciprocity(self):
        g = trust_network(400, mean_degree=6, reciprocity=0.5, seed=1)
        reciprocal = sum(
            1 for s, t, _v in g.edges() if g.has_edge(t, s)
        )
        assert reciprocal / g.num_edges > 0.2

    def test_zero_reciprocity_adds_nothing(self):
        base_edges = trust_network(200, mean_degree=5, reciprocity=0.0, seed=1).num_edges
        some_edges = trust_network(200, mean_degree=5, reciprocity=0.9, seed=1).num_edges
        assert some_edges > base_edges

    def test_follower_network_deterministic(self):
        assert follower_network(150, seed=3) == follower_network(150, seed=3)


class TestErdosRenyi:
    def test_edge_probability_controls_density(self):
        sparse = erdos_renyi(80, 0.01, seed=1)
        dense = erdos_renyi(80, 0.3, seed=1)
        assert dense.num_edges > sparse.num_edges

    def test_undirected_symmetric(self):
        g = erdos_renyi(40, 0.2, seed=2, directed=False)
        for source, target, _v in g.edges():
            assert g.has_edge(target, source)


class TestWeights:
    def test_symmetric_weights_consistent(self):
        g = bipartite_regular(15, seed=1)
        weighted = random_symmetric_weights(g, low=1, high=10, seed=2)
        assert find_asymmetric_edges(weighted) == []

    def test_weights_in_range(self):
        g = bipartite_regular(15, seed=1)
        weighted = random_symmetric_weights(g, low=2.0, high=3.0, seed=2)
        assert all(2.0 <= v <= 3.0 for _s, _t, v in weighted.edges())

    def test_original_graph_untouched(self):
        g = bipartite_regular(10, seed=1)
        random_symmetric_weights(g, seed=2)
        assert all(v is None for _s, _t, v in g.edges())

    def test_corruption_reports_pairs(self):
        g = random_symmetric_weights(bipartite_regular(30, seed=1), seed=2)
        corrupted, pairs = corrupt_asymmetric_weights(g, fraction=0.5, seed=3)
        assert pairs
        assert len(find_asymmetric_edges(corrupted)) == len(pairs)

    def test_zero_fraction_corrupts_nothing(self):
        g = random_symmetric_weights(bipartite_regular(20, seed=1), seed=2)
        corrupted, pairs = corrupt_asymmetric_weights(g, fraction=0.0, seed=3)
        assert pairs == []
        assert corrupted == g
