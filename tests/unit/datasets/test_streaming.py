"""Unit tests for the streaming dataset generators.

The contract: every streamer is an RNG-exact replay of its dict-building
generator, so ``stream.materialize()`` equals the generator's graph —
which means a full-scale streaming load computes the same graph the demo
path would, just without the dict.
"""

import pytest

from repro.common.errors import GraphError
from repro.datasets import (
    VertexStream,
    load_dataset,
    make,
    stream_bipartite_regular,
    stream_power_law,
)
from repro.datasets.generators import (
    bipartite_regular,
    follower_network,
    power_law_graph,
)
from repro.datasets.registry import get_spec


class TestVertexStream:
    def test_shape_and_iteration(self):
        stream = stream_bipartite_regular(10, 3, seed=1)
        assert stream.num_vertices == 20
        assert stream.num_edges == 60  # directed adjacency slots
        assert not stream.directed
        assert list(stream.vertex_ids()) == list(range(20))
        assert stream.has_vertex(0) and stream.has_vertex(19)
        assert not stream.has_vertex(20)

    def test_iter_vertices_is_replayable(self):
        stream = stream_power_law(50, 4, seed=3)
        first = [(v, dict(e)) for v, _val, e in stream.iter_vertices()]
        second = [(v, dict(e)) for v, _val, e in stream.iter_vertices()]
        assert first == second

    def test_iter_edges_matches_adjacency(self):
        stream = stream_bipartite_regular(8, 3, seed=2)
        edges = list(stream.iter_edges())
        assert len(edges) == stream.num_edges
        assert all(value is None for _s, _t, value in edges)

    def test_id_range_offset(self):
        stream = stream_power_law(10, 2, seed=0, id_offset=100)
        assert list(stream.vertex_ids()) == list(range(100, 110))
        assert stream.has_vertex(100) and not stream.has_vertex(0)


class TestStreamBipartiteRegular:
    @pytest.mark.parametrize("side,seed", [(4, 0), (25, 0), (13, 7), (40, 3)])
    def test_materialize_equals_generator(self, side, seed):
        stream = stream_bipartite_regular(side, 3, seed=seed)
        assert stream.materialize() == bipartite_regular(side, 3, seed=seed)

    def test_regularity(self):
        stream = stream_bipartite_regular(20, 3, seed=5)
        for _vertex, _value, edge_map in stream.iter_vertices():
            assert len(edge_map) == 3

    def test_degree_must_fit(self):
        with pytest.raises(GraphError):
            stream_bipartite_regular(3, 3)


class TestStreamPowerLaw:
    @pytest.mark.parametrize("n,mean,exponent,seed", [
        (50, 4, 2.3, 0),
        (200, 11, 2.2, 0),
        (150, 8, 2.1, 5),
        (120, 10, 1.9, 9),
    ])
    def test_materialize_equals_generator(self, n, mean, exponent, seed):
        stream = stream_power_law(n, mean, exponent=exponent, seed=seed)
        assert stream.materialize() == power_law_graph(
            n, mean, exponent=exponent, seed=seed
        )

    def test_needs_two_vertices(self):
        with pytest.raises(GraphError):
            stream_power_law(1, 2)


class TestRegistryMake:
    def test_demo_scale_matches_load_dataset(self):
        assert make("web-BS", num_vertices=200) == load_dataset(
            "web-BS", num_vertices=200
        )

    def test_full_scale_returns_stream(self):
        stream = make("bipartite-1M-3M", scale="full", num_vertices=40)
        assert isinstance(stream, VertexStream)
        assert stream.materialize() == load_dataset(
            "bipartite-1M-3M", num_vertices=40
        )

    def test_full_scale_twitter_replays_follower_seed_wiring(self):
        stream = make("twitter", scale="full", num_vertices=150, seed=4)
        assert stream.materialize() == follower_network(
            150, mean_degree=10, seed=4
        )

    def test_full_scale_without_streamer_materializes(self):
        graph = make("soc-Epinions", scale="full", num_vertices=300)
        assert graph == load_dataset("soc-Epinions", num_vertices=300)

    def test_full_scale_default_sizes(self):
        stream = make("bipartite-1M-3M", scale="full")
        assert stream.num_vertices == 1_000_000
        # Directed adjacency slots, same accounting as Graph.num_edges:
        # 500K per side x degree 3 x 2 directions.
        assert stream.num_edges == 3_000_000
        assert make("sk-2005", scale="full").num_vertices == 1_000_000

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            make("web-BS", scale="huge")

    def test_spec_full_scale_vertices_populated(self):
        for name in ("web-BS", "bipartite-1M-3M", "sk-2005", "twitter",
                     "bipartite-2B-6B", "soc-Epinions"):
            assert get_spec(name).full_scale_vertices > 0
