"""Unit tests for the dataset registry (Tables 1 and 2 stand-ins)."""

import pytest

from repro.datasets import DEMO_DATASETS, PERF_DATASETS, dataset_names, load_dataset
from repro.datasets.registry import get_spec
from repro.graph import compute_stats


class TestRegistry:
    def test_all_paper_datasets_present(self):
        names = dataset_names()
        for expected in (
            "web-BS",
            "soc-Epinions",
            "bipartite-1M-3M",
            "sk-2005",
            "twitter",
            "bipartite-2B-6B",
        ):
            assert expected in names

    def test_table_assignment(self):
        assert all(spec.table == "Table 1" for spec in DEMO_DATASETS)
        assert all(spec.table == "Table 2" for spec in PERF_DATASETS)

    def test_paper_counts_recorded(self):
        spec = get_spec("web-BS")
        assert spec.paper_vertices == "685K"
        assert "7.6M" in spec.paper_edges

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imaginary")

    def test_load_respects_size_override(self):
        g = load_dataset("twitter", num_vertices=123)
        assert g.num_vertices == 123

    def test_bipartite_standins_are_3_regular(self):
        for name in ("bipartite-1M-3M", "bipartite-2B-6B"):
            g = load_dataset(name, num_vertices=40)
            assert all(g.out_degree(v) == 3 for v in g.vertex_ids())
            assert not g.directed

    def test_web_graphs_are_directed_and_skewed(self):
        g = load_dataset("sk-2005", num_vertices=500, seed=1)
        assert g.directed
        stats = compute_stats(g)
        assert stats.max_out_degree > 2 * stats.mean_out_degree

    def test_deterministic_per_seed(self):
        assert load_dataset("web-BS", seed=4, num_vertices=200) == load_dataset(
            "web-BS", seed=4, num_vertices=200
        )

    def test_default_scales_are_laptop_sized(self):
        for spec in DEMO_DATASETS + PERF_DATASETS:
            assert spec.default_scale_vertices <= 10_000
