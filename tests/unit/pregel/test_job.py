"""Unit tests for DFS-to-DFS jobs."""

import math

from repro.algorithms import ConnectedComponents, ShortestPaths
from repro.graph import GraphBuilder, write_adjacency_simfs
from repro.pregel import MinCombiner, read_output, run_job


def stage_input(fs, graph, path="/input/graph.adj"):
    write_adjacency_simfs(graph, fs, path)
    return path


class TestRunJob:
    def test_components_job_roundtrip(self, fs):
        graph = GraphBuilder(directed=False).cycle(0, 1, 2).cycle(7, 8, 9).build()
        input_path = stage_input(fs, graph)
        job = run_job(
            fs, input_path, "/output", ConnectedComponents, directed=False,
            combiner=MinCombiner(),
        )
        assert job.result.converged
        assert read_output(fs, "/output") == {
            0: 0, 1: 0, 2: 0, 7: 7, 8: 7, 9: 7
        }

    def test_one_part_file_per_worker(self, fs):
        graph = GraphBuilder(directed=False).cycle(*range(8)).build()
        input_path = stage_input(fs, graph)
        job = run_job(
            fs, input_path, "/out", ConnectedComponents, directed=False,
            num_workers=3,
        )
        assert len(job.output_files) == 3
        assert all(path.startswith("/out/part-") for path in job.output_files)

    def test_weighted_job_values_roundtrip(self, fs):
        graph = (
            GraphBuilder(directed=True)
            .edge("s", "a", 2.0).edge("a", "t", 3.0).edge("s", "t", 9.0)
            .build()
        )
        input_path = stage_input(fs, graph)
        job = run_job(
            fs, input_path, "/sp", lambda: ShortestPaths("s"), directed=True
        )
        values = read_output(fs, "/sp")
        assert values["t"] == 5.0
        assert values["a"] == 2.0

    def test_infinity_value_roundtrips(self, fs):
        graph = GraphBuilder(directed=True).edge("s", "a").vertex("lost").build()
        input_path = stage_input(fs, graph)
        run_job(fs, input_path, "/sp", lambda: ShortestPaths("s"))
        assert read_output(fs, "/sp")["lost"] == math.inf

    def test_summary_mentions_output(self, fs):
        graph = GraphBuilder(directed=False).edge(0, 1).build()
        input_path = stage_input(fs, graph)
        job = run_job(fs, input_path, "/o", ConnectedComponents, directed=False)
        assert "/o" in job.summary()
        assert "part files" in job.summary()

    def test_engine_kwargs_forwarded(self, fs):
        graph = GraphBuilder(directed=False).edge(0, 1).build()
        input_path = stage_input(fs, graph)
        job = run_job(
            fs, input_path, "/o", ConnectedComponents, directed=False,
            max_supersteps=1,
        )
        assert job.result.num_supersteps == 1
