"""Unit tests for the pluggable superstep execution backends."""

import threading

import pytest

from repro.common.errors import ComputeError, PregelError
from repro.pregel import (
    EXECUTOR_NAMES,
    PregelEngine,
    ProcessBackend,
    SerialBackend,
    StepOutcome,
    ThreadBackend,
    resolve_backend,
)
from repro.pregel.computation import Computation


def _step(worker_id, log=None, error=None):
    def run():
        if log is not None:
            log.append(worker_id)
        return StepOutcome(worker_id=worker_id, error=error)

    return run


class TestResolveBackend:
    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial", 4), SerialBackend)
        assert isinstance(resolve_backend("threads", 4), ThreadBackend)
        assert isinstance(resolve_backend("processes", 4), ProcessBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend, 4) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(PregelError, match="executor must be one of"):
            resolve_backend("gpu", 4)

    def test_names_constant_matches(self):
        assert EXECUTOR_NAMES == ("serial", "threads", "processes")

    def test_thread_backend_validates_worker_count(self):
        with pytest.raises(PregelError, match="max_workers"):
            ThreadBackend(max_workers=0)


class TestSerialBackend:
    def test_runs_in_worker_order(self):
        log = []
        outcomes = SerialBackend().run_superstep(
            [_step(worker_id, log) for worker_id in range(4)]
        )
        assert log == [0, 1, 2, 3]
        assert [o.worker_id for o in outcomes] == [0, 1, 2, 3]

    def test_short_circuits_on_error(self):
        # Matches the classic single-threaded engine: workers after the
        # failing one never run in the aborted superstep.
        log = []
        boom = ComputeError(vertex_id=7, superstep=0, original=ValueError("x"))
        outcomes = SerialBackend().run_superstep(
            [_step(0, log), _step(1, log, error=boom), _step(2, log)]
        )
        assert log == [0, 1]
        assert len(outcomes) == 2
        assert outcomes[1].error is boom


class TestThreadBackend:
    def test_outcomes_ordered_by_step_index(self):
        backend = ThreadBackend(max_workers=4)
        try:
            outcomes = backend.run_superstep(
                [_step(worker_id) for worker_id in (3, 1, 0, 2)]
            )
            assert [o.worker_id for o in outcomes] == [3, 1, 0, 2]
        finally:
            backend.close()

    def test_steps_actually_run_off_the_calling_thread(self):
        backend = ThreadBackend(max_workers=2)
        threads = []

        def step():
            threads.append(threading.current_thread().name)
            return StepOutcome(worker_id=0)

        try:
            backend.run_superstep([step, step])
            assert all(name.startswith("pregel-worker") for name in threads)
        finally:
            backend.close()

    def test_single_step_runs_inline(self):
        backend = ThreadBackend(max_workers=4)
        try:
            outcomes = backend.run_superstep([_step(0)])
            assert [o.worker_id for o in outcomes] == [0]
            assert backend._pool is None  # no pool spun up for one step
        finally:
            backend.close()

    def test_all_outcomes_returned_even_with_error(self):
        boom = ComputeError(vertex_id=1, superstep=0, original=ValueError("x"))
        backend = ThreadBackend(max_workers=3)
        try:
            outcomes = backend.run_superstep(
                [_step(0), _step(1, error=boom), _step(2)]
            )
            assert len(outcomes) == 3
            assert outcomes[1].error is boom
        finally:
            backend.close()

    def test_close_is_idempotent(self):
        backend = ThreadBackend(max_workers=2)
        backend.run_superstep([_step(0), _step(1)])
        backend.close()
        backend.close()


class TestProcessBackend:
    def test_outcomes_cross_the_pipe(self):
        backend = ProcessBackend()
        outcomes = backend.run_superstep([_step(0), _step(1), _step(2)])
        assert [o.worker_id for o in outcomes] == [0, 1, 2]

    def test_child_exception_reraised_in_parent(self):
        def bad_step():
            raise ValueError("child blew up")

        backend = ProcessBackend()
        with pytest.raises(ValueError, match="child blew up"):
            backend.run_superstep([_step(0), bad_step])

    def test_compute_error_survives_pickling(self):
        original = ComputeError(
            vertex_id="v", superstep=3, original=ZeroDivisionError("div")
        )

        def failing_step():
            raise original

        backend = ProcessBackend()
        with pytest.raises(ComputeError) as excinfo:
            backend.run_superstep([_step(0), failing_step])
        assert excinfo.value.vertex_id == "v"
        assert excinfo.value.superstep == 3

    def test_transfers_state_flag(self):
        assert ProcessBackend.transfers_state is True
        assert SerialBackend.transfers_state is False
        assert ThreadBackend.transfers_state is False


class _SelfStateful(Computation):
    """Counts supersteps on ``self`` — state fork cannot send back."""

    def __init__(self):
        self.calls = 0

    def compute(self, ctx, messages):
        self.calls += 1
        ctx.set_value(self.calls)
        if ctx.superstep >= 1:
            ctx.vote_to_halt()


class TestEngineIntegration:
    def test_engine_closes_custom_backend(self, triangle):
        closed = []

        class Recording(SerialBackend):
            def close(self):
                closed.append(True)

        engine = PregelEngine(_SelfStateful, triangle, executor=Recording())
        engine.run()
        assert closed == [True]

    def test_executor_name_property(self, triangle):
        engine = PregelEngine(_SelfStateful, triangle, executor="threads")
        assert engine.executor_name == "threads"
