"""Unit tests for the message-to-missing-vertex resolver policies."""

import pytest

from repro.common.errors import PregelError
from repro.graph import GraphBuilder
from repro.pregel import Computation, PregelEngine, run_computation


class SpawnMessage(Computation):
    def compute(self, ctx, messages):
        if ctx.superstep == 0 and ctx.vertex_id == 0:
            ctx.send_message("ghost", "boo")
        ctx.vote_to_halt()

    def default_vertex_value(self, vertex_id):
        return "spawned"


def pair():
    return GraphBuilder(directed=False).edge(0, 1).build()


class TestResolverPolicies:
    def test_create_policy_is_default(self):
        result = run_computation(SpawnMessage, pair())
        assert result.vertex_values["ghost"] == "spawned"

    def test_drop_policy_discards_messages(self):
        result = run_computation(
            SpawnMessage, pair(), on_message_to_missing="drop"
        )
        assert "ghost" not in result.vertex_values
        assert result.converged

    def test_drop_policy_keeps_messages_to_existing_vertices(self):
        class MessageBoth(Computation):
            def compute(self, ctx, messages):
                if ctx.superstep == 0 and ctx.vertex_id == 0:
                    ctx.send_message(1, "real")
                    ctx.send_message("ghost", "boo")
                elif messages:
                    ctx.set_value(messages[0])
                ctx.vote_to_halt()

        result = run_computation(
            MessageBoth, pair(), on_message_to_missing="drop"
        )
        assert result.vertex_values[1] == "real"

    def test_unknown_policy_rejected(self):
        with pytest.raises(PregelError, match="on_message_to_missing"):
            PregelEngine(SpawnMessage, pair(), on_message_to_missing="explode")


class TestSuperstepStatsInDebugRun:
    def test_activity_trend_available(self):
        from repro.algorithms import MaximumWeightMatching
        from repro.graft import DebugConfig, debug_run

        triangle = (
            GraphBuilder(directed=True)
            .edge("u", "v", 10.0).edge("v", "u", 1.0)
            .edge("v", "w", 10.0).edge("w", "v", 1.0)
            .edge("w", "u", 10.0).edge("u", "w", 1.0)
            .build()
        )
        run = debug_run(
            MaximumWeightMatching, triangle, DebugConfig(), max_supersteps=20
        )
        stats = run.superstep_stats()
        assert len(stats) == 20
        # The MWM preference cycle keeps all three vertices active forever.
        assert all(m.active_vertices == 3 for m in stats)
        table = run.superstep_table(limit=5)
        assert table.count("\n") == 4
