"""Unit tests for run metrics."""

from repro.pregel import RunMetrics, SuperstepMetrics


def step(superstep, **overrides):
    metrics = SuperstepMetrics(superstep)
    for name, value in overrides.items():
        setattr(metrics, name, value)
    return metrics


class TestSuperstepMetrics:
    def test_row_renders(self):
        row = step(3, active_vertices=10, messages_sent=20).row()
        assert "superstep    3" in row
        assert "msgs=" in row


class TestRunMetrics:
    def test_totals_aggregate_supersteps(self):
        metrics = RunMetrics()
        metrics.add_superstep(step(0, messages_sent=5, compute_calls=3, bytes_sent=100))
        metrics.add_superstep(step(1, messages_sent=7, compute_calls=2, bytes_sent=50))
        assert metrics.num_supersteps == 2
        assert metrics.total_messages == 12
        assert metrics.total_compute_calls == 5
        assert metrics.total_bytes_sent == 150

    def test_combined_totals(self):
        metrics = RunMetrics()
        metrics.add_superstep(step(0, messages_combined=4))
        assert metrics.total_messages_combined == 4

    def test_summary_mentions_key_numbers(self):
        metrics = RunMetrics()
        metrics.add_superstep(step(0, messages_sent=9, compute_calls=4))
        metrics.total_seconds = 1.0
        summary = metrics.summary()
        assert "1 supersteps" in summary
        assert "9 messages" in summary

    def test_empty_metrics(self):
        metrics = RunMetrics()
        assert metrics.total_messages == 0
        assert metrics.num_supersteps == 0
