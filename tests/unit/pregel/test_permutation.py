"""PermutationSchedule: the seeded delivery-order lever graft-san pulls.

The contract under test: a schedule permutes inbox *order* only — never
the message multiset — deterministically for a given (seed, schedule,
superstep, target), differently across schedules, and identically
however the engine that applies it is backed.
"""

from repro.pregel.messages import Envelope, MessageStore
from repro.pregel.permutation import PermutationSchedule


def make_store(num_targets=3, fanin=6):
    store = MessageStore()
    for target in range(num_targets):
        for source in range(fanin):
            store.deliver(Envelope(source, target, value=source * 10 + target))
    store.canonicalize()
    return store


def inbox_orders(store):
    return {
        target: list(store.inbox(target)) for target in store.targets()
    }


class TestPermuteInbox:
    def test_schedule_zero_is_identity(self):
        schedule = PermutationSchedule(0, seed=7)
        envelopes = [Envelope(s, 0, s) for s in range(5)]
        before = list(envelopes)
        assert schedule.permute_inbox(0, 1, envelopes) is False
        assert envelopes == before
        assert schedule.is_identity()

    def test_short_inboxes_untouched(self):
        schedule = PermutationSchedule(1, seed=7)
        single = [Envelope(0, 0, 0)]
        assert schedule.permute_inbox(0, 1, single) is False
        assert single == [Envelope(0, 0, 0)]

    def test_permutation_preserves_the_multiset(self):
        schedule = PermutationSchedule(1, seed=7)
        envelopes = [Envelope(s, 0, s) for s in range(8)]
        before = sorted(envelopes)
        schedule.permute_inbox(0, 1, envelopes)
        assert sorted(envelopes) == before

    def test_same_coordinates_same_shuffle(self):
        a = [Envelope(s, 0, s) for s in range(8)]
        b = [Envelope(s, 0, s) for s in range(8)]
        PermutationSchedule(1, seed=7).permute_inbox(0, 3, a)
        PermutationSchedule(1, seed=7).permute_inbox(0, 3, b)
        assert a == b

    def test_schedules_differ(self):
        a = [Envelope(s, 0, s) for s in range(8)]
        b = [Envelope(s, 0, s) for s in range(8)]
        PermutationSchedule(1, seed=7).permute_inbox(0, 1, a)
        PermutationSchedule(2, seed=7).permute_inbox(0, 1, b)
        assert a != b

    def test_supersteps_differ(self):
        a = [Envelope(s, 0, s) for s in range(8)]
        b = [Envelope(s, 0, s) for s in range(8)]
        schedule = PermutationSchedule(1, seed=7)
        schedule.permute_inbox(0, 1, a)
        schedule.permute_inbox(0, 2, b)
        assert a != b

    def test_targets_differ(self):
        a = [Envelope(s, 0, s) for s in range(8)]
        b = [Envelope(s, 0, s) for s in range(8)]
        schedule = PermutationSchedule(1, seed=7)
        schedule.permute_inbox("u", 1, a)
        schedule.permute_inbox("v", 1, b)
        assert a != b


class TestBind:
    def test_bind_adopts_run_seed_when_unset(self):
        schedule = PermutationSchedule(1)
        assert schedule.bind(42) is schedule
        assert schedule.seed == 42

    def test_bind_keeps_explicit_seed(self):
        schedule = PermutationSchedule(1, seed=7)
        schedule.bind(42)
        assert schedule.seed == 7


class TestPermuteStore:
    def test_counts_changed_inboxes_and_keeps_multisets(self):
        store = make_store()
        before = {
            t: sorted(envs) for t, envs in inbox_orders(store).items()
        }
        permuted = PermutationSchedule(1, seed=7).permute_store(store, 1)
        after = inbox_orders(store)
        assert permuted == len(before)
        assert {t: sorted(envs) for t, envs in after.items()} == before
        assert any(
            after[t] != sorted(after[t], key=lambda e: repr(e.source))
            for t in after
        )

    def test_identity_schedule_counts_zero(self):
        store = make_store()
        before = inbox_orders(store)
        assert PermutationSchedule(0, seed=7).permute_store(store, 1) == 0
        assert inbox_orders(store) == before

    def test_store_permutation_is_reproducible(self):
        first = make_store()
        second = make_store()
        PermutationSchedule(2, seed=9).permute_store(first, 4)
        PermutationSchedule(2, seed=9).permute_store(second, 4)
        assert inbox_orders(first) == inbox_orders(second)
