"""Unit tests for vertex partitioning."""

import pytest

from repro.common.errors import PregelError
from repro.pregel import ExplicitPartitioner, HashPartitioner, RangePartitioner


class TestHashPartitioner:
    def test_stable_assignment(self):
        p = HashPartitioner(4)
        assert p.worker_for("v1") == p.worker_for("v1")

    def test_assignment_in_range(self):
        p = HashPartitioner(3)
        for vertex in range(100):
            assert 0 <= p.worker_for(vertex) < 3

    def test_reasonable_balance(self):
        p = HashPartitioner(4)
        counts = [0] * 4
        for vertex in range(2000):
            counts[p.worker_for(vertex)] += 1
        assert min(counts) > 2000 / 4 * 0.7

    def test_partition_groups_preserve_order(self):
        p = HashPartitioner(2)
        groups = p.partition(range(10))
        merged = sorted(v for group in groups for v in group)
        assert merged == list(range(10))
        for group in groups:
            assert group == sorted(group)  # insertion order was ascending

    def test_at_least_one_worker(self):
        with pytest.raises(PregelError):
            HashPartitioner(0)

    def test_single_worker_gets_everything(self):
        p = HashPartitioner(1)
        assert all(p.worker_for(v) == 0 for v in range(50))


class TestPartitionWorkerDecoupling:
    """Partition count is a knob independent of worker count."""

    def test_partition_assignment_is_worker_count_invariant(self):
        # The vertex->partition map must not change when the worker count
        # does — this is what makes spilled layouts (and their digests)
        # identical across 1/2/4 workers.
        ids = [*range(200), "a", "b", (1, 2)]
        reference = [
            HashPartitioner(1, num_partitions=32).partition_for(v)
            for v in ids
        ]
        for workers in (2, 4, 8):
            p = HashPartitioner(workers, num_partitions=32)
            assert [p.partition_for(v) for v in ids] == reference

    def test_round_robin_multiplexing(self):
        p = HashPartitioner(3, num_partitions=8)
        for partition_id in range(8):
            assert p.worker_of_partition(partition_id) == partition_id % 3
        owned = [list(p.partitions_of_worker(w)) for w in range(3)]
        assert owned == [[0, 3, 6], [1, 4, 7], [2, 5]]
        assert sorted(pid for group in owned for pid in group) == list(range(8))

    def test_default_reduces_to_historical_assignment(self):
        # num_partitions=None: worker_for must equal the historical
        # stable_hash % num_workers so existing traces stay valid.
        p = HashPartitioner(4)
        q = HashPartitioner(4, num_partitions=4)
        for v in range(500):
            assert p.worker_for(v) == q.worker_for(v)

    def test_fewer_partitions_than_workers_rejected(self):
        with pytest.raises(PregelError):
            HashPartitioner(8, num_partitions=4)


class TestRangePartitioner:
    def test_contiguous_ranges(self):
        p = RangePartitioner(2, total_vertices=100, num_partitions=4)
        assert p.partition_for(0) == 0
        assert p.partition_for(24) == 0
        assert p.partition_for(25) == 1
        assert p.partition_for(99) == 3
        # Every partition owns a contiguous block.
        boundaries = [p.partition_for(v) for v in range(100)]
        assert boundaries == sorted(boundaries)

    def test_out_of_range_ids_clamp_to_edge_partitions(self):
        p = RangePartitioner(2, total_vertices=10, num_partitions=4)
        assert p.partition_for(-5) == 0
        assert p.partition_for(10_000) == 3

    def test_id_offset(self):
        p = RangePartitioner(1, total_vertices=10, num_partitions=2,
                             id_offset=100)
        assert p.partition_for(100) == 0
        assert p.partition_for(109) == 1

    def test_non_integer_ids_rejected(self):
        p = RangePartitioner(1, total_vertices=10)
        with pytest.raises(PregelError):
            p.partition_for("v1")
        with pytest.raises(PregelError):
            p.partition_for(True)

    def test_positive_size_required(self):
        with pytest.raises(PregelError):
            RangePartitioner(1, total_vertices=0)

    def test_balance(self):
        p = RangePartitioner(4, total_vertices=1000, num_partitions=16)
        counts = [0] * 16
        for v in range(1000):
            counts[p.partition_for(v)] += 1
        assert max(counts) - min(counts) <= 1


class TestExplicitPartitioner:
    def test_explicit_assignment_honored(self):
        p = ExplicitPartitioner(3, {"a": 2, "b": 0})
        assert p.worker_for("a") == 2
        assert p.worker_for("b") == 0

    def test_unmapped_ids_fall_back_to_hash(self):
        p = ExplicitPartitioner(3, {"a": 2})
        fallback = HashPartitioner(3)
        assert p.worker_for("zzz") == fallback.worker_for("zzz")

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(PregelError, match="out of range"):
            ExplicitPartitioner(2, {"a": 5})
