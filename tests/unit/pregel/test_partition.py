"""Unit tests for vertex partitioning."""

import pytest

from repro.common.errors import PregelError
from repro.pregel import ExplicitPartitioner, HashPartitioner


class TestHashPartitioner:
    def test_stable_assignment(self):
        p = HashPartitioner(4)
        assert p.worker_for("v1") == p.worker_for("v1")

    def test_assignment_in_range(self):
        p = HashPartitioner(3)
        for vertex in range(100):
            assert 0 <= p.worker_for(vertex) < 3

    def test_reasonable_balance(self):
        p = HashPartitioner(4)
        counts = [0] * 4
        for vertex in range(2000):
            counts[p.worker_for(vertex)] += 1
        assert min(counts) > 2000 / 4 * 0.7

    def test_partition_groups_preserve_order(self):
        p = HashPartitioner(2)
        groups = p.partition(range(10))
        merged = sorted(v for group in groups for v in group)
        assert merged == list(range(10))
        for group in groups:
            assert group == sorted(group)  # insertion order was ascending

    def test_at_least_one_worker(self):
        with pytest.raises(PregelError):
            HashPartitioner(0)

    def test_single_worker_gets_everything(self):
        p = HashPartitioner(1)
        assert all(p.worker_for(v) == 0 for v in range(50))


class TestExplicitPartitioner:
    def test_explicit_assignment_honored(self):
        p = ExplicitPartitioner(3, {"a": 2, "b": 0})
        assert p.worker_for("a") == 2
        assert p.worker_for("b") == 0

    def test_unmapped_ids_fall_back_to_hash(self):
        p = ExplicitPartitioner(3, {"a": 2})
        fallback = HashPartitioner(3)
        assert p.worker_for("zzz") == fallback.worker_for("zzz")

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(PregelError, match="out of range"):
            ExplicitPartitioner(2, {"a": 5})
