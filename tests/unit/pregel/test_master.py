"""Unit tests for master computations."""

import pytest

from repro.common.errors import MasterComputeError, PregelError
from repro.pregel import MasterComputation, MasterContext
from repro.pregel.aggregators import AggregatorRegistry, OverwriteAggregator
from repro.pregel.master import ensure_master, run_master


def registry_with_phase():
    registry = AggregatorRegistry()
    registry.register("phase", OverwriteAggregator("P0"))
    return registry


class TestMasterContext:
    def test_reads_visible_values(self):
        ctx = MasterContext(0, 10, 20, registry_with_phase())
        assert ctx.aggregated_value("phase") == "P0"
        assert (ctx.num_vertices, ctx.num_edges) == (10, 20)

    def test_writes_broadcast_immediately(self):
        registry = registry_with_phase()
        ctx = MasterContext(0, 0, 0, registry)
        ctx.set_aggregated_value("phase", "P1")
        assert registry.visible_value("phase") == "P1"

    def test_halt(self):
        ctx = MasterContext(0, 0, 0, registry_with_phase())
        assert not ctx.halted
        ctx.halt_computation()
        assert ctx.halted

    def test_snapshot(self):
        ctx = MasterContext(0, 0, 0, registry_with_phase())
        assert ctx.aggregator_snapshot() == {"phase": "P0"}


class TestRunMaster:
    def test_failure_wrapped_with_superstep(self):
        class Bad(MasterComputation):
            def master_compute(self, master_ctx):
                raise RuntimeError("phase logic broke")

        ctx = MasterContext(7, 0, 0, registry_with_phase())
        with pytest.raises(MasterComputeError) as info:
            run_master(Bad(), ctx)
        assert info.value.superstep == 7

    def test_success_passes_through(self):
        class Good(MasterComputation):
            def master_compute(self, master_ctx):
                master_ctx.set_aggregated_value("phase", "NEXT")

        registry = registry_with_phase()
        run_master(Good(), MasterContext(0, 0, 0, registry))
        assert registry.visible_value("phase") == "NEXT"


class TestEnsureMaster:
    def test_none_allowed(self):
        assert ensure_master(None) is None

    def test_instance_allowed(self):
        class M(MasterComputation):
            def master_compute(self, master_ctx):
                pass

        master = M()
        assert ensure_master(master) is master

    def test_wrong_type_rejected(self):
        with pytest.raises(PregelError, match="MasterComputation"):
            ensure_master(object())
