"""Unit tests for message envelopes and the per-superstep store."""

from repro.pregel.messages import Envelope, MessageStore


class TestMessageStore:
    def test_deliver_and_inbox(self):
        store = MessageStore()
        store.deliver(Envelope(source=1, target=2, value="m"))
        assert [e.value for e in store.inbox(2)] == ["m"]

    def test_empty_inbox_for_unknown_target(self):
        assert MessageStore().inbox("nobody") == []

    def test_delivery_order_preserved(self):
        store = MessageStore()
        for index in range(5):
            store.deliver(Envelope(source=0, target="t", value=index))
        assert [e.value for e in store.inbox("t")] == [0, 1, 2, 3, 4]

    def test_targets_and_has_messages(self):
        store = MessageStore()
        assert not store.has_messages()
        store.deliver(Envelope(source=1, target="a", value=None))
        assert store.has_messages()
        assert set(store.targets()) == {"a"}

    def test_total_messages_counts_all(self):
        store = MessageStore()
        store.deliver_all(
            Envelope(source=0, target=t, value=0) for t in ("a", "a", "b")
        )
        assert store.total_messages == 3

    def test_envelope_is_frozen(self):
        envelope = Envelope(source=1, target=2, value=3)
        try:
            envelope.value = 9
            raised = False
        except AttributeError:
            raised = True
        assert raised
