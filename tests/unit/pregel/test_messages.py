"""Unit tests for message envelopes and the per-superstep store."""

from repro.pregel.messages import Envelope, MessageStore, group_by_target


class TestMessageStore:
    def test_deliver_and_inbox(self):
        store = MessageStore()
        store.deliver(Envelope(source=1, target=2, value="m"))
        assert [e.value for e in store.inbox(2)] == ["m"]

    def test_empty_inbox_for_unknown_target(self):
        assert MessageStore().inbox("nobody") == []

    def test_delivery_order_preserved(self):
        store = MessageStore()
        for index in range(5):
            store.deliver(Envelope(source=0, target="t", value=index))
        assert [e.value for e in store.inbox("t")] == [0, 1, 2, 3, 4]

    def test_targets_and_has_messages(self):
        store = MessageStore()
        assert not store.has_messages()
        store.deliver(Envelope(source=1, target="a", value=None))
        assert store.has_messages()
        assert set(store.targets()) == {"a"}

    def test_total_messages_counts_all(self):
        store = MessageStore()
        store.deliver_all(
            Envelope(source=0, target=t, value=0) for t in ("a", "a", "b")
        )
        assert store.total_messages == 3

    def test_envelope_is_frozen(self):
        envelope = Envelope(source=1, target=2, value=3)
        try:
            envelope.value = 9
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_merge_grouped_adopts_and_extends(self):
        store = MessageStore()
        first = {
            "a": [Envelope(source=0, target="a", value=1)],
            "b": [Envelope(source=0, target="b", value=2)],
        }
        second = {"a": [Envelope(source=1, target="a", value=3)]}
        assert store.merge_grouped(first) == 2
        assert store.merge_grouped(second) == 1
        assert [e.value for e in store.inbox("a")] == [1, 3]
        assert [e.value for e in store.inbox("b")] == [2]
        assert store.total_messages == 3

    def test_group_by_target(self):
        grouped = group_by_target(
            [
                Envelope(source=0, target="a", value=1),
                Envelope(source=0, target="b", value=2),
                Envelope(source=1, target="a", value=3),
            ]
        )
        assert set(grouped) == {"a", "b"}
        assert [e.value for e in grouped["a"]] == [1, 3]

    def test_canonicalize_orders_inbox_by_source(self):
        """Delivery order becomes partition-independent after canonicalize().

        Whatever worker-merge order produced the inbox, the barrier sort by
        repr(source) leaves every inbox in the same order — the property
        the deterministic trace merge relies on.
        """
        forward = MessageStore()
        backward = MessageStore()
        envelopes = [
            Envelope(source=source, target="t", value=source * 10)
            for source in (3, 1, 2)
        ]
        forward.deliver_all(envelopes)
        backward.deliver_all(reversed(envelopes))
        forward.canonicalize()
        backward.canonicalize()
        assert [e.source for e in forward.inbox("t")] == [1, 2, 3]
        assert forward.inbox("t") == backward.inbox("t")

    def test_canonicalize_is_stable_for_equal_sources(self):
        store = MessageStore()
        store.deliver_all(
            [
                Envelope(source=7, target="t", value="first"),
                Envelope(source=7, target="t", value="second"),
            ]
        )
        store.canonicalize()
        assert [e.value for e in store.inbox("t")] == ["first", "second"]
