"""Unit tests for aggregators and their superstep lifecycle."""

import pytest

from repro.common.errors import AggregatorError
from repro.pregel import (
    AggregatorRegistry,
    AndAggregator,
    MaxAggregator,
    MinAggregator,
    OrAggregator,
    OverwriteAggregator,
    SumAggregator,
)


class TestAggregatorKinds:
    def test_sum(self):
        agg = SumAggregator()
        assert agg.merge(agg.merge(agg.initial_value(), 3), 4) == 7

    def test_sum_custom_zero(self):
        assert SumAggregator(zero=10).initial_value() == 10

    def test_min_ignores_identity(self):
        agg = MinAggregator()
        assert agg.merge(agg.initial_value(), 5) == 5
        assert agg.merge(5, 3) == 3
        assert agg.merge(3, 9) == 3

    def test_max(self):
        agg = MaxAggregator()
        assert agg.merge(agg.initial_value(), 5) == 5
        assert agg.merge(5, 9) == 9

    def test_and(self):
        agg = AndAggregator()
        assert agg.initial_value() is True
        assert agg.merge(True, False) is False

    def test_or(self):
        agg = OrAggregator()
        assert agg.initial_value() is False
        assert agg.merge(False, True) is True

    def test_overwrite_last_wins(self):
        agg = OverwriteAggregator(default="init")
        assert agg.initial_value() == "init"
        assert agg.merge("a", "b") == "b"


class TestRegistryLifecycle:
    def test_contributions_visible_after_barrier(self):
        registry = AggregatorRegistry()
        registry.register("total", SumAggregator())
        registry.aggregate("total", 2)
        registry.aggregate("total", 3)
        assert registry.visible_value("total") == 0  # not merged yet
        registry.barrier()
        assert registry.visible_value("total") == 5

    def test_regular_aggregator_resets_each_superstep(self):
        registry = AggregatorRegistry()
        registry.register("total", SumAggregator())
        registry.aggregate("total", 5)
        registry.barrier()
        registry.aggregate("total", 1)
        registry.barrier()
        assert registry.visible_value("total") == 1

    def test_persistent_aggregator_accumulates(self):
        registry = AggregatorRegistry()
        registry.register("ever", SumAggregator(), persistent=True)
        registry.aggregate("ever", 5)
        registry.barrier()
        registry.aggregate("ever", 2)
        registry.barrier()
        assert registry.visible_value("ever") == 7

    def test_untouched_aggregator_keeps_visible_value(self):
        # Master-broadcast phase markers must survive supersteps where no
        # vertex contributes.
        registry = AggregatorRegistry()
        registry.register("phase", OverwriteAggregator())
        registry.set_visible("phase", "SELECT")
        registry.barrier()
        assert registry.visible_value("phase") == "SELECT"

    def test_contribution_equal_to_identity_still_publishes(self):
        registry = AggregatorRegistry()
        registry.register("total", SumAggregator())
        registry.set_visible("total", 42)
        registry.aggregate("total", 0)  # sums to the identity value
        registry.barrier()
        assert registry.visible_value("total") == 0

    def test_set_visible_effective_immediately(self):
        registry = AggregatorRegistry()
        registry.register("phase", OverwriteAggregator())
        registry.set_visible("phase", "X")
        assert registry.visible_value("phase") == "X"

    def test_snapshot_is_a_copy(self):
        registry = AggregatorRegistry()
        registry.register("a", SumAggregator())
        snapshot = registry.visible_snapshot()
        snapshot["a"] = 99
        assert registry.visible_value("a") == 0

    def test_restore_snapshot(self):
        registry = AggregatorRegistry()
        registry.register("a", SumAggregator())
        registry.restore_snapshot({"a": 7})
        assert registry.visible_value("a") == 7

    def test_restore_unknown_name_rejected(self):
        registry = AggregatorRegistry()
        with pytest.raises(AggregatorError, match="unregistered"):
            registry.restore_snapshot({"ghost": 1})


class TestAggregatorBuffer:
    def test_buffered_contributions_merge_at_barrier(self):
        registry = AggregatorRegistry()
        registry.register("total", SumAggregator())
        buffer_a = registry.buffer()
        buffer_b = registry.buffer()
        buffer_a.aggregate("total", 2)
        buffer_b.aggregate("total", 3)
        registry.merge_partials(buffer_a.partials)
        registry.merge_partials(buffer_b.partials)
        registry.barrier()
        assert registry.visible_value("total") == 5

    def test_buffer_sees_visible_values(self):
        registry = AggregatorRegistry()
        registry.register("phase", OverwriteAggregator())
        registry.set_visible("phase", "SELECT")
        assert registry.buffer().visible_value("phase") == "SELECT"

    def test_buffer_rejects_unknown_name(self):
        buffer = AggregatorRegistry().buffer()
        with pytest.raises(AggregatorError, match="unknown aggregator"):
            buffer.aggregate("ghost", 1)

    def test_merge_order_is_worker_order_not_arrival_order(self):
        # OverwriteAggregator is order-sensitive: folding buffers in worker
        # order must win regardless of which worker finished first.
        registry = AggregatorRegistry()
        registry.register("last", OverwriteAggregator())
        partials = []
        for worker_id in range(3):
            buffer = registry.buffer()
            buffer.aggregate("last", f"worker-{worker_id}")
            partials.append(buffer.partials)
        for partial in partials:  # the engine folds in worker-id order
            registry.merge_partials(partial)
        registry.barrier()
        assert registry.visible_value("last") == "worker-2"

    def test_persistent_partial_not_lost_when_buffered(self):
        # A persistent aggregator's carried partial must merge with (not be
        # replaced by) the first buffered contribution of a superstep.
        registry = AggregatorRegistry()
        registry.register("ever", SumAggregator(), persistent=True)
        registry.aggregate("ever", 5)
        registry.barrier()
        buffer = registry.buffer()
        buffer.aggregate("ever", 2)
        registry.merge_partials(buffer.partials)
        registry.barrier()
        assert registry.visible_value("ever") == 7


class TestRegistryErrors:
    def test_duplicate_registration_rejected(self):
        registry = AggregatorRegistry()
        registry.register("a", SumAggregator())
        with pytest.raises(AggregatorError, match="already registered"):
            registry.register("a", SumAggregator())

    def test_non_aggregator_rejected(self):
        registry = AggregatorRegistry()
        with pytest.raises(AggregatorError, match="must be an Aggregator"):
            registry.register("a", object())

    def test_unknown_name_on_aggregate(self):
        registry = AggregatorRegistry()
        with pytest.raises(AggregatorError, match="unknown aggregator"):
            registry.aggregate("ghost", 1)

    def test_unknown_name_on_read(self):
        registry = AggregatorRegistry()
        with pytest.raises(AggregatorError, match="unknown aggregator"):
            registry.visible_value("ghost")

    def test_names_sorted(self):
        registry = AggregatorRegistry()
        registry.register("b", SumAggregator())
        registry.register("a", SumAggregator())
        assert registry.names() == ["a", "b"]
