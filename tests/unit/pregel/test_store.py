"""Unit tests for the out-of-core partitioned store (pages, runs, LRU).

The spill plane's contract is byte-exact state fidelity: everything that
goes through a page or run file must come back identical, in the same
canonical order, regardless of eviction timing.
"""

import pytest

from repro.pregel.partition import HashPartitioner
from repro.pregel.store import (
    RunRouter,
    SpillStore,
    decode_segment,
    encode_segment,
    iter_frames,
)
from repro.pregel.store.runs import (
    decode_run,
    encode_run,
    iter_partition_triples,
)
from repro.simfs.filesystem import SimFileSystem


# -- page segments --------------------------------------------------------


def _entries(blob):
    """Re-zip decode_segment's columns into the encoder's entry tuples."""
    ids, values, edges, halted, fallback = decode_segment(blob)
    return list(zip(ids, values, edges, halted)), fallback


class TestPageSegments:
    def test_float_values_round_trip(self):
        entries = [
            (i, float(i) / 3.0, {i + 1: None, i + 2: 0.5}, i % 2 == 0)
            for i in range(50)
        ]
        decoded, fallback = _entries(encode_segment(entries))
        assert decoded == entries
        assert not fallback  # floats ride the typed column

    def test_object_values_use_pickled_fallback(self):
        entries = [
            (f"v{i}", (i, [i, i + 1], {"k": i}), {}, False) for i in range(5)
        ]
        decoded, fallback = _entries(encode_segment(entries))
        assert decoded == entries
        assert fallback

    def test_mixed_and_none_values(self):
        entries = [
            (0, None, {1: None}, False),
            (1, 2.5, {}, True),
            ((2, "tuple-id"), "text", {0: "w"}, False),
        ]
        decoded, _fallback = _entries(encode_segment(entries))
        assert decoded == entries

    def test_iter_frames_parses_concatenated_blocks(self):
        from repro.simfs import BlockWriter

        fs = SimFileSystem()
        writer = BlockWriter(fs, "/p.page")
        first = [(0, 1.0, {}, False)]
        second = [(1, 2.0, {0: None}, True)]
        writer.write_block(encode_segment(first))
        writer.write_block(encode_segment(second))
        writer.close()
        frames = list(iter_frames(fs.read_bytes("/p.page")))
        assert [_entries(frame)[0] for frame in frames] == [first, second]


# -- run files ------------------------------------------------------------


class TestRunFiles:
    def test_run_round_trip_preserves_canonical_order(self):
        triples = [(3, "b", 1.5), (1, "a", 0.5), (2, "a", -1.0)]
        decoded = decode_run(encode_run(sorted(
            triples, key=lambda t: (repr(t[1]), repr(t[0]))
        )))
        # Sorted by (repr(target), repr(source)).
        assert decoded == [(1, "a", 0.5), (2, "a", -1.0), (3, "b", 1.5)]

    def test_router_sorts_and_merge_join_is_global(self):
        fs = SimFileSystem()
        partitioner = HashPartitioner(1, num_partitions=1)
        locations = {i: 0 for i in range(10)}
        # Two workers emit interleaved messages for the same partition.
        for worker_id, pairs in ((0, [(5, 2), (1, 7)]), (1, [(3, 2), (0, 7)])):
            router = RunRouter(
                fs, "/spill", worker_id, superstep=1,
                partitioner=partitioner, locations=locations,
            )
            for source, target in pairs:
                router.add(source, target, float(source))
            router.seal()
        merged = list(iter_partition_triples(fs, "/spill", 1, 0))
        assert merged == [
            (3, 2, 3.0), (5, 2, 5.0), (0, 7, 0.0), (1, 7, 1.0)
        ]

    def test_router_records_suspects_for_unknown_targets(self):
        fs = SimFileSystem()
        partitioner = HashPartitioner(1, num_partitions=1)
        router = RunRouter(
            fs, "/spill", 0, superstep=1,
            partitioner=partitioner, locations={1: 0},
        )
        router.add(1, "ghost", 1.0)
        router.add(1, "ghost", 2.0)
        router.seal()
        assert "ghost" in router.suspects
        assert router.suspect_counts["ghost"] == 2


# -- the LRU store --------------------------------------------------------


def _loaded_store(num_partitions=4, cache_bytes=1 << 20, entries_per=6):
    store = SpillStore(
        filesystem=SimFileSystem(), num_partitions=num_partitions,
        cache_bytes=cache_bytes,
    )
    builder = store.builder()
    for partition_id in range(num_partitions):
        for i in range(entries_per):
            vertex_id = partition_id * 100 + i
            builder.add(
                partition_id, vertex_id, float(vertex_id),
                {vertex_id + 1: None},
            )
    builder.finish()
    return store


class TestSpillStore:
    def test_build_then_read_back(self):
        store = _loaded_store()
        page = store.acquire(2)
        try:
            assert page.values[200] == 200.0
            assert page.edges[201] == {202: None}
            assert page.halted[203] is False
        finally:
            store.release(2)

    def test_summaries_survive_eviction(self):
        store = _loaded_store(num_partitions=3, entries_per=4)
        assert store.num_vertices(range(3)) == 12
        assert store.num_edges(range(3)) == 12
        assert not store.all_halted(range(3))

    def test_eviction_under_tiny_budget_spills_dirty_pages(self):
        store = _loaded_store(num_partitions=4, cache_bytes=1)
        for partition_id in range(4):
            page = store.acquire(partition_id)
            try:
                page.values[partition_id * 100] = -1.0
            finally:
                store.release(partition_id, dirty=True)
        # Budget of one byte: nothing stays resident after release.
        assert store.resident_partitions() == 0
        assert store.pages_spilled >= 4
        # Dirty state must come back from disk intact.
        page = store.acquire(0)
        try:
            assert page.values[0] == -1.0
        finally:
            store.release(0)

    def test_pinned_pages_are_never_evicted(self):
        store = _loaded_store(num_partitions=2, cache_bytes=1)
        first = store.acquire(0)
        second = store.acquire(1)  # over budget, but both pinned
        assert first.values and second.values
        store.release(1)
        store.release(0)

    def test_cache_hit_and_miss_accounting(self):
        store = _loaded_store(num_partitions=2, cache_bytes=1 << 20)
        store.acquire(0)
        store.release(0)
        store.acquire(0)  # resident now: a hit
        store.release(0)
        counters = store.counters()
        assert counters["page_hits"] >= 1
        assert counters["page_misses"] >= 1

    def test_vertex_accessors(self):
        store = _loaded_store(num_partitions=2, entries_per=2)
        assert store.has_vertex(1, 100)
        assert store.get_vertex_value(1, 100) == 100.0
        assert store.get_vertex_edges(1, 100) == {101: None}
        store.add_vertex(1, 999, 9.0, {})
        assert store.get_vertex_value(1, 999) == 9.0
        store.remove_vertex(1, 100)
        assert not store.has_vertex(1, 100)
        assert store.num_vertices([1]) == 2  # -100, +999

    def test_iter_partition_preserves_arrival_order(self):
        store = _loaded_store(num_partitions=1, entries_per=5)
        ids = [entry[0] for entry in store.iter_partition(0)]
        assert ids == [0, 1, 2, 3, 4]

    def test_replace_partition(self):
        store = _loaded_store(num_partitions=2, entries_per=2)
        store.replace_partition(0, {7: 7.0}, {7: {}}, {7: True})
        assert store.num_vertices([0]) == 1
        assert store.get_vertex_value(0, 7) == 7.0
        assert store.all_halted([0])

    def test_replace_pinned_partition_refused(self):
        store = _loaded_store(num_partitions=1, entries_per=1)
        store.acquire(0)
        with pytest.raises(Exception):
            store.replace_partition(0, {}, {}, {})
        store.release(0)

    def test_frozen_store_keeps_dirty_pages_resident(self):
        store = _loaded_store(num_partitions=2, cache_bytes=1)
        store.frozen = True
        page = store.acquire(0)
        page.values[0] = -5.0
        store.release(0, dirty=True)
        spilled_before = store.pages_spilled
        # Dirty page may not be written while frozen (fork-shared files).
        assert store.pages_spilled == spilled_before
        assert store.resident_partitions() == 1
        store.frozen = False

    def test_clear_runs_removes_only_that_superstep(self):
        store = _loaded_store(num_partitions=1)
        store.install_run_file("/spill/runs/s00001/p00000.w000.run", b"one")
        store.install_run_file("/spill/runs/s00002/p00000.w000.run", b"two")
        store.clear_runs(1)
        assert not store.filesystem.exists(
            "/spill/runs/s00001/p00000.w000.run"
        )
        assert store.filesystem.exists("/spill/runs/s00002/p00000.w000.run")

    def test_builder_pickled_value_fallback_round_trips(self):
        store = SpillStore(filesystem=SimFileSystem(), num_partitions=1)
        builder = store.builder()
        builder.add(0, "a", {"nested": [1, 2]}, {"b": None})
        builder.add(0, "b", (3, 4), {})
        builder.finish()
        assert store.get_vertex_value(0, "a") == {"nested": [1, 2]}
        assert store.get_vertex_value(0, "b") == (3, 4)

    def test_builder_finish_installs_summary_for_empty_partitions(self):
        store = SpillStore(filesystem=SimFileSystem(), num_partitions=3)
        builder = store.builder()
        builder.add(1, 0, 1.0, {})
        builder.finish()
        assert store.num_vertices([0]) == 0
        assert store.num_vertices([1]) == 1
        assert store.num_vertices([2]) == 0


class TestSpilledMessageStore:
    def _store_with_messages(self, combiner=None):
        store = SpillStore(filesystem=SimFileSystem(), num_partitions=2)
        builder = store.builder()
        builder.finish()
        partitioner = HashPartitioner(1, num_partitions=2)
        locations = {i: 0 for i in range(6)}
        router = store.run_router(0, 1, partitioner, locations)
        for source, target, value in [
            (0, 1, 1.0), (2, 1, 2.0), (4, 3, 3.0), (0, 3, 4.0)
        ]:
            router.add(source, target, value)
        router.seal()
        return store, store.message_store(
            1, total_messages=router.count, combiner=combiner
        ), partitioner

    def test_load_partition_groups_by_target(self):
        store, messages, partitioner = self._store_with_messages()
        assert messages.has_messages()
        for target in (1, 3):
            view = messages.load_partition(partitioner.partition_for(target))
            assert sorted(view.inbox_values(target)) in (
                [1.0, 2.0], [3.0, 4.0]
            )

    def test_combiner_folds_at_load(self):
        from repro.pregel import SumCombiner

        store, messages, partitioner = self._store_with_messages(
            combiner=SumCombiner()
        )
        view = messages.load_partition(partitioner.partition_for(1))
        assert view.inbox_values(1) == [3.0]
        assert view.eliminated == 1

    def test_drop_target_suppresses_delivery(self):
        store, messages, partitioner = self._store_with_messages()
        messages.drop_target(1, 2)
        view = messages.load_partition(partitioner.partition_for(1))
        assert view.inbox_values(1) == []

    def test_iter_checkpoint_messages_covers_everything(self):
        store, messages, partitioner = self._store_with_messages()
        triples = sorted(messages.iter_checkpoint_messages())
        assert triples == [
            (0, 1, 1.0), (0, 3, 4.0), (2, 1, 2.0), (4, 3, 3.0)
        ]
