"""Unit tests for the columnar message plane (repro.pregel.columnar).

Covers the three layers separately — typed value columns, length-prefixed
frames, shared-memory transport — plus the property the whole plane exists
to preserve: any sequence of built-in payloads survives
pack -> shared memory -> unpack with the envelope path's canonical inbox
order intact, and anything unpackable degrades to the pickled fallback
without changing delivery order.
"""

import os
import random
from array import array
from types import SimpleNamespace

import pytest

from repro.common.errors import PregelError
from repro.pregel.columnar import (
    COL_F64,
    COL_FIXED,
    COL_I64,
    COL_OBJ,
    COL_STR,
    ColumnarMessageStore,
    ColumnarOutbox,
    ColumnarRunState,
    ColumnBuilder,
    InlineTransport,
    ShmTransport,
    VertexInterner,
    build_frame,
    decode_column,
    parse_frame,
    release_frame,
)
from repro.pregel.messages import BROADCAST_TARGET, Envelope, MessageStore
from repro.pregel.value_types import Int32, Short16
from repro.pregel.worker import _estimate_bytes


class Opaque:
    """A payload the column codec has no fast path for."""

    def __init__(self, tag):
        self.tag = tag

    def __eq__(self, other):
        return isinstance(other, Opaque) and self.tag == other.tag

    def __hash__(self):
        return hash(self.tag)

    def __repr__(self):
        return f"Opaque({self.tag})"


def roundtrip(values):
    column = ColumnBuilder()
    for value in values:
        column.append(value)
    decoded, fallback = decode_column(column.encode())
    assert decoded == list(values)
    # The no-byte-round-trip decode must agree with the codec.
    assert column.values() == list(values)
    return column, fallback


class TestColumns:
    def test_float_column_packs(self):
        column, fallback = roundtrip([0.5, -1.25, 3e9, float("inf")])
        assert column.kind == COL_F64
        assert not fallback

    def test_int_column_packs(self):
        column, fallback = roundtrip([0, -7, 2**62, -(2**62)])
        assert column.kind == COL_I64
        assert not fallback

    def test_str_column(self):
        column, fallback = roundtrip(["a", "", "vertex-42", "é"])
        assert column.kind == COL_STR
        assert not fallback

    def test_fixed_width_column_preserves_class(self):
        column, fallback = roundtrip([Short16(1), Short16(-32768), Short16(999)])
        assert column.kind == COL_FIXED
        assert not fallback
        decoded, _ = decode_column(column.encode())
        assert all(isinstance(v, Short16) for v in decoded)

    def test_mixed_fixed_width_classes_degrade(self):
        column, fallback = roundtrip([Short16(1), Int32(2)])
        assert column.kind == COL_OBJ
        assert fallback

    def test_type_mismatch_degrades_preserving_prefix(self):
        column, fallback = roundtrip([1.0, 2.0, "three", 4.0])
        assert column.kind == COL_OBJ
        assert fallback

    def test_overflowing_int_degrades(self):
        column, fallback = roundtrip([1, 2**80])
        assert column.kind == COL_OBJ
        assert fallback

    def test_arbitrary_object_degrades(self):
        column, fallback = roundtrip([Opaque("x"), Opaque("y")])
        assert column.kind == COL_OBJ
        assert fallback

    def test_bool_is_not_treated_as_int(self):
        # bool is an int subclass; exact-class dispatch must not let True
        # silently become 1 on the int column.
        column, _ = roundtrip([True, False])
        decoded, _ = decode_column(column.encode())
        assert decoded[0] is True and decoded[1] is False

    def test_unknown_tag_rejected(self):
        with pytest.raises(PregelError):
            decode_column(b"\x7f")


class TestInterner:
    def test_intern_is_stable_and_reversible(self):
        interner = VertexInterner()
        ids = ["v1", 42, ("t", 1)]
        idxs = [interner.intern(v) for v in ids]
        assert idxs == [0, 1, 2]
        assert [interner.intern(v) for v in ids] == idxs
        assert interner.ids == ids
        assert interner.reprs == [repr(v) for v in ids]


def _outbox_worker(outbox, worker_id=0, edges_dirty=False):
    return SimpleNamespace(
        worker_id=worker_id,
        edges_dirty=edges_dirty,
        outbox=outbox,
        values={},
        halted={},
        edges={},
    )


class TestFrames:
    def test_point_and_broadcast_roundtrip(self):
        interner = VertexInterner()
        for vid in ("a", "b", "c"):
            interner.intern(vid)
        outbox = ColumnarOutbox()
        outbox.add_point("a", "b", 1.5)
        outbox.add_broadcast("b", 2.5, fan_out=2)
        outbox.add_point("a", "c", 3.5)
        blob = build_frame(_outbox_worker(outbox, worker_id=3), interner, 7)
        frame = parse_frame(blob, interner)
        assert frame.worker_id == 3
        assert frame.superstep == 7
        assert frame.messages == 4  # 2 points + fan_out 2
        assert not frame.edges_dirty
        assert frame.bcast == [(interner.get("b"), 1, 2.5)]
        b_idx, c_idx = interner.get("b"), interner.get("c")
        assert frame.point[b_idx] == ([interner.get("a")], [0], [1.5])
        assert frame.point[c_idx] == ([interner.get("a")], [2], [3.5])
        assert frame.pickle_fallbacks == 0
        assert frame.batches == 3

    def test_uninterned_target_ships_via_fallback_section(self):
        interner = VertexInterner()
        interner.intern("a")
        outbox = ColumnarOutbox()
        outbox.add_point("a", "ghost", 9.0)
        blob = build_frame(_outbox_worker(outbox), interner, 0)
        frame = parse_frame(blob, interner)
        assert frame.fallback == {"ghost": [(0, "a", 9.0)]}
        assert frame.pickle_fallbacks == 1

    def test_state_sections_ship_values_and_halts(self):
        interner = VertexInterner()
        for vid in ("a", "b"):
            interner.intern(vid)
        worker = _outbox_worker(ColumnarOutbox(), worker_id=1)
        worker.values = {"a": 0.25, "b": 0.75}
        worker.halted = {"a": False, "b": True}
        worker.edges = {"a": {"b": None}}
        blob = build_frame(worker, interner, 2, state_sections=True)
        frame = parse_frame(blob, interner)
        assert frame.values == worker.values
        assert frame.halted == worker.halted
        assert frame.edges is None  # clean adjacency never ships

    def test_dirty_adjacency_ships_edges(self):
        interner = VertexInterner()
        interner.intern("a")
        worker = _outbox_worker(
            ColumnarOutbox(), worker_id=1, edges_dirty=True
        )
        worker.values = {"a": 1.0}
        worker.halted = {"a": False}
        worker.edges = {"a": {"z": 4}}
        blob = build_frame(worker, interner, 2, state_sections=True)
        frame = parse_frame(blob, interner)
        assert frame.edges_dirty
        assert frame.edges == {"a": {"z": 4}}

    def test_bad_magic_rejected(self):
        with pytest.raises(PregelError):
            parse_frame(b"NOPE" + b"\x00" * 8, VertexInterner())


class TestTransport:
    def test_inline_roundtrip(self):
        transport = InlineTransport()
        handle = transport.ship(b"payload")
        assert transport.retrieve(handle) == b"payload"
        transport.release(handle)  # no-op, must not raise

    def test_shm_roundtrip_unlinks_segment(self):
        transport = ShmTransport()
        handle = transport.ship(b"x" * 4096)
        if handle[0] != "shm":
            pytest.skip("platform refused shared memory")
        segment = f"/dev/shm/{handle[1]}"
        if os.path.isdir("/dev/shm"):
            assert os.path.exists(segment)
        assert transport.retrieve(handle) == b"x" * 4096
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(segment)

    def test_release_unlinks_unconsumed_frame(self):
        transport = ShmTransport()
        handle = transport.ship(b"y" * 128)
        if handle[0] != "shm":
            pytest.skip("platform refused shared memory")
        release_frame(handle)
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(f"/dev/shm/{handle[1]}")
        # Double release must be harmless.
        release_frame(handle)
        release_frame(None)
        release_frame(("bytes", b""))


# ---------------------------------------------------------------------------
# Property test: canonical order through the whole plane
# ---------------------------------------------------------------------------


PAYLOAD_MAKERS = {
    "float": lambda rng: rng.random() * 100 - 50,
    "int": lambda rng: rng.randrange(-(2**40), 2**40),
    "str": lambda rng: f"msg-{rng.randrange(1000)}",
    "short16": lambda rng: Short16(rng.randrange(-32768, 32767)),
    "mixed": lambda rng: rng.choice(
        [lambda: rng.random(), lambda: Opaque(rng.randrange(10))]
    )(),
}


def _random_plane(seed, payload_kind):
    """Emit one random superstep through both planes; return both stores.

    Two simulated workers each emit a random interleaving of point sends
    and broadcasts over a fixed adjacency. The reference store is the
    envelope path exactly as the engine drives it: grouped outboxes merged
    in worker order, then canonicalized.
    """
    rng = random.Random(seed)
    make = PAYLOAD_MAKERS[payload_kind]
    vertices = [f"v{i:02d}" for i in range(10)]
    edges = {
        v: {t: None for t in rng.sample(vertices, rng.randrange(1, 5))}
        for v in vertices
    }
    owner = {v: i % 2 for i, v in enumerate(vertices)}
    workers = [
        SimpleNamespace(edges={v: e for v, e in edges.items() if owner[v] == w})
        for w in (0, 1)
    ]
    locations = dict(owner)

    run_state = ColumnarRunState()
    run_state.ensure_index(workers, locations)

    reference = MessageStore()
    columnar = ColumnarMessageStore(run_state)
    transport = ShmTransport()

    for worker_id in (0, 1):
        grouped = {}
        outbox = ColumnarOutbox()
        my_vertices = [v for v in vertices if owner[v] == worker_id]
        for _ in range(rng.randrange(5, 25)):
            source = rng.choice(my_vertices)
            value = make(rng)
            if rng.random() < 0.4:
                targets = tuple(edges[source])
                shared = Envelope(source, BROADCAST_TARGET, value)
                for target in targets:
                    grouped.setdefault(target, []).append(shared)
                outbox.add_broadcast(source, value, len(targets))
            else:
                target = rng.choice(vertices)
                grouped.setdefault(target, []).append(
                    Envelope(source, target, value)
                )
                outbox.add_point(source, target, value)
        reference.merge_grouped(grouped)
        worker = _outbox_worker(outbox, worker_id=worker_id)
        handle = transport.ship(
            build_frame(worker, run_state.interner, 0)
        )
        columnar.absorb_frame(
            parse_frame(transport.retrieve(handle), run_state.interner)
        )
    reference.canonicalize()
    return vertices, reference, columnar


class TestCanonicalOrderProperty:
    @pytest.mark.parametrize("payload_kind", sorted(PAYLOAD_MAKERS))
    @pytest.mark.parametrize("seed", range(5))
    def test_pack_shm_unpack_preserves_canonical_order(
        self, seed, payload_kind
    ):
        vertices, reference, columnar = _random_plane(seed, payload_kind)
        assert columnar.total_messages == reference.total_messages
        for vertex in vertices:
            expected = [e.value for e in reference.inbox(vertex)]
            assert columnar.inbox_values(vertex) == expected, vertex
            assert columnar.has_inbox(vertex) == bool(expected)
            # Envelope materialization agrees on sources and values.
            expected_pairs = [
                (e.source, e.value) for e in reference.inbox(vertex)
            ]
            got_pairs = [
                (e.source, e.value) for e in columnar.inbox(vertex)
            ]
            assert got_pairs == expected_pairs

    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_unpackable_payloads_counted_as_fallback(self, seed):
        _, reference, columnar = _random_plane(seed, "mixed")
        assert columnar.total_messages == reference.total_messages

    def test_to_message_store_matches_reference(self):
        vertices, reference, columnar = _random_plane(99, "float")
        materialized = columnar.to_message_store()
        for vertex in vertices:
            assert [e.value for e in materialized.inbox(vertex)] == [
                e.value for e in reference.inbox(vertex)
            ]

    def test_shm_left_clean_after_property_runs(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm")
        before = {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
        _random_plane(123, "float")
        after = {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
        assert after == before


class TestEstimateBytes:
    """Regression: columnar payload types must not use the repr cache."""

    def test_array_counts_buffer_not_repr(self):
        values = array("d", [0.0] * 1000)
        assert _estimate_bytes(values) == 16 + 8000

    def test_memoryview_counts_nbytes(self):
        view = memoryview(b"z" * 512)
        assert _estimate_bytes(view) == 16 + 512
        # A second, larger view must not reuse a learned per-type size.
        assert _estimate_bytes(memoryview(b"z" * 2048)) == 16 + 2048

    def test_bytearray_counts_length(self):
        assert _estimate_bytes(bytearray(64)) == 16 + 64
