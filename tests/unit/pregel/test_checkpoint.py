"""Unit tests for checkpointing and Pregel-style failure recovery."""

import pytest

from repro.algorithms import GCMaster, GraphColoring, PageRank, RandomWalk
from repro.common.errors import PregelError
from repro.datasets import premade_graph
from repro.graph import GraphBuilder
from repro.pregel import CheckpointConfig, PregelEngine, WorkerFailure, run_computation
from repro.pregel.checkpoint import latest_checkpoint_path
from repro.simfs import SimFileSystem


def chain(n=6):
    return GraphBuilder(directed=False).path(*range(n)).build()


class TestCheckpointConfig:
    def test_interval_must_be_positive(self, fs):
        with pytest.raises(PregelError):
            CheckpointConfig(fs, every_n_supersteps=0)

    def test_paths_sort_by_superstep(self, fs):
        config = CheckpointConfig(fs)
        assert config.path_for(2) < config.path_for(10)


class TestCheckpointWriting:
    def test_checkpoints_written_at_interval(self, fs):
        config = CheckpointConfig(fs, every_n_supersteps=2)
        run_computation(
            lambda: PageRank(iterations=6), chain(), checkpoint_config=config
        )
        files = fs.glob_files("/checkpoints", suffix=".ckpt")
        # Initial checkpoint at 0, then after supersteps 1, 3, 5 -> 2, 4, 6.
        supersteps = sorted(int(p[-11:-5]) for p in files)
        assert supersteps[0] == 0
        assert all(s % 2 == 0 for s in supersteps)
        assert len(supersteps) >= 3

    def test_latest_checkpoint_lookup(self, fs):
        config = CheckpointConfig(fs, every_n_supersteps=2)
        run_computation(
            lambda: PageRank(iterations=6), chain(), checkpoint_config=config
        )
        latest = latest_checkpoint_path(config)
        capped = latest_checkpoint_path(config, before_superstep=3)
        assert latest >= capped
        assert capped.endswith("superstep-000002.ckpt")

    def test_no_checkpoint_to_recover_raises(self, fs):
        config = CheckpointConfig(fs)
        with pytest.raises(PregelError, match="no checkpoint"):
            latest_checkpoint_path(config)


class TestFailureRecovery:
    def test_failure_without_checkpointing_fails_job(self):
        with pytest.raises(WorkerFailure) as info:
            run_computation(
                lambda: PageRank(iterations=6),
                chain(),
                failure_injections=[(3, 1)],
            )
        assert info.value.superstep == 3

    def test_recovery_reproduces_failure_free_result(self, fs):
        baseline = run_computation(lambda: PageRank(iterations=8), chain(), seed=5)
        recovered = run_computation(
            lambda: PageRank(iterations=8),
            chain(),
            seed=5,
            checkpoint_config=CheckpointConfig(fs, every_n_supersteps=3),
            failure_injections=[(5, 2)],
        )
        assert recovered.recoveries == 1
        assert recovered.vertex_values == baseline.vertex_values
        assert recovered.halt_reason == baseline.halt_reason

    def test_recovery_of_randomized_algorithm_is_exact(self, fs):
        graph = premade_graph("petersen")
        baseline = run_computation(lambda: RandomWalk(6, 40), graph, seed=9)
        recovered = run_computation(
            lambda: RandomWalk(6, 40),
            graph,
            seed=9,
            checkpoint_config=CheckpointConfig(fs, every_n_supersteps=2),
            failure_injections=[(4, 0)],
        )
        assert recovered.vertex_values == baseline.vertex_values

    def test_recovery_of_multi_phase_algorithm(self, fs):
        graph = premade_graph("petersen")
        baseline = run_computation(
            GraphColoring, graph, master=GCMaster(), seed=2, max_supersteps=200
        )
        recovered = run_computation(
            GraphColoring,
            graph,
            master=GCMaster(),
            seed=2,
            max_supersteps=200,
            checkpoint_config=CheckpointConfig(fs, every_n_supersteps=4),
            failure_injections=[(7, 1)],
        )
        assert recovered.recoveries == 1
        assert recovered.vertex_values == baseline.vertex_values

    def test_multiple_failures_multiple_recoveries(self, fs):
        baseline = run_computation(lambda: PageRank(iterations=10), chain(), seed=1)
        recovered = run_computation(
            lambda: PageRank(iterations=10),
            chain(),
            seed=1,
            checkpoint_config=CheckpointConfig(fs, every_n_supersteps=2),
            failure_injections=[(3, 0), (7, 2)],
        )
        assert recovered.recoveries == 2
        assert recovered.vertex_values == baseline.vertex_values

    def test_failure_at_superstep_zero_recovers_from_initial_checkpoint(self, fs):
        baseline = run_computation(lambda: PageRank(iterations=4), chain(), seed=1)
        recovered = run_computation(
            lambda: PageRank(iterations=4),
            chain(),
            seed=1,
            checkpoint_config=CheckpointConfig(fs, every_n_supersteps=100),
            failure_injections=[(0, 1)],
        )
        assert recovered.recoveries == 1
        assert recovered.vertex_values == baseline.vertex_values

    def test_re_executed_supersteps_counted_in_metrics(self, fs):
        plain = run_computation(lambda: PageRank(iterations=8), chain(), seed=5)
        recovered = run_computation(
            lambda: PageRank(iterations=8),
            chain(),
            seed=5,
            checkpoint_config=CheckpointConfig(fs, every_n_supersteps=3),
            failure_injections=[(5, 2)],
        )
        # Rollback re-runs supersteps, so more compute happened overall...
        assert (
            recovered.metrics.total_compute_calls > plain.metrics.total_compute_calls
        )
        # ...but the logical superstep count is unchanged.
        assert recovered.num_supersteps == plain.num_supersteps

    def test_checkpoints_live_on_the_simulated_dfs(self, fs):
        config = CheckpointConfig(fs, every_n_supersteps=2, directory="/ckpt-here")
        run_computation(lambda: PageRank(iterations=4), chain(), checkpoint_config=config)
        assert fs.is_dir("/ckpt-here")
        assert fs.total_bytes("/ckpt-here") > 0


class TestGraftUnderRecovery:
    def test_debug_run_traces_survive_recovery(self, fs):
        # Graft and checkpointing compose: a debugged run that recovers
        # still produces a coherent trace (re-executed supersteps re-log
        # their captures; the reader keeps the latest record per key).
        from repro.graft import CaptureAllActiveConfig, debug_run

        recovered = debug_run(
            lambda: PageRank(iterations=6),
            chain(),
            CaptureAllActiveConfig(),
            seed=5,
            checkpoint_config=CheckpointConfig(SimFileSystem(), every_n_supersteps=2),
            failure_injections=[(3, 1)],
        )
        assert recovered.ok
        assert recovered.result.recoveries == 1
        # Every (vertex, superstep) key is still resolvable.
        for record in recovered.reader.vertex_records:
            assert recovered.reader.get(record.vertex_id, record.superstep)
        # Re-executed supersteps append duplicate trace lines; the reader
        # must deduplicate to one record per (vertex, superstep).
        keys = [r.key for r in recovered.reader.vertex_records]
        assert len(keys) == len(set(keys))
        # And the deduplicated trace equals a failure-free debugged run's.
        clean = debug_run(
            lambda: PageRank(iterations=6),
            chain(),
            CaptureAllActiveConfig(),
            seed=5,
        )
        assert len(recovered.reader.vertex_records) == len(
            clean.reader.vertex_records
        )
