"""Unit tests for the simulated worker."""

import pytest

from repro.common.errors import ComputeError
from repro.pregel import Computation
from repro.pregel.aggregators import AggregatorRegistry, SumAggregator
from repro.pregel.messages import Envelope, MessageStore
from repro.pregel.worker import _LEARNED_SIZES, Worker, _estimate_bytes


class Echo(Computation):
    """Forwards each incoming message value to every neighbor."""

    def compute(self, ctx, messages):
        for value in messages:
            ctx.send_message_to_all_neighbors(value)
        ctx.vote_to_halt()


class Crash(Computation):
    def compute(self, ctx, messages):
        raise ValueError("boom")


def loaded_worker():
    worker = Worker(worker_id=0, run_seed=1)
    worker.load_vertex("a", 0, {"b": None})
    worker.load_vertex("b", 0, {"a": None})
    return worker


class TestEstimateBytes:
    """Regression tests: byte accounting must be O(1), never O(payload)."""

    def test_scalar_sizes_are_fixed(self):
        assert _estimate_bytes(0) == _estimate_bytes(10**100)
        assert _estimate_bytes(0.5) == _estimate_bytes(1e300)
        assert _estimate_bytes(None) == 17
        assert _estimate_bytes(True) == _estimate_bytes(False)

    def test_strings_scale_with_length(self):
        assert _estimate_bytes("abcd") == _estimate_bytes("") + 4
        assert _estimate_bytes(b"abcd") == _estimate_bytes(b"") + 4

    def test_containers_use_shallow_estimate(self):
        # A list of huge strings must cost the same as a list of ints of
        # equal length: the estimate never walks the elements (the old
        # len(str(value)) implementation did, and dominated send time for
        # large payloads).
        big = ["x" * 100_000] * 8
        small = [1] * 8
        assert _estimate_bytes(big) == _estimate_bytes(small)
        assert _estimate_bytes({i: big for i in range(4)}) == _estimate_bytes(
            {i: 0 for i in range(4)}
        )

    def test_container_subclasses_take_container_path(self):
        class MyList(list):
            def __repr__(self):  # pragma: no cover - must never be called
                raise AssertionError("estimator stringified a container")

        assert _estimate_bytes(MyList([1, 2, 3])) == 32 + 8 * 3

    def test_unknown_type_repr_cached_per_type(self):
        calls = []

        class Payload:
            def __repr__(self):
                calls.append(1)
                return "Payload()"

        _LEARNED_SIZES.pop(Payload, None)
        first = _estimate_bytes(Payload())
        second = _estimate_bytes(Payload())
        assert first == second == 16 + len("Payload()")
        assert len(calls) == 1  # repr ran once; later instances hit the cache
        _LEARNED_SIZES.pop(Payload, None)

    def test_unreprable_value_falls_back(self):
        class Broken:
            def __repr__(self):
                raise RuntimeError("no repr")

        _LEARNED_SIZES.pop(Broken, None)
        assert _estimate_bytes(Broken()) == 16 + 64
        _LEARNED_SIZES.pop(Broken, None)


class TestVertexState:
    def test_load_and_counts(self):
        worker = loaded_worker()
        assert worker.num_vertices == 2
        assert worker.num_edges == 2
        assert worker.has_vertex("a")

    def test_remove_vertex(self):
        worker = loaded_worker()
        worker.remove_vertex("a")
        assert not worker.has_vertex("a")
        assert worker.num_vertices == 1

    def test_remove_missing_vertex_is_noop(self):
        loaded_worker().remove_vertex("ghost")

    def test_edge_map_copied_on_load(self):
        worker = Worker(0, run_seed=0)
        edges = {"x": 1}
        worker.load_vertex("v", None, edges)
        edges["y"] = 2
        assert "y" not in worker.edges["v"]


class TestActivation:
    def test_all_active_in_superstep_zero(self):
        worker = loaded_worker()
        assert worker.active_vertices(0, MessageStore()) == ["a", "b"]

    def test_halted_vertices_skip_later_supersteps(self):
        worker = loaded_worker()
        worker.halted["a"] = True
        assert worker.active_vertices(1, MessageStore()) == ["b"]

    def test_messages_wake_halted_vertices(self):
        worker = loaded_worker()
        worker.halted["a"] = True
        store = MessageStore()
        store.deliver(Envelope(source="b", target="a", value=1))
        assert worker.active_vertices(1, store) == ["a", "b"]


class TestRunSuperstep:
    def test_messages_forwarded(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        store = MessageStore()
        store.deliver(Envelope(source="b", target="a", value="payload"))
        worker.run_superstep(Echo(), 1, store, 2, 2)
        envelopes = worker.outbox_envelopes()
        assert len(envelopes) == 1
        assert envelopes[0].target == "b"
        assert worker.messages_sent == 1
        assert worker.bytes_sent > 0

    def test_halt_state_recorded(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        worker.run_superstep(Echo(), 0, MessageStore(), 2, 2)
        assert worker.all_halted()

    def test_value_updates_persisted(self):
        class SetTo9(Computation):
            def compute(self, ctx, messages):
                ctx.set_value(9)

        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        worker.run_superstep(SetTo9(), 0, MessageStore(), 2, 2)
        assert dict(worker.vertex_values()) == {"a": 9, "b": 9}

    def test_compute_calls_counted(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        worker.run_superstep(Echo(), 0, MessageStore(), 2, 2)
        assert worker.compute_calls == 2

    def test_aggregation_reaches_registry(self):
        class Contribute(Computation):
            def compute(self, ctx, messages):
                ctx.aggregate("n", 1)
                ctx.vote_to_halt()

        registry = AggregatorRegistry()
        registry.register("n", SumAggregator())
        worker = loaded_worker()
        worker.prepare_superstep(registry)
        worker.run_superstep(Contribute(), 0, MessageStore(), 2, 2)
        registry.barrier()
        assert registry.visible_value("n") == 2

    def test_raise_policy_wraps_with_location(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        with pytest.raises(ComputeError) as info:
            worker.run_superstep(Crash(), 0, MessageStore(), 2, 2)
        assert info.value.vertex_id == "a"
        assert info.value.superstep == 0
        assert isinstance(info.value.original, ValueError)

    def test_halt_vertex_policy_continues(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        worker.run_superstep(Crash(), 0, MessageStore(), 2, 2, on_error="halt_vertex")
        assert len(worker.compute_errors) == 2
        assert worker.all_halted()

    def test_prepare_superstep_resets_outputs(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        store = MessageStore()
        store.deliver(Envelope(source="b", target="a", value=1))
        worker.run_superstep(Echo(), 1, store, 2, 2)
        worker.prepare_superstep(AggregatorRegistry())
        assert worker.outbox == {}
        assert worker.outbox_envelopes() == []
        assert worker.messages_sent == 0
        assert worker.compute_calls == 0
