"""Unit tests for the simulated worker."""

import pytest

from repro.common.errors import ComputeError
from repro.pregel import Computation
from repro.pregel.aggregators import AggregatorRegistry, SumAggregator
from repro.pregel.messages import Envelope, MessageStore
from repro.pregel.worker import Worker


class Echo(Computation):
    """Forwards each incoming message value to every neighbor."""

    def compute(self, ctx, messages):
        for value in messages:
            ctx.send_message_to_all_neighbors(value)
        ctx.vote_to_halt()


class Crash(Computation):
    def compute(self, ctx, messages):
        raise ValueError("boom")


def loaded_worker():
    worker = Worker(worker_id=0, run_seed=1)
    worker.load_vertex("a", 0, {"b": None})
    worker.load_vertex("b", 0, {"a": None})
    return worker


class TestVertexState:
    def test_load_and_counts(self):
        worker = loaded_worker()
        assert worker.num_vertices == 2
        assert worker.num_edges == 2
        assert worker.has_vertex("a")

    def test_remove_vertex(self):
        worker = loaded_worker()
        worker.remove_vertex("a")
        assert not worker.has_vertex("a")
        assert worker.num_vertices == 1

    def test_remove_missing_vertex_is_noop(self):
        loaded_worker().remove_vertex("ghost")

    def test_edge_map_copied_on_load(self):
        worker = Worker(0, run_seed=0)
        edges = {"x": 1}
        worker.load_vertex("v", None, edges)
        edges["y"] = 2
        assert "y" not in worker.edges["v"]


class TestActivation:
    def test_all_active_in_superstep_zero(self):
        worker = loaded_worker()
        assert worker.active_vertices(0, MessageStore()) == ["a", "b"]

    def test_halted_vertices_skip_later_supersteps(self):
        worker = loaded_worker()
        worker.halted["a"] = True
        assert worker.active_vertices(1, MessageStore()) == ["b"]

    def test_messages_wake_halted_vertices(self):
        worker = loaded_worker()
        worker.halted["a"] = True
        store = MessageStore()
        store.deliver(Envelope(source="b", target="a", value=1))
        assert worker.active_vertices(1, store) == ["a", "b"]


class TestRunSuperstep:
    def test_messages_forwarded(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        store = MessageStore()
        store.deliver(Envelope(source="b", target="a", value="payload"))
        worker.run_superstep(Echo(), 1, store, 2, 2)
        assert len(worker.outbox) == 1
        assert worker.outbox[0].target == "b"
        assert worker.messages_sent == 1
        assert worker.bytes_sent > 0

    def test_halt_state_recorded(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        worker.run_superstep(Echo(), 0, MessageStore(), 2, 2)
        assert worker.all_halted()

    def test_value_updates_persisted(self):
        class SetTo9(Computation):
            def compute(self, ctx, messages):
                ctx.set_value(9)

        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        worker.run_superstep(SetTo9(), 0, MessageStore(), 2, 2)
        assert dict(worker.vertex_values()) == {"a": 9, "b": 9}

    def test_compute_calls_counted(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        worker.run_superstep(Echo(), 0, MessageStore(), 2, 2)
        assert worker.compute_calls == 2

    def test_aggregation_reaches_registry(self):
        class Contribute(Computation):
            def compute(self, ctx, messages):
                ctx.aggregate("n", 1)
                ctx.vote_to_halt()

        registry = AggregatorRegistry()
        registry.register("n", SumAggregator())
        worker = loaded_worker()
        worker.prepare_superstep(registry)
        worker.run_superstep(Contribute(), 0, MessageStore(), 2, 2)
        registry.barrier()
        assert registry.visible_value("n") == 2

    def test_raise_policy_wraps_with_location(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        with pytest.raises(ComputeError) as info:
            worker.run_superstep(Crash(), 0, MessageStore(), 2, 2)
        assert info.value.vertex_id == "a"
        assert info.value.superstep == 0
        assert isinstance(info.value.original, ValueError)

    def test_halt_vertex_policy_continues(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        worker.run_superstep(Crash(), 0, MessageStore(), 2, 2, on_error="halt_vertex")
        assert len(worker.compute_errors) == 2
        assert worker.all_halted()

    def test_prepare_superstep_resets_outputs(self):
        worker = loaded_worker()
        worker.prepare_superstep(AggregatorRegistry())
        store = MessageStore()
        store.deliver(Envelope(source="b", target="a", value=1))
        worker.run_superstep(Echo(), 1, store, 2, 2)
        worker.prepare_superstep(AggregatorRegistry())
        assert worker.outbox == []
        assert worker.messages_sent == 0
        assert worker.compute_calls == 0
