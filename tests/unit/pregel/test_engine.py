"""Unit tests for the BSP engine loop."""

import pytest

from repro.common.errors import ComputeError, EngineStateError, PregelError
from repro.graph import GraphBuilder
from repro.pregel import (
    Computation,
    ExplicitPartitioner,
    MasterComputation,
    MinCombiner,
    PregelEngine,
    SumAggregator,
    run_computation,
)
from repro.pregel.halting import CONVERGED, MASTER_HALT, MAX_SUPERSTEPS


class HaltImmediately(Computation):
    def compute(self, ctx, messages):
        ctx.vote_to_halt()


class CountSupersteps(Computation):
    """Value = how many supersteps this vertex computed in."""

    def initial_value(self, vertex_id, input_value):
        return 0

    def compute(self, ctx, messages):
        ctx.set_value(ctx.value + 1)
        if ctx.superstep >= 2:
            ctx.vote_to_halt()
        else:
            ctx.send_message_to_all_neighbors("tick")


class PingForever(Computation):
    def compute(self, ctx, messages):
        ctx.send_message_to_all_neighbors("ping")


def chain(n=3):
    return GraphBuilder(directed=False).path(*range(n)).build()


class TestTermination:
    def test_converges_when_all_halt_silently(self):
        result = run_computation(HaltImmediately, chain())
        assert result.halt_reason == CONVERGED
        assert result.num_supersteps == 1

    def test_messages_keep_computation_alive(self):
        result = run_computation(CountSupersteps, chain())
        assert result.num_supersteps == 3
        assert all(v == 3 for v in result.vertex_values.values())

    def test_max_supersteps_cap(self):
        result = run_computation(PingForever, chain(), max_supersteps=5)
        assert result.halt_reason == MAX_SUPERSTEPS
        assert result.num_supersteps == 5

    def test_master_halt(self):
        class StopAt3(MasterComputation):
            def master_compute(self, master_ctx):
                if master_ctx.superstep == 3:
                    master_ctx.halt_computation()

        result = run_computation(PingForever, chain(), master=StopAt3())
        assert result.halt_reason == MASTER_HALT
        assert result.num_supersteps == 3

    def test_converged_flag(self):
        assert run_computation(HaltImmediately, chain()).converged


class TestMessagingSemantics:
    def test_messages_arrive_next_superstep(self):
        deliveries = {}

        class TrackArrival(Computation):
            def compute(self, ctx, messages):
                if messages:
                    deliveries.setdefault(ctx.superstep, 0)
                    deliveries[ctx.superstep] += len(messages)
                if ctx.superstep == 0:
                    ctx.send_message_to_all_neighbors("x")
                ctx.vote_to_halt()

        run_computation(TrackArrival, chain())
        assert set(deliveries) == {1}

    def test_combiner_reduces_message_count(self):
        class Blast(Computation):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.send_message_to_all_neighbors(1)
                ctx.vote_to_halt()

        star = GraphBuilder(directed=False)
        for leaf in range(1, 6):
            star.edge(0, leaf)
        result = run_computation(Blast, star.build(), combiner=MinCombiner())
        assert result.metrics.total_messages_combined > 0

    def test_message_to_missing_vertex_creates_it(self):
        class Spawn(Computation):
            def compute(self, ctx, messages):
                if ctx.superstep == 0 and ctx.vertex_id == 0:
                    ctx.send_message("brand-new", 1)
                ctx.vote_to_halt()

            def default_vertex_value(self, vertex_id):
                return "default"

        result = run_computation(Spawn, chain())
        assert result.vertex_values["brand-new"] == "default"

    def test_deterministic_across_runs(self):
        first = run_computation(CountSupersteps, chain(6), num_workers=3, seed=9)
        second = run_computation(CountSupersteps, chain(6), num_workers=3, seed=9)
        assert first.vertex_values == second.vertex_values
        assert first.num_supersteps == second.num_supersteps

    def test_worker_count_does_not_change_results(self):
        byone = run_computation(CountSupersteps, chain(8), num_workers=1)
        byfive = run_computation(CountSupersteps, chain(8), num_workers=5)
        assert byone.vertex_values == byfive.vertex_values


class TestMutations:
    def test_add_vertex_request(self):
        class AddOne(Computation):
            def compute(self, ctx, messages):
                if ctx.superstep == 0 and ctx.vertex_id == 0:
                    ctx.add_vertex_request("added", value=5)
                ctx.vote_to_halt()

        result = run_computation(AddOne, chain())
        assert result.vertex_values["added"] == 5

    def test_remove_vertex_request(self):
        class RemoveTwo(Computation):
            def compute(self, ctx, messages):
                if ctx.superstep == 0 and ctx.vertex_id == 0:
                    ctx.remove_vertex_request(2)
                ctx.vote_to_halt()

        result = run_computation(RemoveTwo, chain())
        assert 2 not in result.vertex_values

    def test_edge_mutations_persist_across_supersteps(self):
        class DropEdgesThenCount(Computation):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    for target in list(ctx.neighbor_ids()):
                        ctx.remove_edge(target)
                    return
                ctx.set_value(ctx.out_degree)
                ctx.vote_to_halt()

        result = run_computation(DropEdgesThenCount, chain())
        assert all(v == 0 for v in result.vertex_values.values())


class TestAggregatorsAndGlobals:
    def test_engine_level_aggregators(self):
        class Count(Computation):
            def compute(self, ctx, messages):
                ctx.aggregate("n", 1)
                ctx.vote_to_halt()

        result = run_computation(Count, chain(), aggregators={"n": SumAggregator()})
        assert result.aggregator_values["n"] == 3

    def test_global_counts_exposed(self):
        seen = {}

        class Observe(Computation):
            def compute(self, ctx, messages):
                seen[ctx.vertex_id] = (ctx.num_vertices, ctx.num_edges)
                ctx.vote_to_halt()

        run_computation(Observe, chain())
        assert all(counts == (3, 4) for counts in seen.values())

    def test_initial_value_hook(self):
        class FromInput(Computation):
            def initial_value(self, vertex_id, input_value):
                return (vertex_id, input_value)

            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        g = GraphBuilder().vertex(1, value="in").build()
        result = run_computation(FromInput, g)
        assert result.vertex_values[1] == (1, "in")


class TestErrorsAndValidation:
    def test_compute_error_propagates_with_location(self):
        class Fail(Computation):
            def compute(self, ctx, messages):
                raise KeyError("missing")

        with pytest.raises(ComputeError) as info:
            run_computation(Fail, chain())
        assert info.value.superstep == 0

    def test_halt_vertex_policy_collects_errors(self):
        class FailOnZero(Computation):
            def compute(self, ctx, messages):
                if ctx.vertex_id == 0:
                    raise ValueError("just me")
                ctx.vote_to_halt()

        result = run_computation(FailOnZero, chain(), on_error="halt_vertex")
        assert len(result.compute_errors) == 1
        assert result.compute_errors[0].vertex_id == 0

    def test_engine_single_use(self):
        engine = PregelEngine(HaltImmediately, chain())
        engine.run()
        with pytest.raises(EngineStateError):
            engine.run()

    def test_bad_policy_rejected(self):
        with pytest.raises(PregelError, match="on_error"):
            PregelEngine(HaltImmediately, chain(), on_error="wat")

    def test_bad_max_supersteps_rejected(self):
        with pytest.raises(PregelError):
            PregelEngine(HaltImmediately, chain(), max_supersteps=0)

    def test_input_graph_not_mutated(self):
        class Vandal(Computation):
            def compute(self, ctx, messages):
                ctx.set_value("changed")
                ctx.remove_edge(next(iter(ctx.neighbor_ids()), None))
                ctx.vote_to_halt()

        g = chain()
        edges_before = set(g.edges())
        run_computation(Vandal, g)
        assert set(g.edges()) == edges_before
        assert all(g.vertex_value(v) is None for v in g.vertex_ids())


class TestListeners:
    def test_listener_hooks_fire_in_order(self):
        events = []

        class Listener:
            def on_start(self, engine):
                events.append("start")

            def on_master_computed(self, superstep, master_ctx):
                events.append(f"master{superstep}")

            def on_superstep_end(self, superstep, metrics):
                events.append(f"end{superstep}")

            def on_finish(self, result):
                events.append("finish")

        run_computation(HaltImmediately, chain(), listeners=[Listener()])
        assert events == ["start", "master0", "end0", "finish"]

    def test_partial_listeners_allowed(self):
        class OnlyFinish:
            def on_finish(self, result):
                self.result = result

        listener = OnlyFinish()
        run_computation(HaltImmediately, chain(), listeners=[listener])
        assert listener.result.converged


class TestEngineQueries:
    def test_vertex_value_and_edges_lookup(self):
        engine = PregelEngine(HaltImmediately, chain())
        engine.run()
        assert engine.vertex_value(0) is None
        assert engine.has_vertex(1)
        assert engine.vertex_edges(1) == {0: None, 2: None}

    def test_missing_vertex_lookup_raises(self):
        engine = PregelEngine(HaltImmediately, chain())
        engine.run()
        with pytest.raises(PregelError):
            engine.vertex_value("ghost")

    def test_explicit_partitioner_controls_placement(self):
        engine = PregelEngine(
            HaltImmediately,
            chain(),
            partitioner=ExplicitPartitioner(2, {0: 0, 1: 1, 2: 1}),
        )
        engine.run()
        assert engine.workers[0].has_vertex(0)
        assert engine.workers[1].has_vertex(1)
        assert engine.workers[1].has_vertex(2)
