"""Unit tests for message combiners."""

from repro.pregel import MaxCombiner, MinCombiner, SumCombiner
from repro.pregel.messages import Envelope, MessageStore


class TestCombinerFolds:
    def test_sum(self):
        assert SumCombiner().combine(2, 3) == 5

    def test_min(self):
        assert MinCombiner().combine(2, 3) == 2
        assert MinCombiner().combine(3, 2) == 2

    def test_max(self):
        assert MaxCombiner().combine(2, 3) == 3


class TestStoreCombining:
    def _store_with(self, values, target="t"):
        store = MessageStore()
        for index, value in enumerate(values):
            store.deliver(Envelope(source=index, target=target, value=value))
        return store

    def test_combine_folds_inbox_to_one(self):
        store = self._store_with([1, 2, 3])
        eliminated = store.combine(SumCombiner())
        assert eliminated == 2
        inbox = store.inbox("t")
        assert len(inbox) == 1
        assert inbox[0].value == 6

    def test_combined_envelope_loses_source(self):
        store = self._store_with([1, 2])
        store.combine(SumCombiner())
        assert store.inbox("t")[0].source is None

    def test_single_message_untouched(self):
        store = self._store_with([7])
        assert store.combine(SumCombiner()) == 0
        assert store.inbox("t")[0].source == 0

    def test_total_message_count_updated(self):
        store = self._store_with([1, 2, 3])
        store.combine(MinCombiner())
        assert store.total_messages == 1

    def test_multiple_targets_combined_independently(self):
        store = MessageStore()
        for value in (1, 2):
            store.deliver(Envelope(source=0, target="a", value=value))
        store.deliver(Envelope(source=0, target="b", value=9))
        store.combine(SumCombiner())
        assert store.inbox("a")[0].value == 3
        assert store.inbox("b")[0].value == 9
