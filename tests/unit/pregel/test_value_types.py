"""Unit tests for the Java-style fixed-width integers."""

import pytest

from repro.common.serialization import decode_value, encode_value
from repro.pregel import Int32, Long64, Short16


class TestShort16:
    def test_max_value_matches_java(self):
        assert Short16.max_value() == 32767
        assert Short16.min_value() == -32768

    def test_overflow_wraps_negative(self):
        assert (Short16(32767) + 1).value == -32768

    def test_the_paper_bug_shape(self):
        # Accumulating walker counts past the short range goes negative —
        # exactly the random-walk scenario's defect.
        count = Short16(30000) + Short16(5000)
        assert count < 0

    def test_underflow_wraps_positive(self):
        assert (Short16(-32768) - 1).value == 32767

    def test_multiplication_wraps(self):
        assert (Short16(256) * 256).value == 0
        assert (Short16(182) * 182) != 182 * 182

    def test_subtraction(self):
        assert (Short16(10) - 3).value == 7
        assert (7 - Short16(3)).value == 4

    def test_radd_with_plain_int(self):
        assert (5 + Short16(1)).value == 6
        assert isinstance(5 + Short16(1), Short16)

    def test_negation(self):
        assert (-Short16(5)).value == -5

    def test_construction_wraps_immediately(self):
        assert Short16(40000).value == 40000 - 65536

    def test_construction_from_other_fixed_width(self):
        assert Short16(Int32(70000)).value == Short16(70000).value


class TestComparisons:
    def test_equality_with_int(self):
        assert Short16(5) == 5
        assert Short16(5) != 6

    def test_ordering_with_int(self):
        assert Short16(-1) < 0
        assert Short16(5) >= 5
        assert Short16(5) <= 5
        assert Short16(6) > 5

    def test_ordering_between_instances(self):
        assert Short16(3) < Short16(4)

    def test_hash_matches_int(self):
        assert hash(Short16(42)) == hash(42)
        assert {Short16(1)} == {1}

    def test_incompatible_comparison(self):
        assert Short16(1) != "1"

    def test_sorting(self):
        values = [Short16(3), Short16(-1), Short16(2)]
        assert sorted(values) == [Short16(-1), Short16(2), Short16(3)]


class TestConversions:
    def test_int_and_index(self):
        assert int(Short16(9)) == 9
        assert list(range(3))[Short16(1)] == 1

    def test_bool(self):
        assert Short16(1)
        assert not Short16(0)

    def test_repr_is_evalable(self):
        assert eval(repr(Short16(-5))) == Short16(-5)


class TestWiderTypes:
    def test_int32_wraps_at_2_31(self):
        assert (Int32(2**31 - 1) + 1).value == -(2**31)

    def test_long64_wraps_at_2_63(self):
        assert (Long64(2**63 - 1) + 1).value == -(2**63)

    def test_int32_normal_arithmetic(self):
        assert (Int32(1000) * 1000).value == 1_000_000


class TestSerialization:
    @pytest.mark.parametrize("cls", [Short16, Int32, Long64])
    def test_codec_roundtrip(self, cls):
        value = cls(-1234)
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert isinstance(decoded, cls)
