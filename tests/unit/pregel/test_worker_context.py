"""Unit tests for the per-worker superstep hooks (WorkerContext)."""

from repro.graph import GraphBuilder
from repro.pregel import Computation, run_computation


class HookSpy(Computation):
    events = []

    def pre_superstep(self, worker_info):
        HookSpy.events.append(("pre", worker_info.worker_id, worker_info.superstep))

    def post_superstep(self, worker_info):
        HookSpy.events.append(("post", worker_info.worker_id, worker_info.superstep))

    def compute(self, ctx, messages):
        HookSpy.events.append(("compute", ctx.vertex_id, ctx.superstep))
        ctx.vote_to_halt()


def pair():
    return GraphBuilder(directed=False).edge(0, 1).build()


class TestWorkerHooks:
    def test_hooks_bracket_each_workers_computes(self):
        HookSpy.events = []
        run_computation(HookSpy, pair(), num_workers=1)
        kinds = [event[0] for event in HookSpy.events]
        assert kinds == ["pre", "compute", "compute", "post"]

    def test_hooks_fire_once_per_worker_per_superstep(self):
        HookSpy.events = []
        run_computation(HookSpy, pair(), num_workers=3)
        pres = [e for e in HookSpy.events if e[0] == "pre"]
        posts = [e for e in HookSpy.events if e[0] == "post"]
        # One superstep, three workers (even those with no vertices).
        assert len(pres) == 3
        assert len(posts) == 3

    def test_worker_info_contents(self):
        seen = {}

        class InfoSpy(Computation):
            def pre_superstep(self, worker_info):
                seen[worker_info.worker_id] = (
                    worker_info.superstep,
                    worker_info.num_vertices,
                    worker_info.num_edges,
                )

            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        run_computation(InfoSpy, pair(), num_workers=2)
        assert all(info == (0, 2, 2) for info in seen.values())

    def test_worker_local_precomputation_pattern(self):
        class Precompute(Computation):
            """The legitimate WorkerContext use: per-superstep scratch that
            is derived from nothing but the superstep itself."""

            def pre_superstep(self, worker_info):
                self.bonus = worker_info.superstep * 10

            def initial_value(self, vertex_id, input_value):
                return 0

            def compute(self, ctx, messages):
                ctx.set_value(ctx.value + self.bonus)
                if ctx.superstep >= 1:
                    ctx.vote_to_halt()
                else:
                    ctx.send_message_to_all_neighbors("tick")

        result = run_computation(Precompute, pair())
        assert all(value == 10 for value in result.vertex_values.values())

    def test_hooks_delegated_through_graft_instrumentation(self):
        from repro.graft import DebugConfig, debug_run

        HookSpy.events = []
        run = debug_run(HookSpy, pair(), DebugConfig(), num_workers=1)
        assert run.ok
        kinds = [event[0] for event in HookSpy.events]
        assert kinds[0] == "pre"
        assert kinds[-1] == "post"

    def test_hidden_hook_state_breaks_fidelity_detectably(self):
        from repro.graft import CaptureAllActiveConfig, debug_run, verify_run_fidelity

        class HiddenState(Computation):
            """Consumes worker-accumulated state: the Section 7 trap."""

            def __init__(self):
                self.counter = 0

            def pre_superstep(self, worker_info):
                self.counter += 1

            def initial_value(self, vertex_id, input_value):
                return 0

            def compute(self, ctx, messages):
                ctx.set_value(self.counter)
                if ctx.superstep >= 1:
                    ctx.vote_to_halt()
                else:
                    ctx.send_message_to_all_neighbors("tick")

        run = debug_run(HiddenState, pair(), CaptureAllActiveConfig(), num_workers=1)
        report = verify_run_fidelity(run)
        assert not report.ok  # replay cannot see the hook-fed counter