"""Unit tests for the ComputeContext."""

import pytest

from repro.common.errors import PregelError
from repro.pregel.context import ComputeContext, ComputeServices
from repro.pregel.messages import Envelope


class RecordingServices(ComputeServices):
    def __init__(self, aggregators=None):
        self.aggregators = aggregators or {}
        self.contributions = []
        self.emitted = []
        self.added = []
        self.removed = []

    def aggregated_value(self, name):
        return self.aggregators[name]

    def aggregate(self, name, contribution):
        self.contributions.append((name, contribution))

    def emit(self, envelope):
        self.emitted.append(envelope)

    def request_add_vertex(self, vertex_id, value):
        self.added.append((vertex_id, value))

    def request_remove_vertex(self, vertex_id):
        self.removed.append(vertex_id)


def make_ctx(**overrides):
    services = overrides.pop("services", RecordingServices())
    defaults = dict(
        vertex_id="v",
        value=10,
        edges={"a": 1.0, "b": None},
        incoming=[Envelope(source="s", target="v", value="msg")],
        superstep=3,
        num_vertices=100,
        num_edges=300,
        services=services,
        run_seed=7,
    )
    defaults.update(overrides)
    return ComputeContext(**defaults), services


class TestValueAndGlobals:
    def test_exposes_the_five_context_pieces(self):
        ctx, _services = make_ctx()
        assert ctx.vertex_id == "v"
        assert dict(ctx.out_edges()) == {"a": 1.0, "b": None}
        assert [e.value for e in ctx.message_envelopes()] == ["msg"]
        assert ctx.superstep == 3
        assert (ctx.num_vertices, ctx.num_edges) == (100, 300)

    def test_set_value(self):
        ctx, _services = make_ctx()
        ctx.set_value(42)
        assert ctx.value == 42

    def test_observer_sees_value_updates(self):
        seen = []

        class Observer:
            def on_set_value(self, ctx, old, new):
                seen.append((old, new))

            def on_send(self, ctx, target, value):
                pass

        ctx, _services = make_ctx()
        ctx.attach_observer(Observer())
        ctx.set_value(11)
        assert seen == [(10, 11)]


class TestEdges:
    def test_neighbor_queries(self):
        ctx, _services = make_ctx()
        assert sorted(ctx.neighbor_ids()) == ["a", "b"]
        assert ctx.out_degree == 2
        assert ctx.has_edge("a")
        assert ctx.edge_value("a") == 1.0

    def test_edge_mutations_effective_immediately(self):
        ctx, _services = make_ctx()
        ctx.add_edge("c", 9)
        assert ctx.edge_value("c") == 9
        ctx.set_edge_value("c", 8)
        assert ctx.edge_value("c") == 8
        ctx.remove_edge("c")
        assert not ctx.has_edge("c")

    def test_remove_missing_edge_is_noop(self):
        ctx, _services = make_ctx()
        ctx.remove_edge("ghost")

    def test_missing_edge_value_raises(self):
        ctx, _services = make_ctx()
        with pytest.raises(PregelError, match="no edge"):
            ctx.edge_value("ghost")
        with pytest.raises(PregelError, match="no edge"):
            ctx.set_edge_value("ghost", 1)

    def test_edges_snapshot_is_a_copy(self):
        ctx, _services = make_ctx()
        snapshot = ctx.edges_snapshot()
        snapshot["zzz"] = 1
        assert not ctx.has_edge("zzz")


class TestMessaging:
    def test_send_message_emits_and_records(self):
        ctx, services = make_ctx()
        ctx.send_message("a", 5)
        assert len(services.emitted) == 1
        envelope = services.emitted[0]
        assert (envelope.source, envelope.target, envelope.value) == ("v", "a", 5)
        assert ctx.sent_envelopes == [envelope]

    def test_send_to_all_neighbors(self):
        ctx, services = make_ctx()
        ctx.send_message_to_all_neighbors("hello")
        assert sorted(e.target for e in services.emitted) == ["a", "b"]

    def test_observer_sees_sends_before_emit(self):
        order = []

        class Observer:
            def on_send(self, ctx, target, value):
                order.append("observe")

            def on_set_value(self, ctx, old, new):
                pass

        class OrderedServices(RecordingServices):
            def emit(self, envelope):
                order.append("emit")

        ctx, _services = make_ctx(services=OrderedServices())
        ctx.attach_observer(Observer())
        ctx.send_message("a", 1)
        assert order == ["observe", "emit"]


class TestAggregatorsAndHalting:
    def test_aggregate_and_read(self):
        services = RecordingServices(aggregators={"phase": "X"})
        ctx, _unused = make_ctx(services=services)
        assert ctx.aggregated_value("phase") == "X"
        ctx.aggregate("count", 1)
        assert services.contributions == [("count", 1)]

    def test_vote_to_halt(self):
        ctx, _services = make_ctx()
        assert not ctx.halted
        ctx.vote_to_halt()
        assert ctx.halted

    def test_mutation_requests_forwarded(self):
        ctx, services = make_ctx()
        ctx.add_vertex_request("new", value=5)
        ctx.remove_vertex_request("old")
        assert services.added == [("new", 5)]
        assert services.removed == ["old"]


class TestRandomness:
    def test_rng_is_deterministic_per_vertex_superstep(self):
        a, _s1 = make_ctx()
        b, _s2 = make_ctx()
        assert a.random() == b.random()

    def test_rng_differs_across_supersteps(self):
        a, _s1 = make_ctx(superstep=1)
        b, _s2 = make_ctx(superstep=2)
        assert a.random() != b.random()

    def test_rng_differs_across_vertices(self):
        a, _s1 = make_ctx(vertex_id="v1")
        b, _s2 = make_ctx(vertex_id="v2")
        assert a.random() != b.random()

    def test_rng_differs_across_run_seeds(self):
        a, _s1 = make_ctx(run_seed=1)
        b, _s2 = make_ctx(run_seed=2)
        assert a.random() != b.random()

    def test_rng_cached_within_call(self):
        ctx, _services = make_ctx()
        assert ctx.rng is ctx.rng
