"""Unit tests for the core Graph structure."""

import pytest

from repro.common.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph import Graph
from repro.graph.graph import merge_graphs


class TestVertices:
    def test_add_and_count(self):
        g = Graph()
        g.add_vertex(1)
        g.add_vertex(2, value="x")
        assert g.num_vertices == 2
        assert g.vertex_value(2) == "x"
        assert g.vertex_value(1) is None

    def test_readd_without_value_keeps_value(self):
        g = Graph()
        g.add_vertex(1, value="keep")
        g.add_vertex(1)
        assert g.vertex_value(1) == "keep"

    def test_readd_with_value_updates(self):
        g = Graph()
        g.add_vertex(1, value="old")
        g.add_vertex(1, value="new")
        assert g.vertex_value(1) == "new"

    def test_set_value(self):
        g = Graph()
        g.add_vertex(1)
        g.set_vertex_value(1, 9)
        assert g.vertex_value(1) == 9

    def test_missing_vertex_value_raises(self):
        with pytest.raises(VertexNotFoundError):
            Graph().vertex_value(1)

    def test_contains_and_len(self):
        g = Graph()
        g.add_vertex("a")
        assert "a" in g
        assert "b" not in g
        assert len(g) == 1

    def test_remove_vertex_drops_incident_edges(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        g.add_edge(2, 3)
        g.remove_vertex(2)
        assert g.num_vertices == 2
        assert g.num_edges == 0
        assert not g.has_edge(1, 2)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(VertexNotFoundError):
            Graph().remove_vertex(5)

    def test_insertion_order_preserved(self):
        g = Graph()
        for vertex in (3, 1, 2):
            g.add_vertex(vertex)
        assert list(g.vertex_ids()) == [3, 1, 2]


class TestEdges:
    def test_add_edge_autocreates_vertices(self):
        g = Graph()
        g.add_edge(1, 2, value=5.0)
        assert g.has_vertex(1) and g.has_vertex(2)
        assert g.edge_value(1, 2) == 5.0
        assert g.num_edges == 1

    def test_add_edge_strict_mode(self):
        g = Graph()
        g.add_vertex(1)
        with pytest.raises(VertexNotFoundError):
            g.add_edge(1, 2, add_vertices=False)

    def test_duplicate_edge_updates_value_not_count(self):
        g = Graph()
        g.add_edge(1, 2, value=1)
        g.add_edge(1, 2, value=7)
        assert g.num_edges == 1
        assert g.edge_value(1, 2) == 7

    def test_undirected_edge_symmetric(self):
        g = Graph(directed=False)
        g.add_undirected_edge(1, 2, value=4.0)
        assert g.edge_value(1, 2) == 4.0
        assert g.edge_value(2, 1) == 4.0
        assert g.num_edges == 2

    def test_remove_edge(self):
        g = Graph()
        g.add_edge(1, 2)
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 0

    def test_remove_missing_edge_raises(self):
        g = Graph()
        g.add_vertex(1)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 9)

    def test_out_edges_and_neighbors(self):
        g = Graph()
        g.add_edge(1, 2, value="a")
        g.add_edge(1, 3, value="b")
        assert dict(g.out_edges(1)) == {2: "a", 3: "b"}
        assert sorted(g.neighbors(1)) == [2, 3]
        assert g.out_degree(1) == 2

    def test_edges_iterates_all(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3, value=9)
        assert set(g.edges()) == {(1, 2, None), (2, 3, 9)}

    def test_set_edge_value(self):
        g = Graph()
        g.add_edge(1, 2, value=1)
        g.set_edge_value(1, 2, 2)
        assert g.edge_value(1, 2) == 2

    def test_set_missing_edge_value_raises(self):
        g = Graph()
        g.add_vertex(1)
        with pytest.raises(EdgeNotFoundError):
            g.set_edge_value(1, 2, 0)

    def test_self_loop_allowed(self):
        g = Graph()
        g.add_edge(1, 1)
        assert g.has_edge(1, 1)


class TestCopyAndEquality:
    def test_copy_is_equal_but_independent(self):
        g = Graph()
        g.add_edge(1, 2, value=3)
        clone = g.copy()
        assert clone == g
        clone.add_edge(2, 3)
        assert clone != g
        assert not g.has_edge(2, 3)

    def test_equality_considers_directedness(self):
        a = Graph(directed=True)
        b = Graph(directed=False)
        assert a != b

    def test_repr_mentions_counts(self):
        g = Graph()
        g.add_edge(1, 2)
        assert "vertices=2" in repr(g)
        assert "edges=1" in repr(g)


class TestMergeGraphs:
    def test_union_of_structure(self):
        a = Graph()
        a.add_edge(1, 2)
        b = Graph()
        b.add_edge(2, 3)
        merged = merge_graphs(a, b)
        assert merged.num_vertices == 3
        assert merged.has_edge(1, 2) and merged.has_edge(2, 3)

    def test_second_wins_on_value_conflict(self):
        a = Graph()
        a.add_vertex(1, value="a")
        b = Graph()
        b.add_vertex(1, value="b")
        assert merge_graphs(a, b).vertex_value(1) == "b"

    def test_directedness_mismatch_rejected(self):
        with pytest.raises(GraphError):
            merge_graphs(Graph(directed=True), Graph(directed=False))
