"""Unit tests for GraphBuilder."""

import pytest

from repro.common.errors import GraphError
from repro.graph import GraphBuilder


class TestBuilder:
    def test_vertices_and_edges(self):
        g = GraphBuilder().vertex(1, value="v").edge(1, 2, value=3).build()
        assert g.vertex_value(1) == "v"
        assert g.edge_value(1, 2) == 3

    def test_undirected_builder_symmetrizes(self):
        g = GraphBuilder(directed=False).edge(1, 2, value=7).build()
        assert g.edge_value(2, 1) == 7

    def test_vertices_shorthand(self):
        g = GraphBuilder().vertices(1, 2, 3).build()
        assert g.num_vertices == 3

    def test_vertices_shorthand_keeps_existing_values(self):
        g = GraphBuilder().vertex(1, value="keep").vertices(1, 2).build()
        assert g.vertex_value(1) == "keep"

    def test_path(self):
        g = GraphBuilder().path(1, 2, 3).build()
        assert g.has_edge(1, 2) and g.has_edge(2, 3)
        assert not g.has_edge(1, 3)

    def test_path_too_short_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().path(1)

    def test_cycle(self):
        g = GraphBuilder().cycle(1, 2, 3).build()
        assert g.has_edge(3, 1)

    def test_cycle_too_short_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().cycle(1, 2)

    def test_clique_directed_has_both_directions(self):
        g = GraphBuilder(directed=True).clique(1, 2, 3).build()
        assert g.num_edges == 6

    def test_clique_undirected(self):
        g = GraphBuilder(directed=False).clique(1, 2, 3).build()
        assert g.num_edges == 6  # 3 pairs x 2 symmetric directed edges

    def test_set_value_edits_declared_vertex(self):
        g = GraphBuilder().vertex(1).set_value(1, 5).build()
        assert g.vertex_value(1) == 5

    def test_set_value_on_undeclared_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().set_value(1, 5)

    def test_remove_edge(self):
        g = GraphBuilder().edge(1, 2).edge(2, 3).remove_edge(1, 2).build()
        assert not g.has_edge(1, 2)
        assert g.has_edge(2, 3)

    def test_remove_missing_edge_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().remove_edge(1, 2)

    def test_chaining_returns_builder(self):
        builder = GraphBuilder()
        assert builder.vertex(1) is builder
        assert builder.edge(1, 2) is builder
