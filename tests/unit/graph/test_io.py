"""Unit tests for adjacency-list text I/O."""

import dataclasses

import pytest

from repro.common.errors import GraphFormatError
from repro.common.serialization import register_value_type
from repro.graph import (
    Graph,
    GraphBuilder,
    parse_adjacency_text,
    read_adjacency_file,
    read_adjacency_simfs,
    render_adjacency_text,
    write_adjacency_file,
    write_adjacency_simfs,
)


@register_value_type
@dataclasses.dataclass(frozen=True)
class IoValue:
    label: str


class TestRoundTrip:
    def test_simple_roundtrip(self):
        g = GraphBuilder().vertex(1, value=9).edge(1, 2, value=0.5).build()
        assert parse_adjacency_text(render_adjacency_text(g)) == g

    def test_undirected_roundtrip(self, petersen):
        text = render_adjacency_text(petersen)
        assert parse_adjacency_text(text, directed=False) == petersen

    def test_string_ids(self):
        g = GraphBuilder().edge("alpha", "beta gamma").build()
        assert parse_adjacency_text(render_adjacency_text(g)) == g

    def test_registered_value_types(self):
        g = GraphBuilder().vertex(1, value=IoValue("x")).edge(1, 2).build()
        parsed = parse_adjacency_text(render_adjacency_text(g))
        assert parsed.vertex_value(1) == IoValue("x")

    def test_none_values_render_empty(self):
        g = GraphBuilder().edge(1, 2).build()
        text = render_adjacency_text(g)
        assert "1\t\t2:" in text

    def test_empty_graph(self):
        assert parse_adjacency_text(render_adjacency_text(Graph())) == Graph()

    def test_isolated_vertex(self):
        g = GraphBuilder().vertex(7).build()
        assert parse_adjacency_text(render_adjacency_text(g)) == g


class TestParsing:
    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n1\t\t2:\n2\t\t\n"
        g = parse_adjacency_text(text)
        assert g.num_vertices == 2
        assert g.has_edge(1, 2)

    def test_forward_reference_to_later_vertex(self):
        text = "1\t\t2:\n2\t5\t\n"
        g = parse_adjacency_text(text)
        assert g.vertex_value(2) == 5
        assert g.has_edge(1, 2)

    def test_edge_to_undeclared_vertex_created(self):
        g = parse_adjacency_text("1\t\t9:\n")
        assert g.has_vertex(9)

    def test_single_field_line_rejected(self):
        with pytest.raises(GraphFormatError, match="line 1"):
            parse_adjacency_text("1\n")

    def test_bad_edge_token_rejected(self):
        with pytest.raises(GraphFormatError, match="missing ':'"):
            parse_adjacency_text("1\t\tgarbage\n")

    def test_whitespace_only_line_skipped(self):
        assert parse_adjacency_text("\t\t\n").num_vertices == 0

    def test_empty_vertex_id_rejected(self):
        with pytest.raises(GraphFormatError, match="empty vertex id"):
            parse_adjacency_text("\t5\t\n")

    def test_bad_value_json_rejected(self):
        with pytest.raises(GraphFormatError, match="vertex value"):
            parse_adjacency_text("1\t{oops\t\n")


class TestFileBackends:
    def test_local_file_roundtrip(self, tmp_path):
        g = GraphBuilder().edge(1, 2, value=2.0).build()
        path = tmp_path / "g.adj"
        write_adjacency_file(g, str(path))
        assert read_adjacency_file(str(path)) == g

    def test_simfs_roundtrip(self, fs):
        g = GraphBuilder().edge("a", "b").build()
        write_adjacency_simfs(g, fs, "/graphs/g.adj")
        assert read_adjacency_simfs(fs, "/graphs/g.adj") == g
