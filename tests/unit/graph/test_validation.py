"""Unit tests for input-graph validation (the Scenario 4.3 checks)."""

from repro.datasets import corrupt_asymmetric_weights, random_symmetric_weights
from repro.datasets.generators import bipartite_regular
from repro.graph import (
    GraphBuilder,
    find_asymmetric_edges,
    find_self_loops,
    validate_graph,
)
from repro.graph.validation import find_missing_reverse_edges


class TestSelfLoops:
    def test_detects_loop(self):
        g = GraphBuilder().edge(1, 1, value="w").edge(1, 2).build()
        assert find_self_loops(g) == [(1, "w")]

    def test_clean_graph(self, triangle):
        assert find_self_loops(triangle) == []


class TestMissingReverse:
    def test_one_way_edge_detected(self):
        g = GraphBuilder().edge(1, 2).edge(2, 1).edge(2, 3).build()
        assert find_missing_reverse_edges(g) == [(2, 3)]


class TestAsymmetricWeights:
    def test_symmetric_weights_clean(self):
        g = bipartite_regular(10, degree=3, seed=1)
        weighted = random_symmetric_weights(g, seed=2)
        assert find_asymmetric_edges(weighted) == []

    def test_corruption_detected_exactly(self):
        g = bipartite_regular(20, degree=3, seed=1)
        weighted = random_symmetric_weights(g, seed=2)
        corrupted, pairs = corrupt_asymmetric_weights(weighted, fraction=0.2, seed=3)
        assert pairs, "corruption should hit some pairs at 20%"
        found = find_asymmetric_edges(corrupted)
        found_pairs = {frozenset((u, v)) for u, v, _a, _b in found}
        assert found_pairs == {frozenset(p) for p in pairs}

    def test_each_pair_reported_once(self):
        g = GraphBuilder().edge(1, 2, value=1.0).edge(2, 1, value=2.0).build()
        assert len(find_asymmetric_edges(g)) == 1


class TestValidateGraph:
    def test_clean_undirected_graph_ok(self, triangle):
        report = validate_graph(triangle)
        assert report.ok
        assert report.summary() == "graph OK"

    def test_summary_lists_problems(self):
        g = GraphBuilder().edge(1, 1).edge(1, 2, value=3.0).edge(2, 1, value=4.0).build()
        report = validate_graph(g, expect_undirected=True)
        assert not report.ok
        assert "self-loops" in report.summary()
        assert "asymmetric" in report.summary()

    def test_directed_graph_skips_symmetry_checks(self):
        g = GraphBuilder().edge(1, 2).build()
        report = validate_graph(g)
        assert report.missing_reverse_edges == ()
        assert report.ok

    def test_expect_undirected_override(self):
        g = GraphBuilder().edge(1, 2).build()
        report = validate_graph(g, expect_undirected=True)
        assert report.missing_reverse_edges == ((1, 2),)
