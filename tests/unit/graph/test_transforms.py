"""Unit tests for graph transforms."""

import pytest

from repro.common.errors import GraphError
from repro.graph import (
    GraphBuilder,
    relabel_vertices,
    subgraph,
    to_undirected,
    with_edge_values,
)


class TestToUndirected:
    def test_adds_reverse_edges(self):
        g = GraphBuilder().edge(1, 2, value=5).build()
        u = to_undirected(g)
        assert u.edge_value(2, 1) == 5
        assert not u.directed

    def test_existing_symmetric_values_kept(self):
        g = GraphBuilder().edge(1, 2, value=5).edge(2, 1, value=5).build()
        u = to_undirected(g)
        assert u.edge_value(1, 2) == u.edge_value(2, 1) == 5

    def test_conflicting_values_resolved_by_merge(self):
        g = GraphBuilder().edge(1, 2, value=5).edge(2, 1, value=9).build()
        u = to_undirected(g, merge_values=max)
        assert u.edge_value(1, 2) == u.edge_value(2, 1) == 9

    def test_vertex_values_preserved(self):
        g = GraphBuilder().vertex(1, value="v").edge(1, 2).build()
        assert to_undirected(g).vertex_value(1) == "v"


class TestWithEdgeValues:
    def test_function_applied_per_edge(self):
        g = GraphBuilder().edge(1, 2).edge(2, 3).build()
        weighted = with_edge_values(g, lambda u, v: u + v)
        assert weighted.edge_value(1, 2) == 3
        assert weighted.edge_value(2, 3) == 5

    def test_original_untouched(self):
        g = GraphBuilder().edge(1, 2, value=0).build()
        with_edge_values(g, lambda u, v: 99)
        assert g.edge_value(1, 2) == 0


class TestSubgraph:
    def test_induced_edges_only(self):
        g = GraphBuilder().edge(1, 2).edge(2, 3).edge(3, 1).build()
        sub = subgraph(g, [1, 2])
        assert sub.has_edge(1, 2)
        assert not sub.has_vertex(3)
        assert sub.num_edges == 1

    def test_missing_vertices_rejected(self):
        g = GraphBuilder().vertex(1).build()
        with pytest.raises(GraphError, match="missing"):
            subgraph(g, [1, 99])

    def test_values_preserved(self):
        g = GraphBuilder().vertex(1, value="keep").vertex(2).build()
        assert subgraph(g, [1]).vertex_value(1) == "keep"


class TestRelabel:
    def test_dict_mapping(self):
        g = GraphBuilder().edge(1, 2).build()
        renamed = relabel_vertices(g, {1: "one"})
        assert renamed.has_edge("one", 2)

    def test_callable_mapping(self):
        g = GraphBuilder().edge(1, 2).build()
        renamed = relabel_vertices(g, lambda v: v * 10)
        assert renamed.has_edge(10, 20)

    def test_collision_rejected(self):
        g = GraphBuilder().vertices(1, 2).build()
        with pytest.raises(GraphError, match="collides"):
            relabel_vertices(g, {1: "x", 2: "x"})

    def test_values_follow_rename(self):
        g = GraphBuilder().vertex(1, value=7).build()
        assert relabel_vertices(g, {1: "a"}).vertex_value("a") == 7
