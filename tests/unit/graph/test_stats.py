"""Unit tests for graph statistics."""

from repro.graph import GraphBuilder, compute_stats
from repro.graph.stats import _format_count, degree_histogram


class TestComputeStats:
    def test_directed_counts(self):
        g = GraphBuilder().edge(1, 2).edge(2, 1).edge(2, 3).build()
        stats = compute_stats(g)
        assert stats.num_vertices == 3
        assert stats.num_directed_edges == 3
        # (1,2) symmetric pair counts once; (2,3) one-way counts once.
        assert stats.num_undirected_edges == 2

    def test_degree_summary(self):
        g = GraphBuilder().edge(1, 2).edge(1, 3).vertex(4).build()
        stats = compute_stats(g)
        assert stats.min_out_degree == 0
        assert stats.max_out_degree == 2
        assert stats.num_isolated_vertices == 3  # 2, 3, 4 have no out-edges

    def test_empty_graph(self):
        stats = compute_stats(GraphBuilder().build())
        assert stats.num_vertices == 0
        assert stats.mean_out_degree == 0.0

    def test_regular_graph(self, petersen):
        stats = compute_stats(petersen)
        assert stats.min_out_degree == stats.max_out_degree == 3
        assert stats.num_undirected_edges == 15

    def test_table_row_format(self):
        g = GraphBuilder().edge(1, 2).build()
        row = compute_stats(g).table_row("tiny", "a test graph")
        assert "tiny" in row
        assert "a test graph" in row


class TestFormatCount:
    def test_paper_style_formatting(self):
        assert _format_count(685_000) == "685K"
        assert _format_count(7_600_000) == "7.6M"
        assert _format_count(1_900_000_000) == "1.9B"
        assert _format_count(42) == "42"
        assert _format_count(1_000_000) == "1M"


class TestDegreeHistogram:
    def test_uniform_degree_single_bucket(self, petersen):
        histogram = degree_histogram(petersen)
        assert histogram == [(3, 3, 10)]

    def test_buckets_cover_all_vertices(self):
        builder = GraphBuilder()
        for vertex in range(20):
            for target in range(vertex):
                builder.edge(vertex, target)
        histogram = degree_histogram(builder.build(), num_buckets=5)
        assert sum(count for _lo, _hi, count in histogram) == 20

    def test_empty_graph(self):
        assert degree_histogram(GraphBuilder().build()) == []
