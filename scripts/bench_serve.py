"""Debug-server benchmark: concurrent clients over a multi-job trace dir.

Builds several jobs of synthetic capture traces (PageRank-shaped records
with fat edge lists and message payloads, plus persisted per-worker
metrics), starts a real :class:`~repro.serve.app.DebugServer` on
loopback, and hammers it with 8+ concurrent HTTP clients running a mixed
debugging workload — point queries, history walks, paginated views,
one-shot renders, profiler endpoints, reproduce downloads. Reports
requests/s and latency percentiles, then measures the ETag revalidation
path separately.

Gates (exit status 1 when violated):

- aggregate throughput must clear ``THROUGHPUT_FLOOR`` requests/s;
- **point queries** (vertex lookups, history walks — the interactive
  path) must keep p99 under ``POINT_P99_CEILING_SECONDS`` even while
  other clients run full-superstep scans; this ceiling is dominated by
  GIL queuing (clients, server threads, and scan decoding share one
  interpreter here), so a separate **solo phase** re-measures point
  queries without concurrent load against the much tighter
  ``SOLO_POINT_P99_CEILING_SECONDS`` — that one gates the storage path;
- **scan requests** (views, profiles, summaries) must keep p99 under
  ``SCAN_P99_CEILING_SECONDS`` — their tail is the first-touch
  materialization of a superstep, proportional to superstep size;
- every ``If-None-Match`` revalidation must answer 304 with **zero**
  filesystem reads (simfs read accounting, not trust);
- every served view body must be byte-identical to its one-shot renderer.

Usage::

    PYTHONPATH=src python scripts/bench_serve.py [--output BENCH_serve.json]
    PYTHONPATH=src python scripts/bench_serve.py --quick   # CI smoke

Also runnable as an opt-in pytest (see tests/integration/test_bench_serve.py).
"""

import argparse
import json
import random
import threading
import time
import urllib.error
import urllib.request

from repro.graft.capture import (
    ExceptionRecord,
    MasterContextRecord,
    VertexContextRecord,
    Violation,
)
from repro.graft.trace import TraceStore, trace_stats, write_job_metrics
from repro.graft.views import NodeLinkView, TabularView, ViolationsView
from repro.pregel.metrics import RunMetrics, SuperstepMetrics
from repro.serve import create_server
from repro.simfs import SimFileSystem

#: Aggregate requests/s the concurrent phase must clear. Conservative on
#: purpose: client threads, server threads, and the trace decoding all
#: share one interpreter (and its GIL) on the CI box.
THROUGHPUT_FLOOR = 25.0

#: p99 ceiling for the interactive point-query class (vertex lookups and
#: history walks) *under full concurrent load*. The storage work is one
#: index lookup + one ranged read + one decode, but in this benchmark
#: the 8 clients, the server threads, and the scan decoding all share
#: one interpreter — so this bound is dominated by GIL queuing behind
#: CPU-bound scans, not by the trace store.
POINT_P99_CEILING_SECONDS = 2.5

#: p99 ceiling for point queries measured *without* concurrent load
#: (the solo phase). No GIL contention: this is the actual lazy-read
#: path — index lookup, ranged read, block decode — and must stay
#: firmly interactive.
SOLO_POINT_P99_CEILING_SECONDS = 0.5

#: p99 ceiling for the scan class (views, profiles, job summaries). Its
#: tail is the first request to touch a cold superstep, which pays the
#: full materialization of that superstep's records — proportional to
#: superstep size, amortized across every later request.
SCAN_P99_CEILING_SECONDS = 15.0

SEED = 23
NUM_WORKERS = 4
NUM_CLIENTS = 8


def _build_job(fs, job_id, num_vertices, num_supersteps, rng):
    """One job's trace files + metrics.json; returns records written."""
    store = TraceStore(fs, job_id, NUM_WORKERS, format="v2")
    metrics = RunMetrics()
    fanout = 8
    for superstep in range(num_supersteps):
        records = []
        row = SuperstepMetrics(
            superstep=superstep,
            active_vertices=num_vertices,
            compute_calls=num_vertices,
            wall_seconds=0.05,
            compute_seconds=0.12,
        )
        for vertex_id in range(num_vertices):
            incoming = [
                (rng.randrange(num_vertices), rng.random())
                for _ in range(6)
            ]
            violations = []
            if vertex_id % 1009 == 0 and superstep % 4 == 0:
                violations = [Violation(
                    "message", vertex_id, superstep, {"value": -1.0}
                )]
            exception = None
            if vertex_id % 4999 == 0 and superstep == num_supersteps - 1:
                exception = ExceptionRecord("ValueError", "overflow", "trace")
            edges = {
                (vertex_id + k * 7) % num_vertices: rng.random()
                for k in range(1, fanout + 1)
            }
            sent = [
                (target, rng.random() * 0.85) for target in edges
            ]
            records.append(VertexContextRecord(
                vertex_id=vertex_id,
                superstep=superstep,
                worker_id=vertex_id % NUM_WORKERS,
                value_before=rng.random(),
                edges_before=edges,
                incoming=incoming,
                aggregators={"dangling": rng.random(), "delta": rng.random()},
                num_vertices=num_vertices,
                num_edges=num_vertices * fanout,
                run_seed=SEED,
                value_after=rng.random(),
                edges_after=edges,
                sent=sent,
                halted=superstep == num_supersteps - 1,
                reasons=["all_active"],
                violations=violations,
                exception=exception,
            ))
            row.messages_sent += len(sent)
            row.bytes_sent += len(sent) * 24
        for worker_id in range(NUM_WORKERS):
            # Deterministic imbalance so the skew endpoint has signal.
            row.add_worker_row(
                worker_id,
                0.01 * (1.0 + 0.5 * worker_id),
                num_vertices // NUM_WORKERS,
                row.messages_sent // NUM_WORKERS,
                row.bytes_sent // NUM_WORKERS,
            )
        metrics.add_superstep(row)
        store.write_vertex_records(records)
        store.write_master_record(MasterContextRecord(
            superstep=superstep,
            aggregators={"dangling": 0.15},
            aggregators_before={"dangling": 0.0},
        ))
        store.flush()
    store.close()
    metrics.total_seconds = metrics.total_wall_seconds
    write_job_metrics(fs, job_id, metrics)
    return store.records_written


def _get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _workload(job_ids, num_vertices, num_supersteps, requests_per_client):
    """Per-client ``(class, path)`` lists: a mixed debugging session.

    ``"point"`` requests are lazy index lookups (vertex, history);
    ``"scan"`` requests walk or materialize whole supersteps (views,
    profiles, summaries). The two classes are gated separately.
    """
    plans = []
    for client in range(NUM_CLIENTS):
        rng = random.Random(SEED + client)
        plan = []
        for _ in range(requests_per_client):
            job = job_ids[rng.randrange(len(job_ids))]
            roll = rng.random()
            if roll < 0.45:  # point queries dominate real debugging
                plan.append((
                    "point",
                    f"/jobs/{job}/vertex/{rng.randrange(num_vertices)}"
                    f"?superstep={rng.randrange(num_supersteps)}",
                ))
            elif roll < 0.60:
                plan.append((
                    "point",
                    f"/jobs/{job}/vertex/{rng.randrange(num_vertices)}"
                    "/history",
                ))
            elif roll < 0.72:
                plan.append((
                    "scan",
                    f"/jobs/{job}/views/tabular?limit=50"
                    f"&superstep={rng.randrange(num_supersteps)}",
                ))
            elif roll < 0.80:
                plan.append(("scan", f"/jobs/{job}/views/violations"))
            elif roll < 0.88:
                plan.append((
                    "scan",
                    f"/jobs/{job}/profile/"
                    f"{'heatmap' if rng.random() < 0.5 else 'skew'}",
                ))
            elif roll < 0.94:
                plan.append(("scan", f"/jobs/{job}"))
            else:
                plan.append((
                    "scan",
                    f"/jobs/{job}/views/nodelink?limit=25"
                    f"&superstep={rng.randrange(num_supersteps)}",
                ))
        plans.append(plan)
    return plans


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index]


def _run_clients(base_url, plans):
    """Fire all plans concurrently; returns (wall seconds, latencies, errors)."""
    barrier = threading.Barrier(len(plans) + 1)
    latencies = [[] for _ in plans]
    errors = []

    def client(index):
        try:
            barrier.wait(timeout=60)
            for request_class, path in plans[index]:
                started = time.perf_counter()
                status, _headers, body = _get(base_url + path)
                latencies[index].append(
                    (request_class, time.perf_counter() - started)
                )
                if status != 200:
                    errors.append(f"{path} -> {status}: {body[:120]!r}")
        except Exception as exc:  # noqa: BLE001 - reported via gate failure
            errors.append(f"client {index}: {exc!r}")

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(len(plans))
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600)
    wall = time.perf_counter() - started
    flat = [sample for per_client in latencies for sample in per_client]
    return wall, flat, errors


def run_bench(num_jobs=3, num_vertices=4000, num_supersteps=16,
              requests_per_client=150):
    """Run all phases; return (report dict, list of gate failures)."""
    fs = SimFileSystem()
    job_ids = [f"job-{i}" for i in range(num_jobs)]
    total_records = 0
    for i, job_id in enumerate(job_ids):
        total_records += _build_job(
            fs, job_id, num_vertices, num_supersteps,
            random.Random(SEED + 100 * i),
        )
    storage = {
        job_id: trace_stats(fs, job_id)["totals"] for job_id in job_ids
    }
    stored_bytes = sum(t["bytes"] for t in storage.values())
    raw_bytes = sum(
        round(t["bytes"] * t["compression_ratio"]) for t in storage.values()
    )

    failures = []
    server = create_server(fs).start()
    try:
        # Warmup: list the jobs (computes and pins every digest and the
        # stats documents) and touch one point query per job.
        _get(server.url + "/jobs")
        etags = {}
        for job_id in job_ids:
            status, headers, _body = _get(f"{server.url}/jobs/{job_id}")
            assert status == 200
            etags[job_id] = headers["ETag"]

        # Phase 1: correctness — served views == one-shot renderers, byte
        # for byte.
        render_checks = 0
        for job_id in job_ids:
            reader = server.pool.reader(job_id)
            for name, expected in (
                ("nodelink", NodeLinkView(reader, None).render()),
                ("tabular", TabularView(reader).render()),
                ("violations", ViolationsView(reader).render()),
            ):
                _status, _headers, body = _get(
                    f"{server.url}/jobs/{job_id}/views/{name}/render"
                )
                render_checks += 1
                if body != expected.encode("utf-8"):
                    failures.append(
                        f"{job_id}/views/{name}/render is not byte-identical "
                        "to the one-shot renderer"
                    )

        # Phase 2: throughput + latency under NUM_CLIENTS concurrent
        # mixed-workload clients.
        plans = _workload(
            job_ids, num_vertices, num_supersteps, requests_per_client
        )
        wall, latencies, errors = _run_clients(server.url, plans)
        failures.extend(errors[:5])
        num_requests = len(latencies)
        throughput = num_requests / wall if wall else float("inf")
        all_samples = [sample for _cls, sample in latencies]
        point_samples = [s for cls, s in latencies if cls == "point"]
        scan_samples = [s for cls, s in latencies if cls == "scan"]
        p50 = _percentile(all_samples, 0.50)
        p99 = _percentile(all_samples, 0.99)
        point_p99 = _percentile(point_samples, 0.99)
        scan_p99 = _percentile(scan_samples, 0.99)

        # Phase 3: point queries with no concurrent load — the storage
        # path itself, GIL contention excluded.
        solo_rng = random.Random(SEED + 1000)
        solo_samples = []
        for _ in range(200):
            job = job_ids[solo_rng.randrange(len(job_ids))]
            vertex = solo_rng.randrange(num_vertices)
            superstep = solo_rng.randrange(num_supersteps)
            started = time.perf_counter()
            status, _headers, body = _get(
                f"{server.url}/jobs/{job}/vertex/{vertex}"
                f"?superstep={superstep}"
            )
            solo_samples.append(time.perf_counter() - started)
            if status != 200:
                failures.append(
                    f"solo point query -> {status}: {body[:120]!r}"
                )
        solo_point_p99 = _percentile(solo_samples, 0.99)

        # Phase 4: the revalidation path. Every conditional GET must 304
        # without touching the filesystem at all.
        revalidations = 0
        reads_before = (fs.bytes_read, fs.read_calls)
        started = time.perf_counter()
        for round_ in range(20):
            for job_id in job_ids:
                status, _headers, _body = _get(
                    f"{server.url}/jobs/{job_id}/views/tabular",
                    headers={"If-None-Match": etags[job_id]},
                )
                revalidations += 1
                if status != 304:
                    failures.append(
                        f"revalidation of {job_id} answered {status}, not 304"
                    )
        revalidation_wall = time.perf_counter() - started
        reads_after = (fs.bytes_read, fs.read_calls)
        zero_read_304 = reads_before == reads_after
        if not zero_read_304:
            failures.append(
                f"304 path read the filesystem: bytes_read "
                f"{reads_before[0]} -> {reads_after[0]}, read_calls "
                f"{reads_before[1]} -> {reads_after[1]}"
            )

        if throughput < THROUGHPUT_FLOOR:
            failures.append(
                f"throughput {throughput:.1f} req/s under the "
                f"{THROUGHPUT_FLOOR} floor"
            )
        if point_p99 > POINT_P99_CEILING_SECONDS:
            failures.append(
                f"point-query p99 {point_p99:.3f}s over the "
                f"{POINT_P99_CEILING_SECONDS}s ceiling"
            )
        if solo_point_p99 > SOLO_POINT_P99_CEILING_SECONDS:
            failures.append(
                f"solo point-query p99 {solo_point_p99:.3f}s over the "
                f"{SOLO_POINT_P99_CEILING_SECONDS}s ceiling"
            )
        if scan_p99 > SCAN_P99_CEILING_SECONDS:
            failures.append(
                f"scan p99 {scan_p99:.3f}s over the "
                f"{SCAN_P99_CEILING_SECONDS}s ceiling"
            )

        cache_stats = server.pool.cache_stats()
    finally:
        server.shutdown()

    report = {
        "benchmark": "debug_server",
        "workload": {
            "num_jobs": num_jobs,
            "num_vertices": num_vertices,
            "num_supersteps": num_supersteps,
            "num_workers": NUM_WORKERS,
            "total_records": total_records,
            "stored_bytes": stored_bytes,
            "raw_payload_bytes": raw_bytes,
            "num_clients": NUM_CLIENTS,
            "requests_per_client": requests_per_client,
            "seed": SEED,
        },
        "concurrent": {
            "requests": num_requests,
            "wall_seconds": round(wall, 3),
            "requests_per_second": round(throughput, 1),
            "latency_seconds": {
                "p50": round(p50, 6),
                "p99": round(p99, 6),
                "max": round(max(all_samples), 6),
                "point": {
                    "requests": len(point_samples),
                    "p50": round(_percentile(point_samples, 0.50), 6),
                    "p99": round(point_p99, 6),
                },
                "scan": {
                    "requests": len(scan_samples),
                    "p50": round(_percentile(scan_samples, 0.50), 6),
                    "p99": round(scan_p99, 6),
                },
            },
        },
        "solo_point_queries": {
            "requests": len(solo_samples),
            "latency_seconds": {
                "p50": round(_percentile(solo_samples, 0.50), 6),
                "p99": round(solo_point_p99, 6),
                "max": round(max(solo_samples), 6),
            },
        },
        "revalidation": {
            "requests": revalidations,
            "wall_seconds": round(revalidation_wall, 3),
            "requests_per_second": round(
                revalidations / revalidation_wall, 1
            ) if revalidation_wall else None,
            "zero_filesystem_reads": zero_read_304,
        },
        "correctness": {
            "render_endpoints_checked": render_checks,
            "byte_identical": not any(
                "byte-identical" in failure for failure in failures
            ),
        },
        "shared_caches": cache_stats,
        "gates": {
            "throughput_floor_rps": THROUGHPUT_FLOOR,
            "point_p99_ceiling_seconds": POINT_P99_CEILING_SECONDS,
            "solo_point_p99_ceiling_seconds": SOLO_POINT_P99_CEILING_SECONDS,
            "scan_p99_ceiling_seconds": SCAN_P99_CEILING_SECONDS,
            "passed": not failures,
            "failures": failures,
        },
        "notes": (
            "Clients and server share one interpreter; throughput is a "
            "conservative lower bound. Point queries (vertex/history) and "
            "scans (views/profiles/summaries) are gated separately: a "
            "scan's tail is the first-touch materialization of a cold "
            "superstep, and the contended point ceiling is dominated by "
            "GIL queuing behind those scans — the solo phase re-measures "
            "the same queries without load to gate the storage path "
            "itself. The revalidation phase asserts the 304 path "
            "performs zero simfs reads once digests are warm. "
            "See docs/serve.md."
        ),
    }
    return report, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_serve.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="small jobs and fewer requests (CI smoke, noisier numbers)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        report, failures = run_bench(
            num_jobs=2, num_vertices=300, num_supersteps=6,
            requests_per_client=25,
        )
    else:
        report, failures = run_bench()

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"wrote {args.output}")
    workload = report["workload"]
    print(f"  jobs: {workload['num_jobs']} "
          f"({workload['total_records']:,} records, "
          f"{workload['stored_bytes']:,} bytes stored, "
          f"{workload['raw_payload_bytes']:,} bytes raw)")
    concurrent = report["concurrent"]
    latency = concurrent["latency_seconds"]
    print(f"  concurrent: {concurrent['requests']} requests from "
          f"{workload['num_clients']} clients -> "
          f"{concurrent['requests_per_second']} req/s, "
          f"point p99 {latency['point']['p99']}s, "
          f"scan p99 {latency['scan']['p99']}s")
    solo = report["solo_point_queries"]
    print(f"  solo point queries: {solo['requests']} requests -> "
          f"p50 {solo['latency_seconds']['p50']}s, "
          f"p99 {solo['latency_seconds']['p99']}s")
    revalidation = report["revalidation"]
    print(f"  revalidation: {revalidation['requests']} conditional GETs -> "
          f"{revalidation['requests_per_second']} req/s, zero reads: "
          f"{revalidation['zero_filesystem_reads']}")
    if failures:
        for failure in failures:
            print(f"  GATE FAILED: {failure}")
        return 1
    print("  all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
