"""Recovery-overhead benchmark: chaos runs vs. clean runs, one JSON.

Runs the chaos recovery-verification harness for a crash-heavy preset and
a clean control on the same workload, and writes ``BENCH_chaos.json`` with
the numbers CI gates on.

Gates (exit status 1 when violated):

- every measured chaos run must come back ``ok`` — recovery reproduced
  the fault-free vertex values, aggregator state, and canonical trace
  digest bit-identically, on every execution backend measured;
- the injected run (two rollbacks, several supersteps re-executed, a
  checkpoint written every other superstep) may cost at most
  ``OVERHEAD_CEILING``x the fault-free run of the same job. Rollback
  re-execution roughly doubles the superstep work on this plan, so the
  ceiling is about "recovery does not cost more than the work it redoes".

Usage::

    PYTHONPATH=src python scripts/bench_chaos.py [--output BENCH_chaos.json]
    PYTHONPATH=src python scripts/bench_chaos.py --quick   # smaller graph

Also runnable as an opt-in pytest (see tests/integration/test_bench_chaos.py).
"""

import argparse
import json
import sys

from repro.algorithms import PageRank
from repro.chaos import run_chaos
from repro.datasets import load_dataset
from repro.pregel import EXECUTOR_NAMES

#: The preset the overhead gate measures: two crashes -> two rollbacks.
PLAN = "worker-crash"

#: Injected run may cost at most this many times the fault-free run.
#: The worker-crash plan re-executes roughly half the supersteps twice and
#: adds a checkpoint write every other barrier, so ~2x is the honest cost
#: of the redone work; 3.5x leaves headroom for timer noise on small runs.
OVERHEAD_CEILING = 3.5

SEED = 11
ITERATIONS = 8
NUM_WORKERS = 4
ROUNDS = 2


def _measure(graph, executor, rounds=ROUNDS):
    """Best-of-N timings for one backend; returns (report dict, last run)."""
    best_base = best_injected = None
    last = None
    for _ in range(rounds):
        report = run_chaos(
            lambda: PageRank(iterations=ITERATIONS),
            graph,
            PLAN,
            seed=SEED,
            num_workers=NUM_WORKERS,
            executor=executor,
        )
        if not report.ok:
            return None, report
        base, injected = report.baseline_seconds, report.injected_seconds
        best_base = base if best_base is None else min(best_base, base)
        best_injected = (
            injected if best_injected is None else min(best_injected, injected)
        )
        last = report
    ratio = best_injected / best_base if best_base else float("inf")
    return {
        "baseline_seconds": round(best_base, 4),
        "injected_seconds": round(best_injected, 4),
        "overhead_ratio": round(ratio, 3),
        "rollbacks": last.rollbacks,
        "recovered_supersteps": last.recovered_supersteps,
        "faults_fired": last.faults_fired,
    }, last


def run_bench(num_vertices=1_000, rounds=ROUNDS):
    """Run all measurements; return (report dict, list of gate failures)."""
    graph = load_dataset("web-BS", num_vertices=num_vertices, seed=SEED)
    failures = []
    backends = {}
    for executor in EXECUTOR_NAMES:
        measured, last = _measure(graph, executor, rounds)
        if measured is None:
            failures.append(
                f"{executor}: chaos run failed recovery verification: "
                + "; ".join(last.failures)
            )
            continue
        backends[executor] = measured
        if measured["overhead_ratio"] > OVERHEAD_CEILING:
            failures.append(
                f"{executor}: injected run costs "
                f"{measured['overhead_ratio']}x the fault-free run; "
                f"ceiling is {OVERHEAD_CEILING}x"
            )

    report = {
        "benchmark": "chaos_recovery",
        "workload": {
            "algorithm": f"PageRank(iterations={ITERATIONS})",
            "dataset": "web-BS",
            "num_vertices": graph.num_vertices,
            "num_directed_edges": graph.num_edges,
            "num_workers": NUM_WORKERS,
            "seed": SEED,
            "plan": PLAN,
            "rounds": rounds,
        },
        "backends": backends,
        "gates": {
            "overhead_ceiling": OVERHEAD_CEILING,
            "passed": not failures,
            "failures": failures,
        },
        "notes": (
            "overhead_ratio compares the injected run (checkpointing on, "
            "two crashes, rollback + re-execution) against the fault-free "
            "run of the same debugged job; both timings come from the "
            "engine's own metrics, best-of-N. Every measured run also "
            "passed the bit-identical recovery checks. "
            "See docs/fault-tolerance.md."
        ),
    }
    return report, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_chaos.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller graph and fewer rounds (CI smoke, noisier numbers)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        report, failures = run_bench(num_vertices=500, rounds=2)
    else:
        report, failures = run_bench()

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(json.dumps(report, indent=2, sort_keys=True))
    if failures:
        print("\nGATE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
