"""Sanitizer-overhead benchmark: graft-san sweeps vs. plain runs, one JSON.

Runs the graft-san permutation sanitizer on a clean workload and a seeded
order-sensitive one, and writes ``BENCH_san.json`` with the numbers CI
gates on.

Gates (exit status 1 when violated):

- the clean workload must come back deterministic (byte-identical
  order-insensitive digests across every schedule) on every backend
  measured, and the buggy workload must diverge;
- a K-schedule sweep runs the job K+1 times and normalizes/digests each
  trace, so the honest cost is about ``schedules + 1`` times one run;
  the per-run overhead (sweep time over ``(K+1) x`` one baseline run)
  must stay under ``OVERHEAD_CEILING``.

Usage::

    PYTHONPATH=src python scripts/bench_san.py [--output BENCH_san.json]
    PYTHONPATH=src python scripts/bench_san.py --quick   # smaller graph

Also runnable as an opt-in pytest (see tests/integration/test_bench_san.py).
"""

import argparse
import json
import sys
import time

from repro.algorithms import BuggyLabelPropagation, LabelPropagation
from repro.datasets import load_dataset
from repro.graft import CaptureAllActiveConfig, debug_run
from repro.graft.sanitizer import run_sanitizer
from repro.graph import to_undirected
from repro.pregel import EXECUTOR_NAMES
from repro.simfs.filesystem import SimFileSystem

#: A K-schedule sweep executes the job K+1 times plus a digest
#: normalization pass per run (decode every canonical record, re-sort its
#: inbox, re-encode when the order moved). On small workloads the
#: normalization rivals the run itself — engine supersteps are cheap, the
#: per-record decode is not — so the honest per-run cost sits well above
#: 1x; 4.5x bounds it while leaving room for timer noise.
OVERHEAD_CEILING = 4.5

SEED = 11
ITERATIONS = 8
NUM_WORKERS = 4
SCHEDULES = 3
ROUNDS = 2


def _plain_run_seconds(graph, executor):
    """Wall time of one plain captured debug run (the unit of comparison)."""
    started = time.perf_counter()
    run = debug_run(
        lambda: LabelPropagation(iterations=ITERATIONS),
        graph,
        CaptureAllActiveConfig(),
        filesystem=SimFileSystem(),
        lint=False,
        seed=SEED,
        num_workers=NUM_WORKERS,
        executor=executor,
    )
    elapsed = time.perf_counter() - started
    assert run.ok, run.failure
    return elapsed


def _measure(graph, executor, rounds=ROUNDS):
    """Best-of-N sweep timings for one backend; (report dict, failures)."""
    failures = []
    best_sweep = best_plain = None
    last = None
    for _ in range(rounds):
        plain = _plain_run_seconds(graph, executor)
        best_plain = plain if best_plain is None else min(best_plain, plain)
        started = time.perf_counter()
        report = run_sanitizer(
            lambda: LabelPropagation(iterations=ITERATIONS),
            graph,
            schedules=SCHEDULES,
            seed=SEED,
            num_workers=NUM_WORKERS,
            executor=executor,
        )
        sweep_seconds = time.perf_counter() - started
        if not report.ok:
            failures.append(f"{executor}: sweep failed: {report.failures}")
            return None, failures
        if not report.deterministic:
            failures.append(
                f"{executor}: clean label propagation diverged: "
                + report.summary()
            )
            return None, failures
        best_sweep = (
            sweep_seconds if best_sweep is None
            else min(best_sweep, sweep_seconds)
        )
        last = report
    runs_per_sweep = SCHEDULES + 1
    per_run = best_sweep / runs_per_sweep
    ratio = per_run / best_plain if best_plain else float("inf")
    return {
        "plain_run_seconds": round(best_plain, 4),
        "sweep_seconds": round(best_sweep, 4),
        "runs_per_sweep": runs_per_sweep,
        "per_run_overhead_ratio": round(ratio, 3),
        "inboxes_permuted": last.inboxes_permuted,
        "schedules": list(last.schedules),
    }, failures


def run_bench(num_vertices=1_000, rounds=ROUNDS):
    """Run all measurements; return (report dict, list of gate failures)."""
    graph = to_undirected(
        load_dataset("web-BS", num_vertices=num_vertices, seed=SEED)
    )
    failures = []
    backends = {}
    for executor in EXECUTOR_NAMES:
        measured, measure_failures = _measure(graph, executor, rounds)
        failures.extend(measure_failures)
        if measured is None:
            continue
        backends[executor] = measured
        if measured["per_run_overhead_ratio"] > OVERHEAD_CEILING:
            failures.append(
                f"{executor}: each sanitizer run costs "
                f"{measured['per_run_overhead_ratio']}x a plain run; "
                f"ceiling is {OVERHEAD_CEILING}x"
            )

    # Sensitivity check: the seeded race must be caught (serial is enough;
    # the digest is backend-independent, as the integration suite pins).
    buggy = run_sanitizer(
        lambda: BuggyLabelPropagation(iterations=ITERATIONS),
        graph,
        schedules=SCHEDULES,
        seed=SEED,
        num_workers=NUM_WORKERS,
    )
    detected = buggy.ok and not buggy.deterministic
    if not detected:
        failures.append(
            "sanitizer missed the seeded order-sensitivity bug "
            f"(BuggyLabelPropagation): {buggy.summary()}"
        )

    report = {
        "benchmark": "graft_san",
        "workload": {
            "algorithm": f"LabelPropagation(iterations={ITERATIONS})",
            "buggy_algorithm": f"BuggyLabelPropagation(iterations={ITERATIONS})",
            "dataset": "web-BS (undirected)",
            "num_vertices": graph.num_vertices,
            "num_directed_edges": graph.num_edges,
            "num_workers": NUM_WORKERS,
            "seed": SEED,
            "schedules": SCHEDULES,
            "rounds": rounds,
        },
        "backends": backends,
        "sensitivity": {
            "detected": detected,
            "divergent_schedules": list(buggy.divergent_schedules),
            "first_divergence": (
                buggy.first_divergence.summary()
                if buggy.first_divergence is not None
                else None
            ),
        },
        "gates": {
            "overhead_ceiling": OVERHEAD_CEILING,
            "passed": not failures,
            "failures": failures,
        },
        "notes": (
            "per_run_overhead_ratio divides the whole sweep's wall time by "
            "(schedules + 1) runs and compares against a plain captured "
            "debug run of the same job timed the same way — it measures "
            "what the permutation hook, the lint pre-flight, and digest "
            "normalization add per run, best-of-N. The sensitivity block "
            "shows the sweep catching the seeded last-wins tie-break. "
            "See docs/determinism.md."
        ),
    }
    return report, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_san.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller graph and fewer rounds (CI smoke, noisier numbers)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        report, failures = run_bench(num_vertices=400, rounds=2)
    else:
        report, failures = run_bench()

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(json.dumps(report, indent=2, sort_keys=True))
    if failures:
        print("\nGATE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
