"""Out-of-core scale benchmark: debug PageRank on >=1M vertices, one JSON.

The claim of the partitioned vertex/message store (ISSUE 8): Graft can
*debug* — capture per-vertex contexts, with traces byte-identical to the
in-memory plane — a PageRank run on a graph at the paper's Table 1 scale
(bipartite-1M-3M: one million vertices, three million directed adjacency
slots) on one machine, while Python-heap usage stays under a fixed memory
ceiling far below the graph's in-memory footprint. This script runs that
workload end-to-end (streaming dataset -> partitioned spill store ->
partition-at-a-time supersteps -> merge-join message delivery) and writes
``BENCH_scale.json`` with the numbers CI gates on.

Gates (exit status 1 when violated):

- the debugged run must come back ok, execute every one of the >=1M
  vertices each superstep, route messages over the spill plane
  (``transport == "spill"``, run bytes > 0), and capture the requested
  vertex contexts;
- the per-superstep tracemalloc peak — Python-heap allocations, sampled
  at every barrier and covering the streaming load — must stay under
  ``MEMORY_CEILING_BYTES`` (512 MiB at full scale), a small fraction of
  the ~``estimated_graph_bytes`` (~840 MB) the dict plane would need
  before counting message inboxes;
- a demo-scale fidelity check must produce byte-identical canonical
  trace digests for ``store="spill"`` and ``store="memory"`` — scale
  must not buy any observable difference;
- wall clock under ``WALL_CEILING_SECONDS`` (generous; this is a
  does-it-finish gate, not a speed gate).

Usage::

    PYTHONPATH=src python scripts/bench_scale.py [--output BENCH_scale.json]
    PYTHONPATH=src python scripts/bench_scale.py --quick   # ~100K vertices

Also runnable as an opt-in pytest (see tests/integration/test_bench_scale.py).
"""

import argparse
import json
import sys
import time
import tracemalloc

from repro.algorithms import PageRank
from repro.datasets import make
from repro.graft import DebugConfig, debug_run
from repro.graft.trace import canonical_trace_digest
from repro.pregel.engine import estimated_graph_bytes

DATASET = "bipartite-1M-3M"
FULL_VERTICES = 1_000_000
QUICK_VERTICES = 100_000
ITERATIONS = 2
NUM_WORKERS = 4
NUM_PARTITIONS = 64
SEED = 11

#: Engine-side knobs: spill when the estimate exceeds this, and bound the
#: page cache to a quarter of it. Quick runs shrink the limit with the
#: graph so ``store="auto"`` still crosses into the spill plane.
MEMORY_LIMIT_BYTES = 256 * 1024 * 1024
QUICK_MEMORY_LIMIT_BYTES = 32 * 1024 * 1024

#: Gate: max per-superstep tracemalloc peak (Python-heap bytes, including
#: the streaming load) at full scale. The same graph fully in memory is
#: estimated at ~840 MB before any message inbox exists.
MEMORY_CEILING_BYTES = 512 * 1024 * 1024

#: Quick runs keep the same fixed costs (interpreter, page cache budget)
#: over a tenth of the vertices, so the ceiling shrinks less than 10x.
QUICK_MEMORY_CEILING_BYTES = 256 * 1024 * 1024

WALL_CEILING_SECONDS = 3600.0

#: Vertices whose contexts the debugger must capture (left side, right
#: side, and a mid-range id — all present at every scale).
CAPTURE_IDS = (0, 1, 17)


class _CaptureSome(DebugConfig):
    """Capture a fixed handful of vertices (no neighbor expansion: that
    costs a stream scan per capture id, which is not what this measures)."""

    def vertices_to_capture(self):
        return CAPTURE_IDS


def _fidelity_check():
    """Demo-scale digest parity: spill must equal memory byte-for-byte."""
    stream = make(DATASET, scale="full", num_vertices=2_000, seed=SEED)
    digests = {}
    for store, source in (("memory", stream.materialize()), ("spill", stream)):
        run = debug_run(
            lambda: PageRank(iterations=ITERATIONS),
            source,
            _CaptureSome(),
            job_id="fidelity",
            lint=False,
            seed=SEED,
            num_workers=NUM_WORKERS,
            store=store,
            num_partitions=NUM_PARTITIONS if store == "spill" else None,
        )
        if not run.ok:
            return None, f"fidelity {store} run failed: {run.failure}"
        digests[store] = canonical_trace_digest(
            run.session.filesystem, "fidelity"
        )
    if digests["spill"] != digests["memory"]:
        return digests, (
            "fidelity check: spill digest "
            f"{digests['spill'][:16]} != memory digest "
            f"{digests['memory'][:16]}"
        )
    return digests, None


def run_bench(num_vertices=FULL_VERTICES,
              memory_ceiling=MEMORY_CEILING_BYTES,
              memory_limit=MEMORY_LIMIT_BYTES):
    """Run the scale workload; return (report dict, list of gate failures)."""
    failures = []

    fidelity_digests, fidelity_failure = _fidelity_check()
    if fidelity_failure:
        failures.append(fidelity_failure)

    stream = make(DATASET, scale="full", num_vertices=num_vertices, seed=SEED)
    estimated = estimated_graph_bytes(stream)

    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    started = time.perf_counter()
    try:
        run = debug_run(
            lambda: PageRank(iterations=ITERATIONS),
            stream,
            _CaptureSome(),
            job_id="scale",
            lint=False,
            seed=SEED,
            num_workers=NUM_WORKERS,
            store="auto",
            memory_limit=memory_limit,
            num_partitions=NUM_PARTITIONS,
        )
        wall_seconds = time.perf_counter() - started
    finally:
        if not was_tracing:
            tracemalloc.stop()

    if not run.ok:
        failures.append(f"scale run failed: {run.failure}")
        report = {"benchmark": "out_of_core_scale", "gates": {
            "passed": False, "failures": failures}}
        return report, failures

    metrics = run.result.metrics
    stats = run.superstep_stats()
    peak_memory = metrics.peak_memory_bytes

    if stream.num_vertices < num_vertices:
        failures.append(
            f"dataset produced {stream.num_vertices} vertices; "
            f"expected >= {num_vertices}"
        )
    low = min((s.compute_calls for s in stats[:-1]), default=0)
    if low < stream.num_vertices:
        failures.append(
            f"a superstep computed only {low} of {stream.num_vertices} "
            "vertices"
        )
    if any(s.transport != "spill" for s in stats):
        failures.append("a superstep did not run on the spill plane")
    if metrics.total_store_bytes_loaded <= 0:
        failures.append("no bytes moved through the partitioned store")
    if run.capture_count < len(CAPTURE_IDS) * (ITERATIONS + 1):
        failures.append(
            f"only {run.capture_count} contexts captured for "
            f"{len(CAPTURE_IDS)} vertices x {ITERATIONS + 1} supersteps"
        )
    if peak_memory > memory_ceiling:
        failures.append(
            f"peak Python-heap memory {peak_memory} bytes exceeds the "
            f"{memory_ceiling}-byte ceiling"
        )
    if wall_seconds > WALL_CEILING_SECONDS:
        failures.append(
            f"wall clock {wall_seconds:.1f}s exceeds "
            f"{WALL_CEILING_SECONDS:.0f}s"
        )

    report = {
        "benchmark": "out_of_core_scale",
        "workload": {
            "algorithm": f"PageRank(iterations={ITERATIONS})",
            "dataset": DATASET,
            "num_vertices": stream.num_vertices,
            "num_directed_edges": stream.num_edges,
            "num_workers": NUM_WORKERS,
            "num_partitions": NUM_PARTITIONS,
            "memory_limit_bytes": memory_limit,
            "seed": SEED,
            "captured_vertices": list(CAPTURE_IDS),
        },
        "measured": {
            "wall_seconds": round(wall_seconds, 2),
            "supersteps": run.result.num_supersteps,
            "compute_calls": metrics.total_compute_calls,
            "messages": metrics.total_messages,
            "captures": run.capture_count,
            "trace_bytes": run.trace_bytes,
            "peak_memory_bytes": peak_memory,
            "estimated_in_memory_bytes": estimated,
            "memory_vs_estimate": round(peak_memory / estimated, 3)
            if estimated else None,
            "store_bytes_spilled": metrics.total_store_bytes_spilled,
            "store_bytes_loaded": metrics.total_store_bytes_loaded,
            "page_cache_hit_rate": metrics.page_cache_hit_rate,
            "per_superstep": [
                {
                    "superstep": s.superstep,
                    "compute_calls": s.compute_calls,
                    "messages": s.messages_sent,
                    "peak_memory_bytes": s.peak_memory_bytes,
                    "store_bytes_spilled": s.store_bytes_spilled,
                    "store_bytes_loaded": s.store_bytes_loaded,
                    "partitions_resident": s.partitions_resident,
                }
                for s in stats
            ],
        },
        "fidelity": {
            "digests": fidelity_digests,
            "matched": fidelity_failure is None,
        },
        "gates": {
            "memory_ceiling_bytes": memory_ceiling,
            "wall_ceiling_seconds": WALL_CEILING_SECONDS,
            "passed": not failures,
            "failures": failures,
        },
        "notes": (
            "peak_memory_bytes is the largest per-superstep tracemalloc "
            "peak (Python-heap allocations; the streaming load is included "
            "in superstep 0's sample). estimated_in_memory_bytes is what "
            "the dict plane would need for vertex state alone. The "
            "fidelity digests prove the spilled run's traces are "
            "byte-identical to the in-memory plane at demo scale. "
            "See docs/scale.md."
        ),
    }
    return report, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_scale.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="~100K vertices instead of 1M (CI smoke; same code path)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        report, failures = run_bench(
            num_vertices=QUICK_VERTICES,
            memory_ceiling=QUICK_MEMORY_CEILING_BYTES,
            memory_limit=QUICK_MEMORY_LIMIT_BYTES,
        )
    else:
        report, failures = run_bench()

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(json.dumps(report, indent=2, sort_keys=True))
    if failures:
        print("\nGATE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
