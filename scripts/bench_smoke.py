"""Performance smoke test: engine throughput + Graft overhead, one JSON.

Runs the engine-throughput benchmark (PageRank on the web-BS stand-in,
>=100k directed edges) under every execution backend, plus a small
Figure-7-style overhead measurement (plain run vs. capture-all debug run),
and writes ``BENCH_engine.json`` with the numbers CI gates on.

Gates (exit status 1 when violated):

- ``threads`` at 4 workers must not be slower than ``serial`` beyond the
  GIL tolerance (pure-Python compute cannot parallelize on CPython, so
  the parallel backend is required to be *free*, not faster — see
  docs/performance.md);
- the best backend must clear 2x the recorded seed-revision baseline
  (29,412 compute calls/s on this workload), demonstrating the batched
  message-routing and capture fast paths;
- ``processes`` gets its own hardware-aware floor (it no longer hides
  behind ``best_backend``): with >= 4 usable cores it must beat serial
  2x outright; on smaller machines — where multi-process parallelism is
  physically unavailable — the columnar shared-memory transport must
  still beat the old per-envelope pickling transport by 1.25x on the
  same workload (see docs/columnar.md).

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--output BENCH_engine.json]
    PYTHONPATH=src python scripts/bench_smoke.py --quick   # smaller graph

Also runnable as an opt-in pytest (see tests/integration/test_bench_smoke.py).
"""

import argparse
import json
import os
import sys
import time

from repro.algorithms import PageRank
from repro.datasets import load_dataset
from repro.graft import debug_run
from repro.graft.config import standard_configs
from repro.pregel import EXECUTOR_NAMES, PregelEngine

#: Engine throughput measured at the seed revision (single-backend serial
#: engine, PageRank x5 on web-BS @ 20k vertices / 218,027 directed edges).
SEED_BASELINE_CALLS_PER_SECOND = 29_412

#: Required speedup of the best backend over the seed baseline.
SPEEDUP_FLOOR = 2.0

#: threads@4 may not fall below this fraction of serial throughput.
#: CPython's GIL serializes pure-Python compute, so thread workers buy no
#: CPU parallelism on this workload; the gate asserts the backend's
#: scheduling machinery costs (almost) nothing rather than a speedup.
PARALLEL_TOLERANCE = 0.90

#: processes must beat serial by this factor when real cores are available.
PROCESSES_SPEEDUP_FLOOR = 2.0

#: Minimum usable cores for the outright processes-vs-serial gate; below
#: this the machine cannot parallelize and the gate falls back to
#: columnar-vs-envelope transport efficiency.
PROCESSES_GATE_MIN_CORES = 4

#: On core-starved machines the columnar shared-memory transport must
#: still beat the legacy per-envelope pickling transport by this factor.
COLUMNAR_VS_ENVELOPE_FLOOR = 1.25

SEED = 3
ITERATIONS = 5
NUM_WORKERS = 4
ROUNDS = 3


def _usable_cores():
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _throughput(graph, executor, rounds=ROUNDS, columnar=None):
    """Best-of-N compute-calls-per-second for one backend.

    Returns ``(calls_per_second, run_metrics)``; the metrics come from the
    last round (counters are deterministic, only timings vary).
    """
    best = 0.0
    metrics = None
    for _ in range(rounds):
        engine = PregelEngine(
            lambda: PageRank(iterations=ITERATIONS),
            graph,
            seed=SEED,
            num_workers=NUM_WORKERS,
            executor=executor,
            columnar=columnar,
        )
        started = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - started
        best = max(best, result.metrics.total_compute_calls / elapsed)
        metrics = result.metrics
    return best, metrics


def _overhead_percent(graph, rounds=ROUNDS):
    """Figure-7-style overhead: DC-full debug run vs. plain run.

    DC-full (specified vertices + message/value constraints) is the most
    expensive Table 3 configuration the Figure 7 grid gates on; mid-rank
    vertex ids avoid the Zipf hubs, as in benchmarks/bench_fig7_overhead.
    """
    all_ids = list(graph.vertex_ids())
    start = len(all_ids) // 4
    ids = all_ids[start:start + 10]

    def plain():
        return PregelEngine(
            lambda: PageRank(iterations=ITERATIONS),
            graph,
            seed=SEED,
            num_workers=NUM_WORKERS,
        ).run()

    def debugged():
        return debug_run(
            lambda: PageRank(iterations=ITERATIONS),
            graph,
            standard_configs(ids)["DC-full"],
            seed=SEED,
            num_workers=NUM_WORKERS,
            lint=False,
        )

    def best_seconds(runner):
        best = None
        for _ in range(rounds):
            started = time.perf_counter()
            outcome = runner()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best, outcome

    plain_seconds, _ = best_seconds(plain)
    debug_seconds, run = best_seconds(debugged)
    assert run.ok, run.failure
    return {
        "config": "DC-full",
        "plain_seconds": round(plain_seconds, 4),
        "debug_seconds": round(debug_seconds, 4),
        "overhead_percent": round(
            (debug_seconds / plain_seconds - 1.0) * 100.0, 1
        ),
        "captures": run.capture_count,
    }


def run_smoke(num_vertices=20_000, overhead_vertices=2_000, rounds=ROUNDS):
    """Run all measurements; return (report dict, list of gate failures)."""
    graph = load_dataset("web-BS", num_vertices=num_vertices, seed=SEED)
    backends = {}
    backend_metrics = {}
    for executor in EXECUTOR_NAMES:
        cps, metrics = _throughput(graph, executor, rounds)
        backends[executor] = round(cps, 0)
        backend_metrics[executor] = metrics
    # The legacy per-envelope pickling transport, for the single-core
    # fallback gate and for the record.
    processes_envelope, _ = _throughput(
        graph, "processes", rounds, columnar=False
    )
    processes_envelope = round(processes_envelope, 0)
    small_graph = load_dataset(
        "web-BS", num_vertices=overhead_vertices, seed=SEED
    )
    overhead = _overhead_percent(small_graph, rounds)

    serial = backends["serial"]
    threads = backends["threads"]
    processes = backends["processes"]
    best_backend = max(backends, key=backends.get)
    speedup = backends[best_backend] / SEED_BASELINE_CALLS_PER_SECOND
    usable_cores = _usable_cores()
    columnar_vs_envelope = (
        processes / processes_envelope if processes_envelope else None
    )

    failures = []
    if threads < serial * PARALLEL_TOLERANCE:
        failures.append(
            f"threads@{NUM_WORKERS} ({threads:,.0f} calls/s) slower than "
            f"serial ({serial:,.0f}) beyond tolerance {PARALLEL_TOLERANCE}"
        )
    if speedup < SPEEDUP_FLOOR:
        failures.append(
            f"best backend {best_backend} is only {speedup:.2f}x the seed "
            f"baseline ({SEED_BASELINE_CALLS_PER_SECOND:,} calls/s); "
            f"floor is {SPEEDUP_FLOOR}x"
        )
    if usable_cores >= PROCESSES_GATE_MIN_CORES:
        if processes < serial * PROCESSES_SPEEDUP_FLOOR:
            failures.append(
                f"processes@{NUM_WORKERS} ({processes:,.0f} calls/s) is only "
                f"{processes / serial:.2f}x serial ({serial:,.0f}) on "
                f"{usable_cores} cores; floor is {PROCESSES_SPEEDUP_FLOOR}x"
            )
    elif columnar_vs_envelope is not None and (
        columnar_vs_envelope < COLUMNAR_VS_ENVELOPE_FLOOR
    ):
        failures.append(
            f"columnar processes transport ({processes:,.0f} calls/s) is "
            f"only {columnar_vs_envelope:.2f}x the envelope transport "
            f"({processes_envelope:,.0f}) on a {usable_cores}-core machine; "
            f"floor is {COLUMNAR_VS_ENVELOPE_FLOOR}x"
        )

    proc_metrics = backend_metrics["processes"]
    transport = {
        "mode": proc_metrics.supersteps[0].transport
        if proc_metrics.supersteps else "columnar",
        "shm_frame_bytes": proc_metrics.total_transport_bytes,
        "packed_batches": proc_metrics.total_transport_batches,
        "pickle_fallbacks": proc_metrics.total_pickle_fallbacks,
        "messages": proc_metrics.total_messages,
    }

    report = {
        "benchmark": "engine_smoke",
        "workload": {
            "algorithm": f"PageRank(iterations={ITERATIONS})",
            "dataset": "web-BS",
            "num_vertices": graph.num_vertices,
            "num_directed_edges": graph.num_edges,
            "num_workers": NUM_WORKERS,
            "seed": SEED,
            "rounds": rounds,
        },
        "throughput_calls_per_second": backends,
        "seed_baseline_calls_per_second": SEED_BASELINE_CALLS_PER_SECOND,
        "best_backend": best_backend,
        "speedup_vs_seed_baseline": round(speedup, 2),
        "threads_vs_serial": round(threads / serial, 3) if serial else None,
        "processes_vs_serial": round(processes / serial, 3) if serial else None,
        "processes_envelope_calls_per_second": processes_envelope,
        "columnar_vs_envelope_transport": (
            round(columnar_vs_envelope, 3)
            if columnar_vs_envelope is not None else None
        ),
        "usable_cores": usable_cores,
        "transport": transport,
        "overhead": overhead,
        "gates": {
            "parallel_tolerance": PARALLEL_TOLERANCE,
            "speedup_floor_vs_seed": SPEEDUP_FLOOR,
            "processes_vs_serial_floor": PROCESSES_SPEEDUP_FLOOR,
            "processes_gate_min_cores": PROCESSES_GATE_MIN_CORES,
            "columnar_vs_envelope_floor": COLUMNAR_VS_ENVELOPE_FLOOR,
            "passed": not failures,
            "failures": failures,
        },
        "notes": (
            "threads/processes cannot out-run serial on pure-Python compute "
            "under the GIL on a single core; the speedup over the seed "
            "baseline comes from batched message routing, shared broadcast "
            "envelopes, and the capture/serialization fast paths. The "
            "processes gate is hardware-aware: on >= 4 usable cores it "
            "demands an outright 2x win over serial; on core-starved "
            "machines it gates the columnar shared-memory transport "
            "against the legacy per-envelope pickling transport instead. "
            "See docs/performance.md and docs/columnar.md."
        ),
    }
    return report, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller graph and fewer rounds (CI smoke, noisier numbers)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        report, failures = run_smoke(
            num_vertices=5_000, overhead_vertices=1_000, rounds=2
        )
    else:
        report, failures = run_smoke()

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"wrote {args.output}")
    for executor, cps in report["throughput_calls_per_second"].items():
        print(f"  {executor:>10}: {cps:>12,.0f} calls/s")
    print(
        f"  processes(envelope): "
        f"{report['processes_envelope_calls_per_second']:>12,.0f} calls/s "
        f"(columnar transport {report['columnar_vs_envelope_transport']}x, "
        f"{report['usable_cores']} usable core(s))"
    )
    print(
        f"  best={report['best_backend']} "
        f"({report['speedup_vs_seed_baseline']}x seed baseline), "
        f"overhead {report['overhead']['overhead_percent']}% "
        f"({report['overhead']['captures']} captures)"
    )
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("  all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
