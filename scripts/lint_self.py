#!/usr/bin/env python
"""Run graft-lint over everything this repository ships.

Lints every ``Computation`` subclass exported by :mod:`repro.algorithms`
(the clean repertoire must be finding-free; the paper-scenario ``*-buggy``
variants are expected to be flagged) and every file under ``examples/``
(from source, without importing them — they run jobs on import).

Usage::

    PYTHONPATH=src python scripts/lint_self.py [--format text|json]

Exit status: 0 when the clean algorithms and examples are clean and every
buggy variant is flagged; 1 otherwise.
"""

import argparse
import glob
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import repro.algorithms as algorithms                      # noqa: E402
from repro.analysis import analyze_computation, analyze_path  # noqa: E402
from repro.pregel import Computation                       # noqa: E402

#: The planted paper-scenario bugs and the rule that must catch each.
EXPECTED_BUGGY = {
    "BuggyRandomWalk": "GL007",
    "BuggyGraphColoring": "GL008",
    "BuggyLabelPropagation": "GL016",
    "BuggyPhasedShortestPaths": "GL022",
    "BuggyPhaseGapBroadcast": "GL023",
}


def shipped_computations():
    for name in sorted(dir(algorithms)):
        obj = getattr(algorithms, name)
        if (
            isinstance(obj, type)
            and issubclass(obj, Computation)
            and obj is not Computation
        ):
            yield obj


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)

    reports = []
    failures = []

    for cls in shipped_computations():
        report = analyze_computation(cls)
        reports.append(report)
        expected = EXPECTED_BUGGY.get(cls.__name__)
        if expected is not None:
            if expected not in report.rule_ids():
                failures.append(
                    f"{cls.__name__}: expected {expected} to flag the "
                    f"planted bug, got {report.rule_ids() or 'nothing'}"
                )
        elif not report.ok:
            failures.append(f"{cls.__name__}: unexpected findings")

    for path in sorted(glob.glob(os.path.join(REPO_ROOT, "examples", "*.py"))):
        for report in analyze_path(path):
            reports.append(report)
            if report.has_errors:
                failures.append(f"{path}: error-severity findings")

    if args.format == "json":
        print(json.dumps([r.to_dict() for r in reports], indent=2, default=repr))
    else:
        for report in reports:
            print(report.render_text())
        print()
        clean = sum(1 for r in reports if r.ok)
        print(f"{len(reports)} class(es) linted, {clean} clean")

    if failures:
        print()
        for failure in failures:
            print(f"SELF-CHECK FAILED: {failure}", file=sys.stderr)
        return 1
    print("self-check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
