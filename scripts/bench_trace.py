"""Trace-store benchmark: lazy indexed reads vs. eager decoding, one JSON.

Builds a synthetic capture trace (PageRank-shaped records, >=50k vertex
records across several worker files, flushed at superstep barriers exactly
like a real run) in both storage formats, then measures what the indexed
v2 format buys:

- **cold open** — constructing a reader. Eager decodes every record;
  lazy parses only the sidecar block directory.
- **cold point query** — fresh reader + one ``get(vertex, superstep)``.
  The "jump straight to the suspicious vertex" move from the paper's GUI:
  lazy does one index lookup, one ranged read, one record decode.
- **warm queries** — repeated gets/history/at_superstep on a live reader.
- **storage** — v2 bytes vs. v1 bytes, sidecar overhead, zlib ratio.

Gates (exit status 1 when violated):

- lazy cold open must be >= 5x faster than eager on the same trace;
- lazy cold point query must be >= 20x faster than eager cold (open+get);
- ``canonical_trace_digest`` must be identical for the v1 and v2
  encodings of the same records;
- lazy and eager readers must return equivalent answers over a query
  sample (get / history / at_superstep / violations / exceptions).

Usage::

    PYTHONPATH=src python scripts/bench_trace.py [--output BENCH_trace.json]
    PYTHONPATH=src python scripts/bench_trace.py --quick   # smaller trace

Also runnable as an opt-in pytest (see tests/integration/test_bench_trace.py).
"""

import argparse
import json
import random
import time

from repro.graft.capture import (
    ExceptionRecord,
    MasterContextRecord,
    VertexContextRecord,
    Violation,
)
from repro.graft.trace import (
    TraceReader,
    TraceStore,
    canonical_trace_digest,
    trace_stats,
)
from repro.simfs import SimFileSystem

#: Required speedup of lazy over eager reader construction (cold open).
OPEN_SPEEDUP_FLOOR = 5.0

#: Required speedup of a lazy cold point query over an eager one.
POINT_QUERY_SPEEDUP_FLOOR = 20.0

SEED = 11
NUM_WORKERS = 4
ROUNDS = 3
JOB = "bench"


def _build_trace(fs, fmt, num_vertices, num_supersteps, rng):
    """Write a synthetic all-active capture trace, flushed per superstep."""
    store = TraceStore(fs, JOB, NUM_WORKERS, format=fmt)
    for superstep in range(num_supersteps):
        records = []
        for vertex_id in range(num_vertices):
            incoming = [
                (rng.randrange(num_vertices), rng.random())
                for _ in range(rng.randrange(4))
            ]
            violations = []
            if vertex_id % 997 == 0 and superstep % 5 == 0:
                violations = [Violation(
                    "message", vertex_id, superstep, {"value": -1.0}
                )]
            exception = None
            if vertex_id % 4999 == 0 and superstep == num_supersteps - 1:
                exception = ExceptionRecord("ValueError", "overflow", "trace")
            records.append(VertexContextRecord(
                vertex_id=vertex_id,
                superstep=superstep,
                worker_id=vertex_id % NUM_WORKERS,
                value_before=rng.random(),
                edges_before={(vertex_id + k) % num_vertices: 1.0
                              for k in (1, 2, 3)},
                incoming=incoming,
                aggregators={"dangling": rng.random()},
                num_vertices=num_vertices,
                num_edges=num_vertices * 3,
                run_seed=SEED,
                value_after=rng.random(),
                edges_after={(vertex_id + k) % num_vertices: 1.0
                             for k in (1, 2, 3)},
                sent=[((vertex_id + 1) % num_vertices, rng.random())],
                halted=superstep == num_supersteps - 1,
                reasons=["all_active"],
                violations=violations,
                exception=exception,
            ))
        store.write_vertex_records(records)
        store.write_master_record(MasterContextRecord(
            superstep=superstep, aggregators={"dangling": 0.15},
            aggregators_before={"dangling": 0.0},
        ))
        store.flush()
    store.close()
    return store.records_written


def _best_seconds(fn, rounds=ROUNDS):
    best = None
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _check_equivalence(fs, num_vertices, num_supersteps, rng):
    """Lazy and eager readers must answer a query sample identically."""
    lazy = TraceReader(fs, JOB, mode="lazy")
    eager = TraceReader(fs, JOB, mode="eager")
    problems = []
    if len(lazy) != len(eager):
        problems.append(f"len: lazy={len(lazy)} eager={len(eager)}")
    if lazy.supersteps() != eager.supersteps():
        problems.append("supersteps() differ")
    for _ in range(50):
        vid = rng.randrange(num_vertices)
        step = rng.randrange(num_supersteps)
        a, b = lazy.get(vid, step), eager.get(vid, step)
        if (a.value_before, a.value_after, a.sent, a.incoming) != (
                b.value_before, b.value_after, b.sent, b.incoming):
            problems.append(f"get({vid}, {step}) differs")
    vid = rng.randrange(num_vertices)
    if [r.superstep for r in lazy.history(vid)] != [
            r.superstep for r in eager.history(vid)]:
        problems.append(f"history({vid}) differs")
    step = rng.randrange(num_supersteps)
    if [r.vertex_id for r in lazy.at_superstep(step)] != [
            r.vertex_id for r in eager.at_superstep(step)]:
        problems.append(f"at_superstep({step}) differs")
    if [(v.vertex_id, v.superstep) for v in lazy.violations()] != [
            (v.vertex_id, v.superstep) for v in eager.violations()]:
        problems.append("violations() differ")
    if [(r.key, e.type_name) for r, e in lazy.exceptions()] != [
            (r.key, e.type_name) for r, e in eager.exceptions()]:
        problems.append("exceptions() differ")
    return problems


def run_bench(num_vertices=2_500, num_supersteps=20, rounds=ROUNDS):
    """Run all measurements; return (report dict, list of gate failures)."""
    rng = random.Random(SEED)
    fs_v2 = SimFileSystem()
    records = _build_trace(fs_v2, "v2", num_vertices, num_supersteps,
                           random.Random(SEED))
    fs_v1 = SimFileSystem()
    _build_trace(fs_v1, "v1", num_vertices, num_supersteps,
                 random.Random(SEED))

    eager_open, eager_reader = _best_seconds(
        lambda: TraceReader(fs_v2, JOB, mode="eager"), rounds
    )
    lazy_open, _ = _best_seconds(
        lambda: TraceReader(fs_v2, JOB, mode="lazy"), rounds
    )

    probe_vid = num_vertices // 2
    probe_step = num_supersteps // 2

    def eager_point():
        return TraceReader(fs_v2, JOB, mode="eager").get(probe_vid, probe_step)

    def lazy_point():
        return TraceReader(fs_v2, JOB, mode="lazy").get(probe_vid, probe_step)

    eager_point_s, _ = _best_seconds(eager_point, rounds)
    lazy_point_s, _ = _best_seconds(lazy_point, rounds)

    warm = TraceReader(fs_v2, JOB, mode="lazy")
    query_rng = random.Random(SEED + 1)
    probes = [
        (query_rng.randrange(num_vertices), query_rng.randrange(num_supersteps))
        for _ in range(200)
    ]

    def warm_gets():
        for vid, step in probes:
            warm.get(vid, step)

    warm_get_s, _ = _best_seconds(warm_gets, rounds)
    history_s, _ = _best_seconds(lambda: warm.history(probe_vid), rounds)
    at_step_s, _ = _best_seconds(lambda: warm.at_superstep(probe_step), rounds)

    digest_v2 = canonical_trace_digest(fs_v2, JOB)
    digest_v1 = canonical_trace_digest(fs_v1, JOB)
    equivalence_problems = _check_equivalence(
        fs_v2, num_vertices, num_supersteps, rng
    )

    stats = trace_stats(fs_v2, JOB)
    v1_bytes = sum(f["bytes"] for f in trace_stats(fs_v1, JOB)["files"])

    open_speedup = eager_open / lazy_open if lazy_open else float("inf")
    point_speedup = (
        eager_point_s / lazy_point_s if lazy_point_s else float("inf")
    )

    failures = []
    if open_speedup < OPEN_SPEEDUP_FLOOR:
        failures.append(
            f"lazy cold open only {open_speedup:.1f}x faster than eager; "
            f"floor is {OPEN_SPEEDUP_FLOOR}x"
        )
    if point_speedup < POINT_QUERY_SPEEDUP_FLOOR:
        failures.append(
            f"lazy cold point query only {point_speedup:.1f}x faster than "
            f"eager; floor is {POINT_QUERY_SPEEDUP_FLOOR}x"
        )
    if digest_v1 != digest_v2:
        failures.append(
            f"canonical digest differs across encodings: "
            f"v1={digest_v1[:16]}... v2={digest_v2[:16]}..."
        )
    failures.extend(equivalence_problems)

    report = {
        "benchmark": "trace_store",
        "workload": {
            "vertex_records": records - num_supersteps,
            "total_records": records,
            "num_vertices": num_vertices,
            "num_supersteps": num_supersteps,
            "num_workers": NUM_WORKERS,
            "seed": SEED,
            "rounds": rounds,
        },
        "cold_open_seconds": {
            "eager": round(eager_open, 6),
            "lazy": round(lazy_open, 6),
            "speedup": round(open_speedup, 1),
        },
        "cold_point_query_seconds": {
            "eager": round(eager_point_s, 6),
            "lazy": round(lazy_point_s, 6),
            "speedup": round(point_speedup, 1),
        },
        "warm_query_seconds": {
            "get_x200": round(warm_get_s, 6),
            "history": round(history_s, 6),
            "at_superstep": round(at_step_s, 6),
        },
        "storage": {
            "v2_bytes": stats["totals"]["bytes"],
            "v2_index_bytes": stats["totals"]["index_bytes"],
            "v1_bytes": v1_bytes,
            "v2_vs_v1": round(stats["totals"]["bytes"] / v1_bytes, 3),
            "compression_ratio": stats["totals"]["compression_ratio"],
            "index_coverage": stats["totals"]["index_coverage"],
        },
        "canonical_digest": {
            "v1": digest_v1,
            "v2": digest_v2,
            "identical": digest_v1 == digest_v2,
        },
        "gates": {
            "open_speedup_floor": OPEN_SPEEDUP_FLOOR,
            "point_query_speedup_floor": POINT_QUERY_SPEEDUP_FLOOR,
            "passed": not failures,
            "failures": failures,
        },
        "notes": (
            "Eager cold numbers decode the full trace; lazy opens parse "
            "only the index sidecars and each point query does one index "
            "lookup, one ranged read, and one record decode. "
            "See docs/trace-format.md."
        ),
    }
    return report, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_trace.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller trace and fewer rounds (CI smoke, noisier numbers)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        report, failures = run_bench(
            num_vertices=500, num_supersteps=10, rounds=2
        )
    else:
        report, failures = run_bench()

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"wrote {args.output}")
    print(f"  records: {report['workload']['total_records']:,} "
          f"({report['storage']['v2_bytes']:,} bytes v2, "
          f"{report['storage']['v1_bytes']:,} bytes v1)")
    print(f"  cold open: lazy {report['cold_open_seconds']['lazy']}s vs "
          f"eager {report['cold_open_seconds']['eager']}s "
          f"({report['cold_open_seconds']['speedup']}x)")
    print(f"  cold point query: lazy "
          f"{report['cold_point_query_seconds']['lazy']}s vs eager "
          f"{report['cold_point_query_seconds']['eager']}s "
          f"({report['cold_point_query_seconds']['speedup']}x)")
    print(f"  digests identical across v1/v2: "
          f"{report['canonical_digest']['identical']}")
    if failures:
        for failure in failures:
            print(f"  GATE FAILED: {failure}")
        return 1
    print("  all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
