"""Lint performance benchmark: full-corpus dataflow lint, one JSON.

Times a cold ``graft-lint`` pass (pattern rules GL001-GL008 plus the
CFG/interval dataflow pack GL009-GL015) over the whole shipped corpus —
every algorithm class, every example script, the combiner library, and a
synthetic branch-heavy computation that stresses the interval solver —
and writes ``BENCH_lint.json`` with the numbers CI gates on.

Gates (exit status 1 when violated):

- the best cold full-corpus pass must finish under ``GATE_SECONDS``
  (2.0 s) — the dataflow pack must stay cheap enough to run as the
  default pre-flight check inside ``debug_run``;
- a warm repeat over the live classes must be at least
  ``WARM_SPEEDUP_FLOOR`` x faster than cold, demonstrating that the
  source-hashed LRU report cache actually serves hits.

Usage::

    PYTHONPATH=src python scripts/bench_lint.py [--output BENCH_lint.json]
    PYTHONPATH=src python scripts/bench_lint.py --quick   # fewer rounds

Also runnable as an opt-in pytest (see tests/integration/test_bench_lint.py).
"""

import argparse
import glob
import json
import os
import sys
import time

from repro.analysis import analyze_computation, analyze_module_source, analyze_path
from repro.analysis import engine as _engine
from repro.pregel.computation import Computation

#: Wall-clock ceiling for one cold full-corpus dataflow lint pass.
GATE_SECONDS = 2.0

#: Warm (cache-served) repeat must beat cold by at least this factor.
#: Hits still pay the key derivation (``inspect.getsource`` + sha1 over
#: the MRO), so the cache saves the analysis, not the lookup.
WARM_SPEEDUP_FLOOR = 1.5

ROUNDS = 3

_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir)
)

#: Branch count of the synthetic stress computation. Each branch adds an
#: if/elif arm comparing ``ctx.superstep``, a loop, and a fixed-width
#: construction — the shapes the dataflow pack spends its time on.
SYNTHETIC_BRANCHES = 40


def _algorithm_classes():
    import repro.algorithms as algorithms

    return sorted(
        {
            obj
            for obj in vars(algorithms).values()
            if isinstance(obj, type)
            and issubclass(obj, Computation)
            and obj is not Computation
        },
        key=lambda cls: cls.__name__,
    )


def _example_paths():
    return sorted(glob.glob(os.path.join(_REPO_ROOT, "examples", "*.py")))


def _synthetic_source(branches=SYNTHETIC_BRANCHES):
    """A wide, branch-heavy computation that stresses CFG + intervals."""
    lines = [
        "from repro.pregel import Computation",
        "from repro.pregel.value_types import Int32",
        "",
        "class SyntheticWide(Computation):",
        "    def compute(self, ctx, messages):",
        "        total = 0",
        "        for m in messages:",
        "            total = total + m",
    ]
    for i in range(branches):
        keyword = "if" if i == 0 else "elif"
        lines.extend(
            [
                f"        {keyword} ctx.superstep == {i}:",
                f"            acc_{i} = Int32(total + {i})",
                f"            for n in range({i} + 1):",
                f"                acc_{i} = acc_{i} + n",
                "            ctx.send_message_to_all_neighbors("
                f"acc_{i})",
            ]
        )
    lines.extend(
        [
            "        else:",
            "            ctx.vote_to_halt()",
            "",
        ]
    )
    return "\n".join(lines)


def _lint_corpus(synthetic, classes, paths, dataflow=True):
    """One full pass; returns the total finding count (sanity signal)."""
    findings = 0
    for cls in classes:
        findings += len(
            analyze_computation(cls, dataflow=dataflow).findings
        )
    for path in paths:
        for report in analyze_path(path, dataflow=dataflow):
            findings += len(report.findings)
    for report in analyze_module_source(
        synthetic, "synthetic_wide.py", dataflow=dataflow
    ):
        findings += len(report.findings)
    return findings


def _best_seconds(runner, rounds, cold=True):
    best = None
    value = None
    for _ in range(rounds):
        if cold:
            _engine._REPORT_CACHE.clear()
        started = time.perf_counter()
        value = runner()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, value


def run_bench(rounds=ROUNDS):
    """Run all measurements; return (report dict, list of gate failures)."""
    synthetic = _synthetic_source()
    classes = _algorithm_classes()
    paths = _example_paths()

    def full_pass():
        return _lint_corpus(synthetic, classes, paths, dataflow=True)

    def pattern_pass():
        return _lint_corpus(synthetic, classes, paths, dataflow=False)

    cold_seconds, findings = _best_seconds(full_pass, rounds, cold=True)
    pattern_seconds, _ = _best_seconds(pattern_pass, rounds, cold=True)

    # Warm pass: prime the cache once, then time cache-served repeats of
    # the live-class portion (source analysis is uncached by design).
    _engine._REPORT_CACHE.clear()
    for cls in classes:
        analyze_computation(cls, dataflow=True)
    warm_seconds, _ = _best_seconds(
        lambda: sum(
            len(analyze_computation(cls, dataflow=True).findings)
            for cls in classes
        ),
        rounds,
        cold=False,
    )
    cold_classes_seconds, _ = _best_seconds(
        lambda: sum(
            len(analyze_computation(cls, dataflow=True).findings)
            for cls in classes
        ),
        rounds,
        cold=True,
    )
    warm_speedup = (
        cold_classes_seconds / warm_seconds if warm_seconds else float("inf")
    )

    failures = []
    if cold_seconds >= GATE_SECONDS:
        failures.append(
            f"cold full-corpus dataflow lint took {cold_seconds:.3f}s; "
            f"gate is < {GATE_SECONDS}s"
        )
    if warm_speedup < WARM_SPEEDUP_FLOOR:
        failures.append(
            f"warm cache-served pass is only {warm_speedup:.1f}x faster "
            f"than cold; floor is {WARM_SPEEDUP_FLOOR}x"
        )

    report = {
        "benchmark": "lint_corpus",
        "corpus": {
            "algorithm_classes": len(classes),
            "example_scripts": len(paths),
            "synthetic_branches": SYNTHETIC_BRANCHES,
            "rounds": rounds,
        },
        "cold_full_corpus_seconds": round(cold_seconds, 4),
        "pattern_only_seconds": round(pattern_seconds, 4),
        "dataflow_overhead_seconds": round(
            cold_seconds - pattern_seconds, 4
        ),
        "warm_classes_seconds": round(warm_seconds, 5),
        "cold_classes_seconds": round(cold_classes_seconds, 5),
        "warm_cache_speedup": round(warm_speedup, 1),
        "total_findings": findings,
        "gates": {
            "cold_seconds_ceiling": GATE_SECONDS,
            "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
            "passed": not failures,
            "failures": failures,
        },
        "notes": (
            "cold = source-hashed LRU report cache cleared before each "
            "round; dataflow overhead is the price of the GL009-GL015 "
            "CFG/interval pack over the pattern rules alone. The gate "
            "keeps the full pack cheap enough to stay the default "
            "pre-flight check in debug_run."
        ),
    }
    return report, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_lint.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer rounds (CI smoke, noisier numbers)",
    )
    args = parser.parse_args(argv)

    report, failures = run_bench(rounds=1 if args.quick else ROUNDS)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"wrote {args.output}")
    print(
        f"  cold full corpus: {report['cold_full_corpus_seconds']}s "
        f"(pattern-only {report['pattern_only_seconds']}s, "
        f"{report['total_findings']} findings)"
    )
    print(
        f"  warm cache speedup: {report['warm_cache_speedup']}x "
        f"({report['warm_classes_seconds']}s vs "
        f"{report['cold_classes_seconds']}s)"
    )
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("  all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
