"""Regenerates **Figure 7/8**: Graft's performance overhead.

For each algorithm x dataset cluster — GC on the bipartite graph, RW on
the web-BS stand-in, RW on the twitter stand-in, MWM on weighted
soc-Epinions — runs the computation without Graft and under each Table 3
DebugConfig, and prints the paper's bar layout: runtime normalized to
no-debug (1.0) with the total vertex-capture count on each bar.

Shape targets (paper Section 5): all debug bars >= ~1.0; capturing a
handful of specified vertices (DC-sp / DC-sp+nbr) is the cheap end;
constraint-checking configs (DC-msg / DC-vv) cost more; DC-full is the
most expensive; capture counts span orders of magnitude across configs.
Absolute percentages are larger than the paper's 16-29% because the
substrate is pure Python (tiny compute bodies make any fixed per-vertex
work loom larger); see EXPERIMENTS.md.
"""

import pytest

from bench_helpers import GRID_SEED, gc_spec, mwm_spec, rw_spec
from repro.bench import (
    max_overhead_by_config,
    render_headlines,
    render_overhead_bars,
    run_overhead_grid,
)
from repro.bench.overhead import NO_DEBUG
from repro.graft.config import standard_configs

REPETITIONS = 3

_CLUSTERS = {
    "GC-bip": gc_spec,
    "RW-webBS": rw_spec,
    "RW-tw": lambda: rw_spec("twitter", "tw"),
    "MWM-epin": mwm_spec,
}


def _config_factories(graph):
    # Mid-rank vertices: the generators put the Zipf hubs at the smallest
    # ids, and specifying a hub drags its (huge) neighborhood into the
    # capture set — not what "5 specified vertices" means in Table 3.
    all_ids = list(graph.vertex_ids())
    start = len(all_ids) // 4
    ids = all_ids[start:start + 10]
    return {
        name: (lambda n=name, i=ids: standard_configs(i)[n])
        for name in ("DC-sp", "DC-sp+nbr", "DC-msg", "DC-vv", "DC-full")
    }


@pytest.mark.parametrize("cluster", list(_CLUSTERS), ids=list(_CLUSTERS))
def test_fig7_cluster(benchmark, cluster, fig7_results):
    spec = _CLUSTERS[cluster]()

    def run_cluster():
        return run_overhead_grid(
            [spec],
            _config_factories(spec.graph),
            repetitions=REPETITIONS,
            seed=GRID_SEED,
            warmup=1,
        )

    cells = benchmark.pedantic(run_cluster, rounds=1, iterations=1)
    fig7_results[cluster] = cells
    print()
    print(render_overhead_bars(cells, title=f"Figure 7 cluster: {cluster}"))

    by_name = {cell.config_name: cell for cell in cells}
    # The baseline is the 1.0 bar.
    assert by_name[NO_DEBUG].normalized == 1.0
    # Debug configurations cannot be meaningfully faster than no-debug.
    for name, cell in by_name.items():
        if name != NO_DEBUG:
            assert cell.normalized > 0.9, (name, cell.normalized)
    # Capture-few configs capture few; DC-full captures the most of the
    # specified-vertex family.
    assert by_name["DC-sp"].captures <= by_name["DC-sp+nbr"].captures
    assert by_name["DC-sp+nbr"].captures <= by_name["DC-full"].captures
    # The cheap end of the figure: specifying a handful of vertices costs
    # less than the full configuration.
    assert by_name["DC-sp"].normalized <= by_name["DC-full"].normalized * 1.15


def test_fig7_headlines(benchmark, fig7_results):
    """The Section 5 headline numbers, over every cluster that ran."""

    def collect():
        cells = [cell for cells in fig7_results.values() for cell in cells]
        return max_overhead_by_config(cells)

    worst = benchmark.pedantic(collect, rounds=1, iterations=1)
    print()
    print(render_headlines(worst))
    if worst:
        # Ordering shape: the full configuration is the most expensive of
        # the five across the grid.
        assert worst["DC-full"] >= worst["DC-sp"] * 0.8
