"""Shared fixtures for the benchmark suite.

Every benchmark prints the paper table/figure it regenerates; run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the rendered tables; without it pytest captures them.)
"""

import pytest


@pytest.fixture(scope="session")
def fig7_results():
    """Shared cell store so the headline benchmark can aggregate clusters."""
    return {}
