"""Ablation: trace record serialization cost and size.

The paper claims Graft "only needs to capture a small amount of data,
often in the kilobytes". This bench measures per-record encode/decode
throughput and bytes-per-record for realistic contexts of varying degree.
"""

from bench_helpers import GRID_SEED
from repro.bench import render_table
from repro.common.serialization import default_codec
from repro.graft.capture import VertexContextRecord, record_from_line, record_to_line


def make_record(degree):
    from repro.algorithms.coloring import GCMessage, GCValue

    edges = {i: None for i in range(degree)}
    return VertexContextRecord(
        vertex_id=672,
        superstep=41,
        worker_id=1,
        value_before=GCValue(color=None, state="UNKNOWN", priority=17),
        edges_before=edges,
        incoming=[(i, GCMessage(kind="PRIORITY", sender=i, priority=i)) for i in range(degree)],
        aggregators={"phase": "DECIDE", "round": 3},
        num_vertices=10**9,
        num_edges=3 * 10**9,
        run_seed=GRID_SEED,
        value_after=GCValue(color=None, state="IN_SET", priority=17),
        edges_after=edges,
        sent=[(i, GCMessage(kind="NBR_IN_SET", sender=672)) for i in range(degree)],
        halted=False,
        reasons=["specified"],
    )


def test_record_sizes_stay_small(benchmark):
    def measure():
        rows = []
        for degree in (3, 10, 50, 200):
            line = record_to_line(make_record(degree), default_codec)
            rows.append([degree, len(line)])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["vertex degree", "bytes per record"],
            rows,
            title='Ablation: trace record size (the "kilobytes" claim)',
        )
    )
    # A typical captured vertex costs a few KB, not more.
    by_degree = dict(rows)
    assert by_degree[3] < 2_000
    assert by_degree[10] < 5_000
    # Size grows roughly linearly with degree, not worse.
    assert by_degree[200] < by_degree[10] * 40


def test_encode_throughput(benchmark):
    record = make_record(10)
    line = benchmark(lambda: record_to_line(record, default_codec))
    assert line


def test_decode_throughput(benchmark):
    line = record_to_line(make_record(10), default_codec)
    record = benchmark(lambda: record_from_line(line, default_codec))
    assert record.vertex_id == 672


def test_roundtrip_identity(benchmark):
    record = make_record(25)

    def roundtrip():
        return record_from_line(record_to_line(record, default_codec), default_codec)

    assert benchmark.pedantic(roundtrip, rounds=3, iterations=5) == record
