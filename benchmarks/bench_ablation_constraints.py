"""Ablation: extended constraints (the paper's Section 7 future work).

The paper proposes richer constraints — message constraints that see the
destination vertex's value, and neighborhood constraints ("no two adjacent
vertices should be assigned the same color"). Both are implemented here;
this bench measures what they cost relative to the basic send-time message
constraint, since they require buffering every computed vertex's record to
the superstep barrier.
"""

from bench_helpers import GRID_SEED, gc_spec
from repro.bench import render_table, repeat_timed
from repro.graft import DebugConfig, debug_run
from repro.pregel import PregelEngine


class BasicMessageConstraint(DebugConfig):
    def message_value_constraint(self, message, source_id, target_id, superstep):
        return message is not None


class TargetValueConstraint(DebugConfig):
    def message_value_constraint_with_target(
        self, message, source_id, target_id, target_value, superstep
    ):
        return target_value is not None


class NeighborhoodColorConstraint(DebugConfig):
    """The paper's own example: adjacent vertices must differ in color."""

    def neighborhood_constraint(self, value, neighbor_values, vertex_id, superstep):
        color = getattr(value, "color", None)
        if color is None:
            return True
        return all(
            getattr(nv, "color", None) != color for nv in neighbor_values.values()
        )


def _sweep():
    spec = gc_spec(num_vertices=600)

    def run_plain():
        return PregelEngine(
            spec.computation_factory, spec.graph, seed=GRID_SEED,
            **spec.engine_kwargs(),
        ).run()

    base_stats, _ = repeat_timed(run_plain, repetitions=3)
    rows = [["no-debug", f"{base_stats.mean * 1e3:.1f}ms", "1.00", 0]]
    for name, config_cls in (
        ("msg (send-time)", BasicMessageConstraint),
        ("msg+target (barrier)", TargetValueConstraint),
        ("neighborhood (barrier)", NeighborhoodColorConstraint),
    ):
        def run_debug(config_cls=config_cls):
            return debug_run(
                spec.computation_factory, spec.graph, config_cls(),
                seed=GRID_SEED, **spec.engine_kwargs(),
            )

        stats, run = repeat_timed(run_debug, repetitions=3)
        rows.append(
            [
                name,
                f"{stats.mean * 1e3:.1f}ms",
                f"{stats.mean / base_stats.mean:.2f}",
                run.capture_count,
            ]
        )
    return rows


def test_extended_constraint_ablation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["constraint", "runtime", "normalized", "captures"],
            rows,
            title="Ablation: basic vs Section-7 extended constraints (correct GC)",
        )
    )
    by_name = {row[0]: float(row[2]) for row in rows}
    # Barrier-time constraints buffer every record, so they cost at least
    # as much as the plain send-time check (the design tradeoff Section 7
    # anticipates).
    assert by_name["msg+target (barrier)"] >= by_name["msg (send-time)"] * 0.8
    # The correct coloring violates nothing.
    captures = {row[0]: row[3] for row in rows}
    assert captures["neighborhood (barrier)"] == 0
