"""Substrate benchmark: raw engine throughput.

Not a paper figure — a sanity benchmark for the Pregel substrate itself,
so overhead percentages in the Figure 7 reproduction can be read against a
known baseline (compute calls/second and messages/second of the simulator).
"""

import pytest

from bench_helpers import GRID_SEED
from repro.algorithms import PageRank
from repro.datasets import load_dataset
from repro.pregel import EXECUTOR_NAMES, PregelEngine, SumCombiner


def _run(combiner=None, num_vertices=2000, iterations=5, executor="serial"):
    graph = load_dataset("web-BS", num_vertices=num_vertices, seed=GRID_SEED)
    engine = PregelEngine(
        lambda: PageRank(iterations=iterations),
        graph,
        combiner=combiner,
        seed=GRID_SEED,
        executor=executor,
    )
    return engine.run()


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
def test_pagerank_throughput(benchmark, executor):
    result = benchmark.pedantic(
        lambda: _run(executor=executor), rounds=3, iterations=1
    )
    calls_per_second = (
        result.metrics.total_compute_calls / result.metrics.total_seconds
    )
    print()
    print(
        f"engine throughput [{executor}]: "
        f"{calls_per_second:,.0f} compute calls/s, "
        f"{result.metrics.total_messages / result.metrics.total_seconds:,.0f} msgs/s"
    )
    assert result.converged
    assert calls_per_second > 10_000  # sanity floor for the simulator


def test_pagerank_with_combiner(benchmark):
    result = benchmark.pedantic(
        lambda: _run(combiner=SumCombiner()), rounds=3, iterations=1
    )
    assert result.metrics.total_messages_combined > 0


def test_superstep_scaling(benchmark):
    """Runtime scales linearly-ish in supersteps (no leak across barriers)."""

    def run_both():
        short = _run(iterations=3)
        long = _run(iterations=12)
        return short.metrics.total_seconds, long.metrics.total_seconds

    short_time, long_time = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert long_time < short_time * 12
