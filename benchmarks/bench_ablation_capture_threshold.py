"""Ablation: the max-captures safety net (paper Section 3.1).

Graft "stops capturing" after an adjustable threshold. This bench sweeps
the threshold under a capture-everything configuration and shows overhead
and trace size saturating once the threshold binds — the safety net is
what keeps a misconfigured DebugConfig from sinking the job.
"""

from bench_helpers import GRID_SEED, rw_spec
from repro.bench import render_table
from repro.graft import CaptureAllActiveConfig, debug_run

THRESHOLDS = (10, 100, 1000, 10_000, 100_000)


def _sweep():
    spec = rw_spec(num_vertices=800)
    rows = []
    for threshold in THRESHOLDS:
        run = debug_run(
            spec.computation_factory,
            spec.graph,
            CaptureAllActiveConfig(max_captures=threshold),
            seed=GRID_SEED,
            **spec.engine_kwargs(),
        )
        rows.append(
            [
                threshold,
                run.capture_count,
                "yes" if run.capture_limit_hit else "no",
                run.trace_bytes,
                f"{run.result.metrics.total_seconds * 1e3:.1f}ms",
            ]
        )
    return rows


def test_capture_threshold_ablation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["max_captures", "captured", "limit hit", "trace bytes", "runtime"],
            rows,
            title="Ablation: capture safety-net threshold (RW, capture-all-active)",
        )
    )
    captured = [row[1] for row in rows]
    # Captures are monotone in the threshold and clamp exactly at it.
    assert captured == sorted(captured)
    for threshold, count, hit, _bytes, _time in rows:
        assert count <= threshold
        if hit == "yes":
            assert count == threshold
    # The largest threshold should not bind on this workload.
    assert rows[-1][2] == "no"
    # Trace size grows with capture count.
    sizes = [row[3] for row in rows]
    assert sizes == sorted(sizes)
