"""Regenerates **Table 1**: the demo datasets.

Paper row (name, |V|, |E| directed/undirected, description) alongside the
laptop-scale stand-in this repository generates, with the stand-in's actual
measured statistics. The benchmarked operation is dataset generation.
"""

from repro.bench import render_table
from repro.datasets import DEMO_DATASETS
from repro.graph import compute_stats


def _rows(specs, seed=0):
    rows = []
    for spec in specs:
        graph = spec.generate(seed=seed)
        stats = compute_stats(graph)
        rows.append(
            [
                spec.name,
                spec.paper_vertices,
                spec.paper_edges,
                f"{stats.num_vertices}",
                f"{stats.num_directed_edges} (d), {stats.num_undirected_edges} (u)",
                spec.description,
            ]
        )
    return rows


def test_table1_demo_datasets(benchmark):
    rows = benchmark.pedantic(lambda: _rows(DEMO_DATASETS), rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["Name", "paper |V|", "paper edges", "ours |V|", "ours edges",
             "Description"],
            rows,
            title="Table 1: Graph datasets for demonstration (paper vs stand-in)",
        )
    )
    assert len(rows) == 3
    names = [row[0] for row in rows]
    assert names == ["web-BS", "soc-Epinions", "bipartite-1M-3M"]
    # Shape checks: the bipartite stand-in is exactly 3-regular, so its
    # directed edge count is 3x its vertex count (each pair stored twice).
    bipartite = rows[2]
    vertices = int(bipartite[3])
    assert f"{vertices * 3} (d)" in bipartite[4]
