"""Regenerates **Table 3**: the DebugConfig configurations.

Prints each configuration's name and description exactly as the paper
lists them, and benchmarks the per-event cost of the constraint checks each
configuration adds (the microscopic source of Figure 7's overhead
differences).
"""

from repro.bench import render_table
from repro.graft.config import STANDARD_CONFIG_DESCRIPTIONS, standard_configs


def test_table3_configurations(benchmark):
    configs = benchmark.pedantic(
        lambda: standard_configs(range(10)), rounds=1, iterations=1
    )
    print()
    rows = [[name, STANDARD_CONFIG_DESCRIPTIONS[name]] for name in
            ["DC-sp", "DC-sp+nbr", "DC-msg", "DC-vv", "DC-full"]]
    print(render_table(["Name", "Description"], rows,
                       title="Table 3: DebugConfig configurations"))
    assert set(configs) == set(STANDARD_CONFIG_DESCRIPTIONS)


def test_message_constraint_check_cost(benchmark):
    config = standard_configs(range(10))["DC-msg"]

    def check_many():
        ok = True
        for value in range(-500, 500):
            ok &= config.message_value_constraint(value, 1, 2, 0)
        return ok

    assert benchmark(check_many) is not None


def test_vertex_constraint_check_cost(benchmark):
    config = standard_configs(range(10))["DC-vv"]

    def check_many():
        ok = True
        for value in range(-500, 500):
            ok &= config.vertex_value_constraint(value, 1, 0)
        return ok

    assert benchmark(check_many) is not None


def test_constraint_cost_on_non_numeric_values(benchmark):
    """The hot path must stay cheap for values the constraint ignores."""
    config = standard_configs(range(10))["DC-vv"]
    values = [("a", "tuple"), None, "text", object()] * 250

    def check_many():
        for value in values:
            config.vertex_value_constraint(value, 1, 0)

    benchmark(check_many)
