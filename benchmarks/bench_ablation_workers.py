"""Ablation: overhead versus simulated worker count.

Graft writes one trace file per worker; this bench verifies the relative
overhead of a fixed DebugConfig is insensitive to how many workers the
vertices are spread over (the paper ran on 36 machines; the simulator must
not make worker count a confound for the Figure 7 numbers).
"""

from bench_helpers import GRID_SEED, rw_spec
from repro.bench import render_table, repeat_timed
from repro.graft import debug_run
from repro.graft.config import standard_configs
from repro.pregel import PregelEngine

WORKER_COUNTS = (1, 2, 4, 8)


def _sweep():
    spec = rw_spec(num_vertices=800)
    all_ids = list(spec.graph.vertex_ids())
    ids = all_ids[len(all_ids) // 4:][:10]
    rows = []
    for workers in WORKER_COUNTS:
        def run_plain(workers=workers):
            return PregelEngine(
                spec.computation_factory,
                spec.graph,
                seed=GRID_SEED,
                num_workers=workers,
                **spec.engine_kwargs(),
            ).run()

        def run_debug(workers=workers):
            return debug_run(
                spec.computation_factory,
                spec.graph,
                standard_configs(ids)["DC-sp+nbr"],
                seed=GRID_SEED,
                num_workers=workers,
                **spec.engine_kwargs(),
            )

        base_stats, _ = repeat_timed(run_plain, repetitions=3)
        debug_stats, run = repeat_timed(run_debug, repetitions=3)
        rows.append(
            [
                workers,
                f"{base_stats.mean * 1e3:.1f}ms",
                f"{debug_stats.mean * 1e3:.1f}ms",
                f"{debug_stats.mean / base_stats.mean:.2f}",
                run.capture_count,
            ]
        )
    return rows


def test_worker_count_ablation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["workers", "no-debug", "DC-sp+nbr", "normalized", "captures"],
            rows,
            title="Ablation: overhead vs simulated worker count (RW)",
        )
    )
    # Captures are placement-independent.
    captures = {row[4] for row in rows}
    assert len(captures) == 1
    # Relative overhead stays in one band across worker counts.
    normalized = [float(row[3]) for row in rows]
    assert max(normalized) - min(normalized) < 1.0
