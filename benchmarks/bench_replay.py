"""Reproduce-step benchmarks: replay, line tracing, and code generation.

Not a paper figure, but the paper calls the Context Reproducer "the most
challenging component of Graft to implement" — these benches pin down what
the debugging loop's inner operations cost: replaying one captured
context, replaying with the line tracer attached, generating a test file,
and verifying a whole run's fidelity.
"""

from bench_helpers import GRID_SEED
from repro.algorithms import GCMaster, GraphColoring
from repro.datasets import load_dataset
from repro.graft import (
    CaptureAllActiveConfig,
    debug_run,
    generate_test_code,
    verify_run_fidelity,
)
from repro.graft.reproducer import replay_record


def _captured_run():
    graph = load_dataset("bipartite-1M-3M", num_vertices=200, seed=GRID_SEED)
    return debug_run(
        GraphColoring,
        graph,
        CaptureAllActiveConfig(),
        master=GCMaster(),
        seed=GRID_SEED,
        max_supersteps=300,
    )


def test_replay_one_context(benchmark):
    run = _captured_run()
    record = run.reader.vertex_records[len(run.reader.vertex_records) // 2]
    report = benchmark(
        lambda: replay_record(record, GraphColoring, trace_lines=False)
    )
    assert report.faithful


def test_replay_with_line_tracing(benchmark):
    run = _captured_run()
    record = run.reader.vertex_records[len(run.reader.vertex_records) // 2]
    report = benchmark(lambda: replay_record(record, GraphColoring))
    assert report.faithful
    assert report.executed_lines


def test_generate_test_file(benchmark):
    run = _captured_run()
    record = run.reader.vertex_records[0]
    code = benchmark(lambda: generate_test_code(record, GraphColoring))
    assert "ReplayHarness" in code


def test_full_run_fidelity_verification(benchmark):
    run = _captured_run()

    def verify():
        return verify_run_fidelity(run, limit=300)

    report = benchmark.pedantic(verify, rounds=2, iterations=1)
    assert report.ok
    print()
    print(
        f"verified {report.total} captured contexts; "
        f"{report.total and report.faithful} faithful"
    )


def test_trace_read_back(benchmark):
    from repro.graft.trace import TraceReader

    run = _captured_run()

    def read():
        return TraceReader(run.session.filesystem, run.session.job_id)

    reader = benchmark.pedantic(read, rounds=3, iterations=1)
    assert len(reader) == run.capture_count
