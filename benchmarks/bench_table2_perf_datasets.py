"""Regenerates **Table 2**: the performance-experiment datasets.

Same layout as Table 1, for the sk-2005 / twitter / bipartite-2B-6B
stand-ins used by the Figure 7 overhead grid.
"""

from repro.bench import render_table
from repro.datasets import PERF_DATASETS
from repro.graph import compute_stats


def _rows(specs, seed=0):
    rows = []
    for spec in specs:
        graph = spec.generate(seed=seed)
        stats = compute_stats(graph)
        rows.append(
            [
                spec.name,
                spec.paper_vertices,
                spec.paper_edges,
                f"{stats.num_vertices}",
                f"{stats.num_directed_edges} (d), {stats.num_undirected_edges} (u)",
                spec.description,
            ]
        )
    return rows


def test_table2_perf_datasets(benchmark):
    rows = benchmark.pedantic(lambda: _rows(PERF_DATASETS), rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["Name", "paper |V|", "paper edges", "ours |V|", "ours edges",
             "Description"],
            rows,
            title="Table 2: Graph datasets for performance experiments "
            "(paper vs stand-in)",
        )
    )
    assert [row[0] for row in rows] == ["sk-2005", "twitter", "bipartite-2B-6B"]
    # The web/social stand-ins must be heavy-tailed like the originals.
    from repro.datasets import load_dataset

    for name in ("sk-2005", "twitter"):
        graph = load_dataset(name, seed=0)
        stats = compute_stats(graph)
        assert stats.max_out_degree > 3 * stats.mean_out_degree
