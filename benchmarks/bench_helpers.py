"""Experiment specs shared by the benchmark files.

Uniquely named (not ``conftest``) so imports stay unambiguous when the
test and benchmark trees are collected in one pytest invocation.
"""

from repro.algorithms import (
    GCMaster,
    GraphColoring,
    MaximumWeightMatching,
    RandomWalk,
)
from repro.bench import ExperimentSpec
from repro.datasets import load_dataset, random_symmetric_weights
from repro.graph import to_undirected

#: Laptop-scale sizes for the overhead grid. The paper used billion-edge
#: graphs on 36 machines; relative overheads, not absolute times, are the
#: reproduction target (see EXPERIMENTS.md).
GRID_VERTICES = 2000
GRID_SEED = 3


def gc_spec(num_vertices=GRID_VERTICES):
    graph = load_dataset("bipartite-1M-3M", num_vertices=num_vertices, seed=GRID_SEED)
    return ExperimentSpec(
        algorithm="GC",
        dataset="bip",
        graph=graph,
        computation_factory=GraphColoring,
        engine_kwargs_factory=lambda: {"master": GCMaster(), "max_supersteps": 300},
    )


def rw_spec(dataset="web-BS", label="webBS", num_vertices=GRID_VERTICES):
    graph = load_dataset(dataset, num_vertices=num_vertices, seed=GRID_SEED)
    return ExperimentSpec(
        algorithm="RW",
        dataset=label,
        graph=graph,
        computation_factory=lambda: RandomWalk(steps=8, initial_walkers=30),
        engine_kwargs_factory=lambda: {"max_supersteps": 20},
    )


def mwm_spec(num_vertices=GRID_VERTICES):
    graph = to_undirected(
        random_symmetric_weights(
            load_dataset("soc-Epinions", num_vertices=num_vertices, seed=GRID_SEED),
            seed=GRID_SEED,
        )
    )
    return ExperimentSpec(
        algorithm="MWM",
        dataset="epin",
        graph=graph,
        computation_factory=MaximumWeightMatching,
        engine_kwargs_factory=lambda: {"max_supersteps": 120},
    )
