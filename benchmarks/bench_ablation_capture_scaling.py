"""Ablation: capture cost scaling with capture-set size.

Fixes the workload (RW on the web-BS stand-in) and sweeps how many
vertices the DebugConfig captures, from a handful to everything. Shows
the overhead decomposition the Figure 7 discussion relies on: a roughly
fixed per-superstep instrumentation cost plus a per-captured-record
serialization cost.
"""

from bench_helpers import GRID_SEED, rw_spec
from repro.bench import render_table, repeat_timed
from repro.graft import DebugConfig, debug_run
from repro.pregel import PregelEngine


class CaptureFirstN(DebugConfig):
    def __init__(self, ids):
        self._ids = tuple(ids)

    def vertices_to_capture(self):
        return self._ids


def _sweep():
    spec = rw_spec(num_vertices=800)
    all_ids = list(spec.graph.vertex_ids())
    mid = all_ids[len(all_ids) // 4:]

    def run_plain():
        return PregelEngine(
            spec.computation_factory, spec.graph, seed=GRID_SEED,
            **spec.engine_kwargs(),
        ).run()

    base_stats, _ = repeat_timed(run_plain, repetitions=3)
    rows = [["no-debug", f"{base_stats.mean * 1e3:.1f}ms", "1.00", 0, 0]]
    for count in (1, 5, 25, 100, 400):
        ids = mid[:count]

        def run_debug(ids=ids):
            return debug_run(
                spec.computation_factory, spec.graph, CaptureFirstN(ids),
                seed=GRID_SEED, **spec.engine_kwargs(),
            )

        stats, run = repeat_timed(run_debug, repetitions=3)
        rows.append(
            [
                f"capture {count}",
                f"{stats.mean * 1e3:.1f}ms",
                f"{stats.mean / base_stats.mean:.2f}",
                run.capture_count,
                run.trace_bytes,
            ]
        )
    return rows


def test_capture_scaling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["config", "runtime", "normalized", "captures", "trace bytes"],
            rows,
            title="Ablation: overhead vs capture-set size (RW, specified ids)",
        )
    )
    # Trace bytes grow monotonically with the capture set.
    sizes = [row[4] for row in rows[1:]]
    assert sizes == sorted(sizes)
    # Capturing one vertex costs close to nothing relative to capturing 400.
    normalized = [float(row[2]) for row in rows[1:]]
    assert normalized[0] <= normalized[-1] + 0.05
