"""Thin setup.py shim.

The environment this repository targets may lack the ``wheel`` package that
PEP 660 editable installs require; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation``) works everywhere. All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
