#!/usr/bin/env python3
"""Quickstart: run a Pregel algorithm under Graft and walk the three steps.

1. **Capture** — a DebugConfig selecting a few vertices;
2. **Visualize** — the node-link and tabular views, superstep by superstep;
3. **Reproduce** — replay one compute() call line by line and generate a
   standalone test file for it.

Run:  python examples/quickstart.py
"""

from repro import DebugConfig, debug_run
from repro.algorithms import ConnectedComponents
from repro.datasets import premade_graph
from repro.pregel import MinCombiner


class WatchTwoVertices(DebugConfig):
    """Capture vertices 0 and 7 (and their neighbors) in every superstep."""

    def vertices_to_capture(self):
        return (0, 7)

    def capture_neighbors_of_vertices(self):
        return True


def main():
    # The graph behind the paper's Figure 5 screenshot: connected
    # components, where vertex values are vertex ids.
    graph = premade_graph("petersen")

    print("== Capture ==")
    run = debug_run(
        ConnectedComponents,
        graph,
        WatchTwoVertices(),
        combiner=MinCombiner(),
        num_workers=4,
        seed=1,
    )
    print(run.summary())
    print()

    print("== Visualize: node-link view, stepping supersteps ==")
    view = run.node_link_view()
    print(view.render())
    print()
    view.next()
    print(view.render())
    print()

    print("== Visualize: tabular view with search ==")
    table = run.tabular_view(superstep=1)
    print(table.render())
    hits = table.search("7")
    print(f"search('7') matched vertices: {[r.vertex_id for r in hits]}")
    print()

    print("== Reproduce: replay vertex 7 @ superstep 1, line by line ==")
    report = run.reproduce(7, 1)
    print(report.summary())
    print(report.annotated_source(ConnectedComponents()))
    print()

    print("== Reproduce: the generated standalone test file ==")
    print(run.generate_test_code(7, 1))


if __name__ == "__main__":
    main()
