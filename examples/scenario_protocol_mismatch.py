#!/usr/bin/env python3
"""Scenario — cross-superstep protocol bugs caught statically, then observed.

Phased vertex programs commit to an implicit wire protocol: each phase's
sends must match what the *receiving* phase does with its inbox one
superstep later. Two classic ways that contract breaks:

1. **Payload mismatch (GL022).** The seed phase of a phased SSSP
   broadcasts ``(weight, sender_id)`` tuples for provenance, but the
   gather phase still folds the inbox with ``sum(messages)``. The
   tuples arrive in superstep 1 and the sum raises ``TypeError``.
2. **Phase gap (GL023).** A two-hop broadcast relays a wave in phase 1
   (delivered in superstep 2) but only collects in phase 3. Pregel
   silently discards the unread inbox at the barrier, so phase 3
   computes from its empty-inbox default — wrong values, no crash.

graft-lint's interprocedural pack proves both before the job runs: it
joins every send's payload shape and delivery interval (through helper
methods, via callee summaries) against every phase's consumption
pattern. Each proven finding names the runtime evidence it forecasts
(``exception`` / ``vertex_value``), and the debugger grades those
forecasts against what the run actually produced — the closed loop.

Run:  python examples/scenario_protocol_mismatch.py
"""

# Imported, not defined here: the CI lint gate requires examples/ to be
# free of defined protocol bugs; the shipped buggy twins live next to
# their clean counterpart in repro.algorithms.
from repro import DebugConfig, debug_run
from repro.algorithms import (
    BuggyPhaseGapBroadcast,
    BuggyPhasedShortestPaths,
    PhasedShortestPaths,
)
from repro.analysis import analyze_computation
from repro.datasets import load_dataset


class NonNegativeValueConfig(DebugConfig):
    """Distances and wave counts are never negative — the constraint that
    catches a phase-gap default (-1.0) leaking into vertex state."""

    def vertex_value_constraint(self, value, vertex_id, superstep):
        return not (value < 0)


def show_findings(cls, rule_id):
    report = analyze_computation(cls)
    hits = [f for f in report.findings if f.rule_id == rule_id]
    print(f"== graft-lint on {cls.__name__} ==")
    for finding in hits:
        print(f"  {finding.render()}")
    if not hits:
        raise SystemExit(f"expected {rule_id} on {cls.__name__}")
    if not all(f.proven for f in hits):
        raise SystemExit(f"expected {rule_id} to be proven")
    print()
    return report


def main():
    graph = load_dataset("web-BS", num_vertices=40, seed=11)
    print(f"input: web-BS stand-in, {graph.num_vertices} vertices")
    print()

    # -- 1. the clean phased SSSP is finding-free and runs clean ---------
    clean_report = analyze_computation(PhasedShortestPaths)
    print(f"== graft-lint on PhasedShortestPaths: {clean_report.summary()} ==")
    if not clean_report.ok:
        raise SystemExit("the clean phased SSSP must lint clean")
    clean = debug_run(
        lambda: PhasedShortestPaths(source=0), graph,
        NonNegativeValueConfig(), seed=11,
    )
    print(f"   runs: {clean.summary()}")
    print()

    # -- 2. payload mismatch: proven TypeError before the run -----------
    show_findings(BuggyPhasedShortestPaths, "GL022")
    mismatch = debug_run(
        lambda: BuggyPhasedShortestPaths(source=0), graph,
        NonNegativeValueConfig(), seed=11, lint=True,
    )
    observed = mismatch.observed_evidence_kinds()
    print(f"   observed evidence: {observed}")
    if "exception" not in observed:
        raise SystemExit("expected the tuple payload to raise in phase 1")
    score = mismatch.prediction_score()
    print(f"   {score.summary()}")
    if score.precision < 1.0 or score.recall < 1.0:
        raise SystemExit("GL022's forecast should fully match the run")
    print()

    # -- 3. phase gap: proven wrong-values before the run ----------------
    show_findings(BuggyPhaseGapBroadcast, "GL023")
    gap = debug_run(
        BuggyPhaseGapBroadcast, graph,
        NonNegativeValueConfig(), seed=11, lint=True,
    )
    observed = gap.observed_evidence_kinds()
    print(f"   observed evidence: {observed}")
    if "vertex_value" not in observed:
        raise SystemExit("expected the dropped wave to violate the constraint")
    score = gap.prediction_score()
    print(f"   {score.summary()}")
    if score.precision < 1.0 or score.recall < 1.0:
        raise SystemExit("GL023's forecast should fully match the run")
    print()

    print("== diagnosis ==")
    print(
        "  Both bugs are one-superstep disagreements between a sender and "
        "a receiver that never\n  execute together — exactly the class of "
        "bug per-method analysis cannot see and the\n  interprocedural "
        "protocol join proves."
    )


if __name__ == "__main__":
    main()
