#!/usr/bin/env python3
"""Scenario 4.2 — catching a 16-bit overflow with a message constraint.

The RW implementation declares its per-neighbor walker counters as Java
shorts "to optimize the memory and network I/O"; past 32767 walkers the
counter wraps negative. Following the paper: run RW with the constraint
"message values are non-negative", see the M icon turn red, open the
Violations and Exceptions view, and generate a test from a violating
vertex to diagnose the overflow.

Run:  python examples/scenario_random_walk.py
"""

from repro import DebugConfig, debug_run
from repro.algorithms import BuggyRandomWalk
from repro.datasets import load_dataset
from repro.pregel import Short16


class RWDebugConfig(DebugConfig):
    """Figure 2, lines 4-5: messages must be non-negative."""

    def message_value_constraint(self, message, source_id, target_id, superstep):
        return not (message < 0)


REDIRECT_PAGE = 999_999


def main():
    # The web-BS stand-in. Real web crawls contain redirect/aggregator
    # pages — URLs half the web links to that link out to exactly one
    # place. Walkers funnel through such a page, and its single outgoing
    # counter is exactly where a 16-bit short first overflows.
    graph = load_dataset("web-BS", num_vertices=1000, seed=7)
    for hub in range(100):
        graph.add_edge(hub, REDIRECT_PAGE)
    graph.add_edge(REDIRECT_PAGE, 0)
    print(f"input: web-BS stand-in + redirect page, {graph.num_vertices} vertices")
    print(f"Short16.max_value() = {Short16.max_value()}")

    run = debug_run(
        lambda: BuggyRandomWalk(steps=10, initial_walkers=400),
        graph,
        RWDebugConfig(),
        num_workers=4,
        seed=7,
    )
    print(run.summary())
    print()

    violations = run.violations_view()
    red = violations.supersteps_with_violations()
    if not red:
        raise SystemExit(
            "no overflow at this scale - increase initial_walkers and rerun"
        )

    print(f"== The M icon is red in supersteps {red} ==")
    boxes = run.node_link_view(superstep=red[0]).status_boxes()
    print(f"status boxes at superstep {red[0]}: {boxes}")
    print()

    print("== Violations and Exceptions view ==")
    print(violations.render(limit=5))
    print()

    first = violations.first_violation()
    record = run.captured(first.vertex_id, first.superstep)
    arrived = sum(int(value) for _source, value in record.incoming)
    true_count = int(record.value_before) + arrived
    print(
        f"vertex {first.vertex_id} held {true_count} walkers but sent "
        f"{first.details['message']!r} to {first.details['target']} — "
        f"{true_count} wraps to {Short16(true_count).value} in 16 bits"
    )
    print()

    print("== Generated test reproducing the overflowing compute() call ==")
    print(run.generate_test_code(first.vertex_id, first.superstep))


if __name__ == "__main__":
    main()
