#!/usr/bin/env python3
"""Scenario 4.1 — debugging graph coloring with a random capture set.

The buggy GC implementation "incorrectly puts some adjacent vertices into
the same MIS, so they are assigned the same color". Following the paper:
capture 10 random vertices and their neighbors, jump to the final superstep
to check the output, spot two adjacent vertices with one color, step back
to the superstep where both entered the MIS, and reproduce the decision.

Run:  python examples/scenario_graph_coloring.py
"""

from repro import DebugConfig, debug_run
from repro.algorithms import (
    BuggyGraphColoring,
    GCMaster,
    find_coloring_conflicts,
)
from repro.algorithms.coloring import IN_SET
from repro.datasets import load_dataset


class GCDebugConfig(DebugConfig):
    """The DebugConfig of the paper's Figure 2 (random capture part)."""

    def num_random_vertices_to_capture(self):
        return 10

    def capture_neighbors_of_vertices(self):
        return True


def main():
    graph = load_dataset("bipartite-1M-3M", num_vertices=400, seed=3)
    print(f"input: 3-regular bipartite stand-in, {graph.num_vertices} vertices")

    run = debug_run(
        BuggyGraphColoring,
        graph,
        GCDebugConfig(),
        master=GCMaster(),
        num_workers=4,
        seed=3,
        max_supersteps=500,
    )
    print(run.summary())
    print()

    print("== Final superstep: verify the output in the GUI ==")
    final_view = run.node_link_view().last()
    print(final_view.render())
    print()

    conflicts = find_coloring_conflicts(graph, run.result.vertex_values)
    u, v, color = conflicts[0]
    print(f"BUG VISIBLE: adjacent vertices {u} and {v} share color {color}")
    print()

    print("== Step back: when did both enter the MIS? ==")
    mis_records = [
        record
        for record in run.reader.vertex_records
        if record.value_after.state == IN_SET
        and record.value_before.state != IN_SET
    ]
    suspicious = mis_records[0]
    print(
        f"vertex {suspicious.vertex_id} entered the MIS in superstep "
        f"{suspicious.superstep} holding priority "
        f"{suspicious.value_before.priority}"
    )
    priorities = [
        message.priority
        for _source, message in suspicious.incoming
        if message.kind == "PRIORITY"
    ]
    print(f"neighbor priorities it compared against: {sorted(priorities)}")
    print()

    print("== Reproduce: replay the buggy decision line by line ==")
    report = run.reproduce(suspicious.vertex_id, suspicious.superstep)
    print(report.summary())
    print(report.annotated_source(BuggyGraphColoring()))
    print()
    print(
        "The `<=` comparison (no id tie-break) admits both ends of a "
        "priority tie into the MIS — the planted bug."
    )
    print()

    print("== The generated unit test for the IDE step ==")
    print(run.generate_test_code(suspicious.vertex_id, suspicious.superstep))


if __name__ == "__main__":
    main()
