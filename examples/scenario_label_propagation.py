#!/usr/bin/env python3
"""Scenario — a determinism race caught statically, then proven at runtime.

Label propagation picks each vertex's most frequent neighbor label. A
common buggy tie-break — ``if tally >= best_count`` inside the message
loop — silently makes the *last* tied label win, so the answer depends on
message delivery order. On a deterministic engine the bug never shows:
every run canonicalizes inbox order and reproduces the same
wrong-by-luck communities.

Two tools close the gap:

1. **graft-lint GL016** flags the fold statically: a guarded last-wins
   assignment over the unordered message bag, with the superstep interval
   it runs in.
2. **graft-san** proves it dynamically: re-run the job under K seeded
   delivery-order permutations (same messages, different order) and
   compare order-insensitive canonical digests. The clean implementation
   is byte-identical across every schedule; the buggy one diverges, and
   the report pins the first divergent (superstep, vertex, field).

Run:  python examples/scenario_label_propagation.py
"""

# Imported, not defined here: the CI lint gate requires examples/ to be
# free of *defined* order-sensitivity bugs; the shipped buggy twin lives
# next to its clean counterpart in repro.algorithms.
from repro.algorithms import BuggyLabelPropagation, LabelPropagation
from repro.analysis import analyze_computation
from repro.datasets import load_dataset
from repro.graft import run_sanitizer
from repro.graph import to_undirected


def main():
    graph = to_undirected(load_dataset("web-BS", num_vertices=60, seed=3))
    print(f"input: web-BS stand-in, {graph.num_vertices} vertices (undirected)")
    print()

    # -- 1. static: graft-lint sees the order-sensitive tie-break --------
    report = analyze_computation(BuggyLabelPropagation)
    gl016 = [f for f in report.findings if f.rule_id == "GL016"]
    print("== graft-lint on BuggyLabelPropagation ==")
    for finding in gl016:
        print(f"  {finding.render()}")
    if not gl016:
        raise SystemExit("expected GL016 on the buggy tie-break")
    print()

    # -- 2. dynamic: graft-san sweeps delivery-order permutations --------
    print("== graft-san: buggy implementation ==")
    buggy = run_sanitizer(
        lambda: BuggyLabelPropagation(iterations=8),
        graph, schedules=3, seed=7, num_workers=4,
    )
    print(buggy.summary())
    if buggy.deterministic:
        raise SystemExit("expected the buggy tie-break to diverge")
    print()

    print("== graft-san: clean implementation (max-count, min-label) ==")
    clean = run_sanitizer(
        lambda: LabelPropagation(iterations=8),
        graph, schedules=3, seed=7, num_workers=4,
    )
    print(clean.summary())
    if not clean.deterministic:
        raise SystemExit("clean label propagation must be order-insensitive")
    print()

    divergence = buggy.first_divergence
    print("== diagnosis ==")
    print(f"  {divergence.summary()}")
    print(
        "  The permutation changed no message, only the order - yet vertex "
        f"{divergence.vertex_id}'s value moved. The tie-break is the race."
    )


if __name__ == "__main__":
    main()
