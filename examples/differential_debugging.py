#!/usr/bin/env python3
"""Differential debugging and fidelity auditing (extensions beyond the GUI).

Two Graft workflows this reproduction adds on top of the paper:

1. **diff two runs** — run the buggy and the fixed graph coloring under
   capture-all-active with one seed; the earliest trace divergence is the
   bug's first observable effect, found without eyeballing supersteps;
2. **audit replay fidelity** — mechanically verify that every captured
   context replays exactly (and see the Section 7 limitation trip it when
   a computation smuggles hidden state).

Run:  python examples/differential_debugging.py
"""

from repro.algorithms import BuggyGraphColoring, GCMaster, GraphColoring
from repro.datasets import load_dataset
from repro.graft import (
    CaptureAllActiveConfig,
    debug_run,
    diff_runs,
    verify_run_fidelity,
)


def main():
    graph = load_dataset("bipartite-1M-3M", num_vertices=120, seed=5)

    def run(computation):
        return debug_run(
            computation,
            graph,
            CaptureAllActiveConfig(),
            master=GCMaster(),
            seed=5,
            max_supersteps=300,
        )

    print("== Running fixed and buggy GC under capture-all-active ==")
    fixed = run(GraphColoring)
    buggy = run(BuggyGraphColoring)
    print(f"fixed: {fixed.summary()}")
    print(f"buggy: {buggy.summary()}")
    print()

    print("== Diff the traces ==")
    report = diff_runs(fixed, buggy)
    print(report.summary())
    print(f"first-divergence histogram by superstep: {report.by_superstep()}")
    earliest = report.earliest()
    print(f"earliest divergence: {earliest.summary()}")
    print()

    print("== Zoom in on the earliest diverging vertex in the buggy run ==")
    record = buggy.captured(earliest.vertex_id, earliest.superstep)
    print(buggy.tabular_view(superstep=earliest.superstep).expand(record.vertex_id))
    print()

    print("== Fidelity audit: every captured context replays exactly ==")
    for name, debugged in (("fixed", fixed), ("buggy", buggy)):
        fidelity = verify_run_fidelity(debugged, limit=200)
        print(f"{name}: {fidelity.summary()}")
    print()
    print(
        "Both implementations are deterministic given their captured "
        "contexts — the difference between them is code, not environment, "
        "which is exactly what the diff above isolates."
    )


if __name__ == "__main__":
    main()
