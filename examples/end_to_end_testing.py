#!/usr/bin/env python3
"""Section 3.4 — master debugging, offline graph construction, e2e tests.

Three smaller Graft features beyond the main scenarios:

1. master.compute() debugging: every superstep's master context (the
   aggregator values) is captured automatically and can be replayed;
2. the offline small-graph builder with its premade-graphs menu;
3. end-to-end test generation: from a built graph straight to a pytest
   file that runs the algorithm to termination and checks the output.

Run:  python examples/end_to_end_testing.py
"""

from repro import DebugConfig, debug_run
from repro.algorithms import GCMaster, GraphColoring
from repro.datasets import premade_graph
from repro.graft import OfflineGraphBuilder
from repro.graft.reproducer import replay_master_record
from repro.pregel import run_computation


def main():
    print("== 1. Debugging master.compute() ==")
    run = debug_run(
        GraphColoring,
        premade_graph("petersen"),
        DebugConfig(),
        master=GCMaster(),
        seed=1,
        max_supersteps=200,
    )
    print("master contexts captured per superstep (phase transitions):")
    for master in run.master_contexts()[:8]:
        print(f"  {master.summary()}")
    print()
    suspicious = run.master_contexts()[3]
    print(f"replaying master.compute() at superstep {suspicious.superstep}:")
    outcome = replay_master_record(suspicious, GCMaster)
    print(f"  aggregators after replay: {outcome.aggregators}")
    print()
    print("the generated master test file:")
    print(run.generate_master_test_code(suspicious.superstep, GCMaster))

    print("== 2. Offline mode: build a small test graph ==")
    print(f"premade menu: {', '.join(OfflineGraphBuilder.menu())}")
    builder = (
        OfflineGraphBuilder.from_premade("triangle")
        .vertex(3)
        .edge(2, 3)           # draw a tail onto the triangle
        .set_value(3, None)
    )
    print("adjacency-list text a user can save next to an end-to-end test:")
    print(builder.to_adjacency_text())
    print()

    print("== 3. Generate an end-to-end test from the built graph ==")
    from repro.algorithms import ConnectedComponents

    graph = builder.build()
    expected = run_computation(ConnectedComponents, graph).vertex_values
    code = builder.to_end_to_end_test(
        ConnectedComponents,
        test_name="test_components_on_tailed_triangle",
        expected_values=expected,
    )
    print(code)
    print("executing the generated test in-process, as pytest would:")
    namespace = {"__name__": "generated"}
    exec(compile(code, "<generated>", "exec"), namespace)
    namespace["test_components_on_tailed_triangle"]()
    print("  generated end-to-end test PASSED")


if __name__ == "__main__":
    main()
