#!/usr/bin/env python3
"""Scenario 4.3 — finding an *input* bug with capture-all-active.

MWM expects an undirected weighted graph encoded as symmetric directed
edges. A fraction of the pairs incorrectly carry different weights on the
two directions; the algorithm never converges. Following the paper: run
MWM, watch it blow through the superstep budget, re-run with Graft
capturing all active vertices after a late superstep, and inspect the
small remaining active graph — its asymmetric edge weights are the bug.

Run:  python examples/scenario_mwm_input_bug.py
"""

from repro.algorithms import MaximumWeightMatching
from repro.datasets import (
    corrupt_asymmetric_weights,
    load_dataset,
    random_symmetric_weights,
)
from repro.graft import CaptureAllActiveConfig, debug_run
from repro.graph import find_asymmetric_edges, to_undirected
from repro.pregel import run_computation
from repro.pregel.halting import MAX_SUPERSTEPS

LATE = 60
CAP = 80


def main():
    base = to_undirected(
        random_symmetric_weights(
            load_dataset("soc-Epinions", num_vertices=150, seed=1), seed=2
        )
    )
    corrupted, pairs = corrupt_asymmetric_weights(base, fraction=0.25, seed=3)
    print(
        f"input: weighted soc-Epinions stand-in, {corrupted.num_vertices} "
        f"vertices; {len(pairs)} pairs silently corrupted"
    )

    print("== First run (no Graft): the job never terminates ==")
    plain = run_computation(MaximumWeightMatching, corrupted, max_supersteps=CAP)
    print(f"halt reason after {plain.num_supersteps} supersteps: {plain.halt_reason}")
    assert plain.halt_reason == MAX_SUPERSTEPS
    print()

    print(f"== Re-run with Graft: capture all active vertices after superstep {LATE} ==")
    run = debug_run(
        MaximumWeightMatching,
        corrupted,
        CaptureAllActiveConfig(from_superstep=LATE),
        num_workers=4,
        max_supersteps=CAP,
    )
    print(run.summary())
    superstep = run.reader.supersteps()[0]
    stuck = run.captures_at(superstep)
    print(
        f"remaining active graph at superstep {superstep}: "
        f"{len(stuck)} of {corrupted.num_vertices} vertices"
    )
    print()

    print("== Inspect the stuck vertices' edges in the tabular view ==")
    table = run.tabular_view(superstep=superstep)
    for record in stuck[:3]:
        print(table.expand(record.vertex_id))
        print()

    print("== Diagnosis: asymmetric weights among the stuck vertices ==")
    records = {r.vertex_id: r for r in stuck}
    found = []
    for vertex_id, record in records.items():
        for target, weight in record.edges_after.items():
            peer = records.get(target)
            if peer is not None:
                back = peer.edges_after.get(vertex_id)
                if back is not None and back != weight:
                    found.append((vertex_id, target, weight, back))
    for u, v, w_uv, w_vu in found[:5]:
        print(f"  edge ({u}, {v}): weight {w_uv} one way, {w_vu} the other")
    print()

    print("== Cross-check with the input validator ==")
    bad = find_asymmetric_edges(corrupted)
    print(f"validate_graph finds {len(bad)} asymmetric pairs in the input file")
    print("fix the input encoding, and MWM converges:")
    fixed = run_computation(MaximumWeightMatching, base, max_supersteps=CAP)
    print(f"  clean input halts: {fixed.halt_reason} after {fixed.num_supersteps} supersteps")


if __name__ == "__main__":
    main()
